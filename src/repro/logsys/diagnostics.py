"""Per-stream reading diagnostics.

Real cluster logs are imperfect: crashes truncate the final line,
rotation splits a daemon's stream across files, shippers duplicate
lines, and operators change log4j layouts mid-run.  The readers in
:mod:`repro.logsys.store` never raise on any of that — they skip what
they cannot parse — but *silently* skipping would turn measurement
error into invisible bias.  :class:`StreamDiagnostics` is the per-stream
ledger of everything a reader tolerated, aggregated by the miner into
:class:`repro.core.diagnostics.MiningDiagnostics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["StreamDiagnostics"]


@dataclass(slots=True)
class StreamDiagnostics:
    """What one daemon stream's reader saw, kept, and dropped.

    ``slots=True`` matters here: a mining run materializes one instance
    per stream *per worker handoff*, and the parallel fast path pickles
    these across the process boundary — slotted instances are both
    smaller and faster to (un)pickle than ``__dict__``-backed ones.
    """

    daemon: str
    #: Rotation segments merged into this stream (1 for an unrotated file).
    segments: int = 1
    #: Physical text lines seen (parseable or not).
    lines_total: int = 0
    #: Lines that parsed into a :class:`~repro.logsys.record.LogRecord`.
    records_parsed: int = 0
    #: Lines that did not look like a log4j line at all (stack traces,
    #: wrapped output, truncated records, garbled bytes).
    dropped_garbled: int = 0
    #: Lines with the log4j shape whose timestamp failed to parse
    #: (format drift: wrong month, drifted layout that still matched).
    dropped_bad_timestamp: int = 0
    #: Lines containing U+FFFD, i.e. invalid UTF-8 bytes replaced by the
    #: tolerant decoder.
    encoding_replacements: int = 0
    #: Consecutive identical records suppressed as at-least-once shipper
    #: duplicates (counted by the miner, not the reader).
    duplicate_records: int = 0
    #: Records whose timestamp went *backwards* relative to the previous
    #: record of the stream — reorder jitter or clock trouble (counted
    #: by the miner, not the reader).
    out_of_order: int = 0
    #: False when the daemon name matched no miner dispatch rule — the
    #: whole stream was ignored as noise.
    recognized: bool = True

    @property
    def lines_dropped(self) -> int:
        """Every line the reader skipped, for any reason."""
        return self.dropped_garbled + self.dropped_bad_timestamp

    def degraded(self) -> bool:
        """True when this stream lost or ignored any information."""
        return bool(
            self.lines_dropped or self.encoding_replacements or not self.recognized
        )

    def notes(self) -> List[str]:
        """Human-readable degradation notes (empty for a clean stream)."""
        out: List[str] = []
        if not self.recognized:
            out.append("unrecognized daemon name; stream ignored")
        if self.dropped_garbled:
            out.append(f"{self.dropped_garbled} unparseable line(s) skipped")
        if self.dropped_bad_timestamp:
            out.append(
                f"{self.dropped_bad_timestamp} line(s) with unparseable "
                "timestamps skipped"
            )
        if self.encoding_replacements:
            out.append(
                f"{self.encoding_replacements} line(s) contained invalid "
                "UTF-8 bytes (replaced)"
            )
        if self.duplicate_records:
            out.append(
                f"{self.duplicate_records} consecutive duplicate record(s)"
            )
        if self.out_of_order:
            out.append(
                f"{self.out_of_order} record(s) with backwards timestamps"
            )
        if self.segments > 1:
            out.append(f"merged from {self.segments} rotation segment(s)")
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "daemon": self.daemon,
            "segments": self.segments,
            "lines_total": self.lines_total,
            "records_parsed": self.records_parsed,
            "dropped_garbled": self.dropped_garbled,
            "dropped_bad_timestamp": self.dropped_bad_timestamp,
            "encoding_replacements": self.encoding_replacements,
            "duplicate_records": self.duplicate_records,
            "out_of_order": self.out_of_order,
            "recognized": self.recognized,
        }
