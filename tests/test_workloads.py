"""Tests for workload models and the trace generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.params import GB, MB, SimulationParams
from repro.simul.distributions import RandomSource
from repro.workloads.google_trace import google_trace_arrivals, tpch_query_mix
from repro.workloads.kmeans import KmeansWorkload
from repro.workloads.tpch import TPCH_QUERIES, TPCH_TABLES, TPCHDataset, TPCHQueryWorkload
from repro.workloads.wordcount import WordCountWorkload


class _FakeServices:
    """Just enough surface for workload.prepare/build_stages."""

    def __init__(self, params=None, seed=0):
        from repro.cluster.topology import Cluster
        from repro.hdfs.filesystem import Hdfs
        from repro.simul.engine import Simulator

        self.params = params or SimulationParams(num_nodes=5)
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, self.params)
        self.hdfs = Hdfs(self.sim, self.cluster, self.params, RandomSource(seed))


class _FakeApp:
    num_executors = 4

    def executor_spec(self, params):
        from repro.yarn.records import ResourceSpec

        return ResourceSpec(params.executor_memory_mb, params.executor_vcores)

    def task_threads_per_executor(self):
        return 8


class TestTPCH:
    def test_table_fractions_sum_to_one(self):
        assert sum(TPCH_TABLES.values()) == pytest.approx(1.0, abs=0.02)

    def test_all_22_queries_defined(self):
        assert sorted(TPCH_QUERIES) == list(range(1, 23))

    def test_query_templates_reference_real_tables(self):
        for template in TPCH_QUERIES.values():
            for table in template.scan_tables:
                assert table in TPCH_TABLES

    def test_dataset_prepare_idempotent(self):
        services = _FakeServices()
        ds = TPCHDataset(2 * GB)
        ds.prepare(services)
        ds.prepare(services)  # no duplicate registration error
        assert len(ds.tables) == 8

    def test_lineitem_is_biggest(self):
        services = _FakeServices()
        ds = TPCHDataset(2 * GB)
        ds.prepare(services)
        sizes = {t: f.size_bytes for t, f in ds.tables.items()}
        assert max(sizes, key=sizes.get) == "lineitem"

    def test_input_files_are_eight_tables(self):
        services = _FakeServices()
        wl = TPCHQueryWorkload(TPCHDataset(2 * GB), query=5)
        wl.prepare(services)
        assert len(wl.input_files) == 8

    def test_opened_files_multiplier(self):
        services = _FakeServices()
        wl = TPCHQueryWorkload(TPCHDataset(2 * GB), query=5, opened_files_multiplier=3)
        wl.prepare(services)
        assert len(wl.input_files) == 24

    def test_stage_structure(self):
        services = _FakeServices()
        wl = TPCHQueryWorkload(TPCHDataset(2 * GB), query=9)
        wl.prepare(services)
        stages = wl.build_stages(services, _FakeApp())
        assert len(stages) == TPCH_QUERIES[9].stages
        assert stages[0].input_file is not None  # scan reads HDFS
        assert all(s.input_file is None for s in stages[1:])  # shuffles don't

    def test_scan_tasks_scale_with_input(self):
        services = _FakeServices()
        small = TPCHQueryWorkload(TPCHDataset(100 * MB, name="s"), query=1)
        big = TPCHQueryWorkload(TPCHDataset(50 * GB, name="b"), query=1)
        small.prepare(services)
        big.prepare(services)
        n_small = small.build_stages(services, _FakeApp())[0].n_tasks
        n_big = big.build_stages(services, _FakeApp())[0].n_tasks
        assert n_big > n_small
        assert n_small >= services.params.min_scan_tasks

    def test_invalid_query_rejected(self):
        with pytest.raises(ValueError):
            TPCHQueryWorkload(TPCHDataset(1 * GB), query=23)

    def test_invalid_dataset_size(self):
        with pytest.raises(ValueError):
            TPCHDataset(0)


class TestWordCount:
    def test_single_input_file(self):
        services = _FakeServices()
        wl = WordCountWorkload(2 * GB)
        wl.prepare(services)
        assert len(wl.input_files) == 1

    def test_two_stages(self):
        services = _FakeServices()
        wl = WordCountWorkload(2 * GB)
        wl.prepare(services)
        stages = wl.build_stages(services, _FakeApp())
        assert [s.name for s in stages] == ["wc-map", "wc-reduce"]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WordCountWorkload(0)


class TestKmeans:
    def test_iteration_stages_are_pure_cpu(self):
        services = _FakeServices()
        wl = KmeansWorkload(iterations=3)
        wl.prepare(services)
        stages = wl.build_stages(services, _FakeApp())
        assert len(stages) == 4  # load + 3 iterations
        assert all(s.cpu_fraction == 1.0 for s in stages[1:])

    def test_task_fanout_matches_threads(self):
        services = _FakeServices()
        wl = KmeansWorkload(iterations=1)
        wl.prepare(services)
        stages = wl.build_stages(services, _FakeApp())
        assert stages[1].n_tasks == 4 * 8


class TestGoogleTrace:
    def test_arrivals_monotone_from_zero(self):
        rng = RandomSource(1).child("t")
        times = google_trace_arrivals(100, 2.0, rng)
        assert times[0] == 0.0
        assert all(a <= b for a, b in zip(times, times[1:]))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 200), mean=st.floats(0.1, 10.0))
    def test_arrival_count_and_positivity(self, n, mean):
        rng = RandomSource(2).child("t")
        times = google_trace_arrivals(n, mean, rng)
        assert len(times) == n
        assert all(t >= 0 for t in times)

    def test_mean_interarrival_near_target(self):
        rng = RandomSource(3).child("t")
        times = google_trace_arrivals(3000, 2.0, rng)
        gaps = np.diff(times)
        assert np.mean(gaps) == pytest.approx(2.0, rel=0.2)

    def test_burstiness(self):
        """Google-trace arrivals are bursty: CV well above Poisson's 1."""
        rng = RandomSource(4).child("t")
        times = google_trace_arrivals(3000, 2.0, rng)
        gaps = np.diff(times)
        cv = np.std(gaps) / np.mean(gaps)
        assert cv > 1.3

    def test_invalid_args(self):
        rng = RandomSource(0)
        with pytest.raises(ValueError):
            google_trace_arrivals(0, 1.0, rng)
        with pytest.raises(ValueError):
            google_trace_arrivals(5, 0.0, rng)

    def test_query_mix_in_range(self):
        rng = RandomSource(5).child("m")
        mix = tpch_query_mix(500, rng)
        assert set(mix) <= set(range(1, 23))
        assert len(set(mix)) > 10  # actually mixes

    def test_query_mix_restricted_pool(self):
        rng = RandomSource(6).child("m")
        mix = tpch_query_mix(50, rng, queries=[1, 6])
        assert set(mix) <= {1, 6}
