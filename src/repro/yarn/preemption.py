"""Scheduler-side container preemption.

YARN's Capacity and Fair schedulers both ship a preemption monitor: a
periodic policy thread that watches for applications starved below
their share and forcibly reclaims containers from over-served
applications.  The reclaimed containers produce the Table I′ KILLED /
KILLING transitions, and the victims' recovery time is the
**preemption delay** component of the extended decomposition
(:mod:`repro.core.decompose`).

The policy here mirrors ``ProportionalCapacityPreemptionPolicy`` at
the granularity the simulation needs:

* an application is *starved* once it has had unsatisfied container
  asks for ``starvation_timeout_s`` (YARN's
  ``preemption.starvation-check`` / fair-share timeout);
* victims are applications holding more than ``victim_floor`` running
  containers, most-loaded first (the proportional policy's
  most-over-capacity ordering);
* at most ``max_per_pass`` containers die per monitor pass (YARN's
  ``total_preemption_per_round`` damping), most recently launched
  first — the natural-termination-cost heuristic;
* AM containers are never preempted (YARN's AM-preemption guard), and
  neither are frameworks that do not opt into
  ``supports_container_kill``.

A pass is purely synchronous — victim selection happens between
simulation events — so runs are deterministic for a fixed seed.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING, Tuple

from repro.simul.engine import Interrupt
from repro.yarn.records import ContainerGrant, ExecutionType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.yarn.resource_manager import AppRecord, ResourceManager

__all__ = ["PreemptionMonitor"]


class PreemptionMonitor:
    """Periodic starvation check + proportional container reclamation."""

    def __init__(
        self,
        rm: "ResourceManager",
        check_interval_s: float = 5.0,
        starvation_timeout_s: float = 10.0,
        max_per_pass: int = 2,
        victim_floor: int = 1,
    ):
        if check_interval_s <= 0 or starvation_timeout_s < 0:
            raise ValueError("preemption intervals must be positive")
        if max_per_pass < 1 or victim_floor < 0:
            raise ValueError("invalid preemption budget")
        self.rm = rm
        self.sim = rm.sim
        self.check_interval_s = check_interval_s
        self.starvation_timeout_s = starvation_timeout_s
        self.max_per_pass = max_per_pass
        self.victim_floor = victim_floor
        #: Total containers this monitor has preempted (introspection).
        self.preemptions = 0
        #: When each app's current starvation episode began.
        self._starved_since: Dict["AppRecord", float] = {}
        self._proc = rm.sim.process(self._run(), name="preemption-monitor")

    def stop(self) -> None:
        """Shut the monitor down (end-of-scenario cleanup)."""
        if self._proc.is_alive:
            self._proc.interrupt("monitor stopped")

    # -- internals ---------------------------------------------------------
    def _run(self):
        try:
            while True:
                yield self.sim.timeout(self.check_interval_s)
                self._pass()
        except Interrupt:
            return

    def _pass(self) -> None:
        starved = self._starved_records()
        if not starved:
            return
        demand = sum(self.rm.scheduler.pending_for(r) for r in starved)
        budget = min(self.max_per_pass, demand)
        for record, grants in self._victims(set(starved)):
            excess = len(grants) - self.victim_floor
            # Most recently launched first: least sunk work destroyed.
            for grant in reversed(grants):
                if budget <= 0 or excess <= 0:
                    break
                self.rm.preempt_container(
                    record.app,
                    grant,
                    "container preempted by scheduler",
                )
                self.preemptions += 1
                budget -= 1
                excess -= 1
            if budget <= 0:
                return

    def _starved_records(self) -> List["AppRecord"]:
        """Apps with unsatisfied asks for longer than the timeout."""
        now = self.sim.now
        starved = []
        for record in self.rm.apps.values():
            if record.finished:
                self._starved_since.pop(record, None)
                continue
            if self.rm.scheduler.pending_for(record) > 0:
                since = self._starved_since.setdefault(record, now)
                if now - since >= self.starvation_timeout_s:
                    starved.append(record)
            else:
                self._starved_since.pop(record, None)
        return starved

    def _victims(
        self, starved: set
    ) -> List[Tuple["AppRecord", List[ContainerGrant]]]:
        """Over-served apps with reclaimable containers, largest first."""
        victims = []
        for record in self.rm.apps.values():
            if record.finished or record in starved:
                continue
            if not record.app.supports_container_kill:
                continue
            if self.rm.scheduler.pending_for(record) > 0:
                # An app with unsatisfied asks of its own is not
                # over-served — skipping it stops preemption ping-pong
                # between a victim and the app it was preempted for.
                continue
            grants = [
                g
                for g in record.app.grants
                if not g.container_id.is_application_master
                and g.execution_type is ExecutionType.GUARANTEED
                and g.rm_container.state == "RUNNING"
            ]
            if len(grants) > self.victim_floor:
                victims.append((record, grants))
        victims.sort(key=lambda rv: (-len(rv[1]), rv[0].app.app_id.app_seq))
        return victims
