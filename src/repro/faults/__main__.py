"""Entry point so ``python -m repro.faults`` runs the fault-injection CLI."""

import sys

from repro.faults.cli import main

if __name__ == "__main__":
    sys.exit(main())
