"""HiBench-style Kmeans: the CPU interference generator (Fig 13).

An iterative ML job that "always traverses the same data set during
iterations" — so after the first scan everything is cached and each
iteration is pure CPU.  The paper overloads node CPUs by giving each
Kmeans executor 16 vcores; with YARN's memory-only resource calculator
the vcores are not enforced, and the task threads oversubscribe the
physical cores — that oversubscription is the interference.
"""

from __future__ import annotations

import math
from itertools import count
from typing import List, Optional

from repro.spark.application import SparkApplication
from repro.spark.tasks import StageSpec
from repro.spark.workload import SparkWorkload

__all__ = ["KmeansWorkload", "make_kmeans_app"]

_ids = count(1)


class KmeansWorkload(SparkWorkload):
    """Iterative CPU-bound Spark job."""

    is_sql = False

    def __init__(
        self,
        input_bytes: float = 2 << 30,
        iterations: Optional[int] = None,
        name: str | None = None,
    ):
        self.input_bytes = float(input_bytes)
        self.iterations = iterations
        self.name = name or f"kmeans{next(_ids)}"
        self._file = None

    def prepare(self, services) -> None:
        if self._file is None:
            self._file = services.hdfs.register_file(
                f"/data/kmeans/{self.name}.seq", self.input_bytes
            )

    @property
    def input_files(self) -> List:
        return [self._file]

    def build_stages(self, services, app) -> List[StageSpec]:
        params = services.params
        iterations = self.iterations or params.kmeans_iterations
        threads = app.task_threads_per_executor()
        n_tasks = app.num_executors * threads
        block = params.hdfs_block_bytes
        n_scan = max(1, math.ceil(self.input_bytes / block))
        stages = [
            StageSpec(
                name="kmeans-load",
                n_tasks=n_scan,
                cpu_seconds_per_task=1.0,
                bytes_per_task=self.input_bytes / n_scan,
                input_file=self._file,
            )
        ]
        for it in range(iterations):
            stages.append(
                StageSpec(
                    name=f"kmeans-iter{it}",
                    n_tasks=n_tasks,
                    cpu_seconds_per_task=params.kmeans_iteration_s,
                    cpu_fraction=1.0,  # pure compute on the cached RDD
                )
            )
        return stages


def make_kmeans_app(name: str, params, iterations: Optional[int] = None) -> SparkApplication:
    """A Kmeans app with the paper's 4 executors x 16 vcores shape.

    With the memory-only resource calculator the 16 vcores are not
    enforced, so the executors' task threads (vcores x 2 with
    hyper-threading, as HiBench configures) oversubscribe the physical
    cores — "to fully overload node's CPU resource" (section IV-E).
    """
    return SparkApplication(
        name,
        workload=KmeansWorkload(iterations=iterations, name=name),
        num_executors=params.kmeans_executors,
        executor_vcores=params.kmeans_executor_vcores,
        task_threads=params.kmeans_executor_vcores * 2,
    )
