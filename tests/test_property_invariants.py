"""Property-based invariants over randomized end-to-end workloads.

Hypothesis drives small random mixes of Spark and MapReduce jobs on a
small cluster; the properties assert global soundness that no specific
scenario test can cover:

* every submitted application reaches FINISHED;
* all reserved memory is returned;
* container IDs are globally unique and SDchecker groups them under
  the right applications;
* the mined logs are state-machine-consistent (validator clean);
* every measurable delay component is non-negative;
* in-application + out-application always reassemble the total.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.checker import SDChecker
from repro.core.validate import validate_traces
from repro.mapreduce.application import MapReduceApplication
from repro.params import GB, SimulationParams
from repro.spark.application import SparkApplication
from repro.testbed import Testbed
from repro.workloads.tpch import TPCHDataset, TPCHQueryWorkload
from repro.workloads.wordcount import WordCountWorkload


spark_job = st.fixed_dictionaries(
    {
        "type": st.just("spark"),
        "query": st.integers(1, 22),
        "executors": st.integers(1, 6),
        "sql": st.booleans(),
        "delay": st.floats(0.0, 20.0),
    }
)
mr_job = st.fixed_dictionaries(
    {
        "type": st.just("mr"),
        "maps": st.integers(1, 20),
        "reduces": st.integers(0, 3),
        "delay": st.floats(0.0, 20.0),
    }
)
workload_mix = st.lists(st.one_of(spark_job, mr_job), min_size=1, max_size=4)


def _run_mix(mix, seed):
    bed = Testbed(params=SimulationParams(num_nodes=4), seed=seed)
    dataset = TPCHDataset(1 * GB, name=f"prop-{seed}-{id(mix) % 100000}")
    apps = []
    for i, job in enumerate(mix):
        if job["type"] == "spark":
            workload = (
                TPCHQueryWorkload(dataset, query=job["query"])
                if job["sql"]
                else WordCountWorkload(1 * GB, name=f"wc-{seed}-{i}")
            )
            app = SparkApplication(
                f"spark-{i}", workload, num_executors=job["executors"]
            )
        else:
            app = MapReduceApplication(
                f"mr-{i}", num_maps=job["maps"], num_reduces=job["reduces"]
            )
        apps.append(app)
        bed.submit(app, delay=job["delay"])
    bed.run_until_all_finished(limit=20_000)
    bed.run(until=bed.sim.now + 10.0)  # let container cleanup land
    return bed, apps


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(mix=workload_mix, seed=st.integers(0, 50))
def test_end_to_end_invariants(mix, seed):
    bed, apps = _run_mix(mix, seed)

    # 1. Everything finishes and memory is conserved.
    assert all(app.finished.processed for app in apps)
    assert bed.cluster.used_memory_mb() == 0

    # 2. Container IDs unique across the run.
    ids = [str(g.container_id) for app in apps for g in app.grants]
    assert len(ids) == len(set(ids))

    # 3. SDchecker groups each container under its application.
    checker = SDChecker()
    traces = checker.group(bed.log_store)
    assert set(traces) == {str(app.app_id) for app in apps}
    for app in apps:
        trace = traces[str(app.app_id)]
        for cid in trace.containers:
            assert cid.split("_")[2] == f"{app.app_id.app_seq:04d}"

    # 4. The logs are state-machine consistent.
    assert validate_traces(traces) == []

    # 5. All measurable delays are non-negative and consistent.
    report = checker.analyze(bed.log_store)
    for delays in report.apps:
        if delays.total_delay is not None:
            assert delays.total_delay >= 0
        if delays.in_app_delay is not None and delays.out_app_delay is not None:
            assert delays.in_app_delay + delays.out_app_delay == (
                __import__("pytest").approx(delays.total_delay)
            )
        for c in delays.containers:
            for value in (c.acquisition_delay, c.localization_delay, c.launching_delay):
                if value is not None:
                    assert value >= -1e-9
