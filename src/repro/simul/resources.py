"""Shared-resource models for the simulation kernel.

Three primitives cover everything the cluster substrate needs:

* :class:`Resource` — a counted FIFO semaphore (container slots, thread
  pools, disk queue depth).
* :class:`Store` — an unbounded FIFO queue of items (message queues,
  NodeManager launch queues).
* :class:`FairShareResource` — a processor-sharing server used for both
  network links and disks (capacity in bytes/s, jobs are transfers) and
  CPU run-queues (capacity in cores, jobs are core-second work items).
  When demand exceeds capacity every job is slowed proportionally, which
  is exactly the contention behaviour behind the paper's IO- and
  CPU-interference experiments (Figs 12 and 13).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.simul.engine import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "Store", "FairShareResource", "FlowHandle"]


class Request(Event):
    """Grant event for a :class:`Resource` acquisition."""

    __slots__ = ("resource", "amount")

    def __init__(self, resource: "Resource", amount: int):
        super().__init__(resource.sim)
        self.resource = resource
        self.amount = amount


class Resource:
    """A counted semaphore with FIFO granting.

    Usage from a process generator::

        req = res.request()
        yield req
        ...  # critical section
        res.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units free right now."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of ungranted requests."""
        return len(self._waiting)

    def request(self, amount: int = 1) -> Request:
        """Ask for ``amount`` units; the returned event fires on grant."""
        if amount < 1 or amount > self.capacity:
            raise SimulationError(
                f"request of {amount} units on resource of capacity {self.capacity}"
            )
        req = Request(self, amount)
        self._waiting.append(req)
        self._dispatch()
        return req

    def release(self, request: Request) -> None:
        """Return the units granted to ``request``."""
        if not request.triggered:
            # Cancelled before grant: drop from the wait queue.
            try:
                self._waiting.remove(request)
            except ValueError:
                raise SimulationError("release of unknown request") from None
            return
        self._in_use -= request.amount
        if self._in_use < 0:
            raise SimulationError("resource released more than acquired")
        self._dispatch()

    def _dispatch(self) -> None:
        while self._waiting and self._waiting[0].amount <= self.available:
            req = self._waiting.popleft()
            self._in_use += req.amount
            req.succeed(req)


class Store:
    """An unbounded FIFO queue with blocking ``get``."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: deque = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next available item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev


class FlowHandle:
    """Bookkeeping for one active job on a :class:`FairShareResource`."""

    __slots__ = ("work", "demand", "done", "started_at")

    def __init__(self, work: float, demand: float, done: Event, started_at: float):
        #: Remaining work (bytes, or core-seconds).
        self.work = work
        #: Maximum service rate this job can absorb (bytes/s or cores).
        self.demand = demand
        #: Completion event.
        self.done = done
        #: Simulation time the job entered service.
        self.started_at = started_at


class FairShareResource:
    """A processor-sharing server with per-job demand caps.

    ``capacity`` is the total service rate.  Each active job ``i`` has a
    demand ``d_i`` (its maximum rate) and receives

        rate_i = d_i                       when sum(d) <= capacity
        rate_i = d_i * capacity / sum(d)   otherwise

    i.e. proportional throttling under overload.  This models both a
    bandwidth-shared NIC/disk (jobs = transfers, demand = per-flow cap)
    and a CPU run-queue (jobs = compute bursts, demand = cores wanted,
    work measured in core-seconds).

    Implementation: on every membership change we advance all remaining
    work by the elapsed time at the old rates, recompute rates, and
    schedule a completion wake-up for the earliest-finishing job.  Stale
    wake-ups are invalidated with a generation counter.
    """

    def __init__(self, sim: Simulator, capacity: float, name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = float(capacity)
        self.name = name
        self._flows: list[FlowHandle] = []
        self._last_update = 0.0
        self._generation = 0

    # -- public API ------------------------------------------------------
    @property
    def active_jobs(self) -> int:
        """Number of jobs currently in service."""
        return len(self._flows)

    @property
    def total_demand(self) -> float:
        """Sum of demand across active jobs."""
        return sum(f.demand for f in self._flows)

    def utilization(self) -> float:
        """Fraction of capacity in use right now (0..1)."""
        return min(1.0, self.total_demand / self.capacity)

    def slowdown(self) -> float:
        """Current throttling factor (1.0 = no contention)."""
        demand = self.total_demand
        return max(1.0, demand / self.capacity)

    def submit(self, work: float, demand: Optional[float] = None) -> Event:
        """Start a job of ``work`` units; returns its completion event.

        ``demand`` defaults to the full capacity (the job can absorb the
        entire server when alone).
        """
        if work < 0:
            raise SimulationError(f"negative work {work!r}")
        if demand is None:
            demand = self.capacity
        if demand <= 0:
            raise SimulationError(f"demand must be positive, got {demand}")
        done = Event(self.sim)
        if work == 0:
            done.succeed(0.0)
            return done
        self._advance()
        self._flows.append(FlowHandle(work, float(demand), done, self.sim.now))
        self._reschedule()
        return done

    def estimated_rate(self, demand: Optional[float] = None) -> float:
        """Rate a new job with ``demand`` would get if submitted now."""
        if demand is None:
            demand = self.capacity
        total = self.total_demand + demand
        if total <= self.capacity:
            return demand
        return demand * self.capacity / total

    # -- internals -------------------------------------------------------
    def _rate(self, flow: FlowHandle, total_demand: float) -> float:
        if total_demand <= self.capacity:
            return flow.demand
        return flow.demand * self.capacity / total_demand

    def _advance(self) -> None:
        """Charge elapsed time against every active flow."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        total = self.total_demand
        for flow in self._flows:
            flow.work -= self._rate(flow, total) * dt
        # Complete flows whose work reached zero.  The tolerance must
        # absorb FP error of work/rate round-trips on byte-scale work
        # (~1e-7 absolute); 1e-6 units is < 1 ns of service for any
        # realistic rate.
        finished = [f for f in self._flows if f.work <= 1e-6]
        if finished:
            self._flows = [f for f in self._flows if f.work > 1e-6]
            for flow in finished:
                flow.done.succeed(now - flow.started_at)

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest projected completion."""
        self._generation += 1
        if not self._flows:
            return
        gen = self._generation
        total = self.total_demand
        eta = min(f.work / self._rate(f, total) for f in self._flows)
        # Floor at 1 ns: an ETA below the float ULP of `now` would
        # schedule a wake-up at the same timestamp forever.
        eta = max(eta, 1e-9)
        self.sim.call_at(self.sim.now + eta, lambda: self._on_wakeup(gen))

    def _on_wakeup(self, generation: int) -> None:
        if generation != self._generation:
            return  # stale: membership changed since this was scheduled
        self._advance()
        self._reschedule()
