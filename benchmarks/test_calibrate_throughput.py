"""Calibration trial throughput, serial vs parallel.

Times one self-calibration ``fit`` on the diurnal-burst preset at
``jobs=1`` and ``jobs=4`` — each trial is a full simulate → dump →
mine → score cycle — and records trials/s for both into
``benchmarks/results/BENCH_calibrate.json``.

Bars (all modes, including the ``REPRO_BENCH_SMOKE=1`` CI job):

* the two artifacts must be byte-identical — the parallel-determinism
  contract re-checked at benchmark scale;
* the baseline trial must score exactly 0 (self-fit identity);
* on runners with CPUs to spare and a non-smoke trial count, the
  4-worker fit must actually be faster: trial fan-out is
  embarrassingly parallel, so anything under 1.5x means the pool is
  serializing somewhere.  Smoke runs skip the timing bar — a handful
  of ~0.5 s trials cannot amortize process spawn.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.calibrate import fit

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_FILE = RESULTS_DIR / "BENCH_calibrate.json"

_PARALLEL_JOBS = 4

#: Search sizes per mode: (grid_limit, random_trials).  Trial count is
#: 1 (baseline) + grid + random.
_SEARCH = {"smoke": (0, 3), "small": (6, 9), "paper": (12, 19)}


def _record_point(point: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    history = []
    if BENCH_FILE.exists():
        history = json.loads(BENCH_FILE.read_text(encoding="utf-8"))
    history.append(point)
    BENCH_FILE.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def _timed_fit(jobs: int, grid_limit: int, random_trials: int):
    start = time.perf_counter()
    model = fit(
        "diurnal-burst",
        seed=13,
        grid_limit=grid_limit,
        random_trials=random_trials,
        jobs=jobs,
    )
    return model, time.perf_counter() - start


def test_calibrate_throughput(scale):
    mode = "smoke" if os.environ.get("REPRO_BENCH_SMOKE") else scale
    grid_limit, random_trials = _SEARCH[mode]

    serial_model, serial_seconds = _timed_fit(1, grid_limit, random_trials)
    parallel_model, parallel_seconds = _timed_fit(
        _PARALLEL_JOBS, grid_limit, random_trials
    )
    trials = len(serial_model.trials)
    serial_tps = trials / serial_seconds if serial_seconds > 0 else float("inf")
    parallel_tps = (
        trials / parallel_seconds if parallel_seconds > 0 else float("inf")
    )

    # -- contracts re-checked at benchmark scale ------------------------
    assert serial_model.dumps() == parallel_model.dumps(), (
        "fit artifact differs between jobs=1 and jobs=4"
    )
    assert serial_model.trials[0].error == 0.0, (
        f"self-fit baseline scored {serial_model.trials[0].error!r}, not 0"
    )

    cpus = os.cpu_count() or 1
    point = {
        "mode": mode,
        "scenario": "diurnal-burst",
        "trials": trials,
        "cpus": cpus,
        "jobs_parallel": _PARALLEL_JOBS,
        "serial_trials_per_s": round(serial_tps, 3),
        "parallel_trials_per_s": round(parallel_tps, 3),
        "speedup": round(parallel_tps / serial_tps, 2)
        if serial_tps > 0
        else None,
    }
    _record_point(point)
    print()
    print(json.dumps(point))

    if cpus >= 2 and mode != "smoke":
        # Spawn overhead amortizes over a real trial count: two cores
        # must not lose to one (5% timer allowance).
        assert parallel_tps >= serial_tps * 0.95, (
            f"parallel fit {parallel_tps:.2f} trials/s slower than "
            f"serial {serial_tps:.2f} trials/s on {cpus} CPUs"
        )
    if cpus >= 4 and mode != "smoke":
        assert parallel_tps >= serial_tps * 1.5, (
            f"parallel fit {parallel_tps:.2f} trials/s is not 1.5x "
            f"serial {serial_tps:.2f} trials/s on {cpus} CPUs"
        )
