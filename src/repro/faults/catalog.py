"""The corruption catalog: composable, seeded log-directory faults.

Each :class:`Corruption` rewrites the files of one dumped log directory
in place, drawing every random decision from a named, seeded
:class:`~repro.simul.distributions.RandomSource` substream — the same
(seed, corruption) pair always produces byte-identical corrupted
corpora, which is what makes metamorphic testing and the certification
sweep reproducible.

Catalog entries and what they model:

====================  ==========  ========================================
name                  identity?   real-world cause
====================  ==========  ========================================
``duplicate-lines``   yes         at-least-once log shippers re-delivering
``inject-noise``      yes         stack traces / non-Table-I chatter
``rotation-split``    yes         log4j RollingFileAppender rotation
``truncate-final``    no          crash mid-write (partial last record)
``truncate-tail``     no          crash / disk-full losing the log tail
``reorder-jitter``    no          async appenders swapping nearby lines
``invalid-utf8``      no          bit rot, mixed encodings
``delete-daemon``     no          a daemon's log never collected
``format-drift``      no          log4j layout changed mid-fleet
====================  ==========  ========================================

"identity" means the corrupted corpus must produce a byte-identical
analysis report; every corruption, identity or not, must leave
``SDChecker.analyze`` crash-free with all losses named in the
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Type

from repro.core.messages import CONTAINER_ID_RE
from repro.logsys.store import stream_segments
from repro.simul.distributions import RandomSource

__all__ = [
    "CATALOG",
    "Corruption",
    "CorruptionReceipt",
    "degradation_names",
    "identity_names",
    "make_corruption",
]


@dataclass
class CorruptionReceipt:
    """What one corruption actually did — the test oracle's evidence."""

    corruption: str
    #: Daemon names whose streams were modified or removed.
    touched: List[str] = field(default_factory=list)
    #: Human-readable notes, one per mutation.
    details: List[str] = field(default_factory=list)


def _read_lines(path: Path) -> Tuple[List[bytes], bool]:
    """(lines without terminators, had-trailing-newline) of one file."""
    data = path.read_bytes()
    if not data:
        return [], True
    complete = data.endswith(b"\n")
    lines = data.split(b"\n")
    if complete:
        lines.pop()  # the split artifact after the final newline
    return lines, complete


def _write_lines(path: Path, lines: List[bytes], complete: bool = True) -> None:
    body = b"\n".join(lines)
    if complete and lines:
        body += b"\n"
    path.write_bytes(body)


def _is_container_stream(daemon: str) -> bool:
    return CONTAINER_ID_RE.match(daemon) is not None


class Corruption:
    """Base class: one seeded, in-place log-directory rewrite."""

    name = "corruption"
    #: True when the mining pipeline must absorb this corruption with a
    #: byte-identical report; False when graceful degradation (no crash,
    #: losses counted) is the contract.
    identity_preserving = False

    def apply(self, logdir: Path, rng: RandomSource) -> CorruptionReceipt:
        """Corrupt ``logdir`` in place; returns the receipt of changes."""
        raise NotImplementedError

    def _receipt(self) -> CorruptionReceipt:
        return CorruptionReceipt(corruption=self.name)


class DuplicateLines(Corruption):
    """Re-deliver lines verbatim, as an at-least-once shipper would.

    Each duplicate is inserted immediately after its original, so the
    relative order of *distinct* lines — and therefore the positional
    FIRST_LOG / first-task semantics — is untouched.
    """

    name = "duplicate-lines"
    identity_preserving = True

    def __init__(self, rate: float = 0.08):
        self.rate = rate

    def apply(self, logdir: Path, rng: RandomSource) -> CorruptionReceipt:
        receipt = self._receipt()
        for daemon, paths in stream_segments(logdir):
            for path in paths:
                lines, complete = _read_lines(path)
                out: List[bytes] = []
                duplicated = 0
                for line in lines:
                    out.append(line)
                    if line and rng.uniform() < self.rate:
                        out.append(line)
                        duplicated += 1
                if duplicated:
                    _write_lines(path, out, complete)
                    receipt.touched.append(daemon)
                    receipt.details.append(
                        f"{path.name}: duplicated {duplicated} line(s)"
                    )
        return receipt


#: Multi-line Java stack trace, as an appender interleaves it (no
#: log4j header on the continuation lines — all unparseable).
_STACK_TRACE = [
    b"java.io.IOException: Connection reset by peer",
    b"\tat sun.nio.ch.FileDispatcherImpl.read0(Native Method)",
    b"\tat org.apache.hadoop.ipc.Server$Connection.readAndProcess(Server.java:1849)",
    b"\tat java.lang.Thread.run(Thread.java:748)",
    b"Caused by: java.nio.channels.ClosedChannelException",
    b"\t... 3 more",
]

#: Well-formed log4j lines that match no Table I classifier: the miner
#: must parse and then ignore them without side effects.
_PARSEABLE_NOISE = [
    b"2018-01-12 00:00:00,000 INFO org.apache.hadoop.util.GcTimeMonitor: GC pause of 12ms observed",
    b"2018-01-12 00:00:00,000 WARN org.apache.hadoop.hdfs.DFSClient: Slow ReadProcessor read fields took 301ms",
    b"2018-01-12 00:00:00,000 INFO org.apache.spark.storage.BlockManagerInfo: Added broadcast_1_piece0 in memory",
]

#: Wrapped console output with no log4j shape at all.
_WRAPPED_OUTPUT = [
    b"    | stage 3 -> partition 12 on host node02",
    b"    +--- Exchange hashpartitioning(l_orderkey, 200)",
]


class InjectNoise(Corruption):
    """Interleave stack traces and non-Table-I chatter between lines.

    Noise is only ever inserted *after* an existing line, never at the
    head of a stream: the first line of a container log is a positional
    event (messages 9/13), and real noise appears once the process is
    already logging anyway.
    """

    name = "inject-noise"
    identity_preserving = True

    def __init__(self, rate: float = 0.06):
        self.rate = rate
        self._blocks = [_STACK_TRACE, _PARSEABLE_NOISE[:1], _PARSEABLE_NOISE[1:], _WRAPPED_OUTPUT]

    def apply(self, logdir: Path, rng: RandomSource) -> CorruptionReceipt:
        receipt = self._receipt()
        for daemon, paths in stream_segments(logdir):
            for path in paths:
                lines, complete = _read_lines(path)
                if not lines:
                    continue
                out: List[bytes] = []
                injected = 0
                for line in lines:
                    out.append(line)
                    if rng.uniform() < self.rate:
                        out.extend(rng.choice(self._blocks))
                        injected += 1
                if injected:
                    # A file whose last record was cut mid-line keeps its
                    # partial tail last: never append noise behind it.
                    if complete or out[-1] is lines[-1]:
                        _write_lines(path, out, complete)
                        receipt.touched.append(daemon)
                        receipt.details.append(
                            f"{path.name}: injected {injected} noise block(s)"
                        )
        return receipt


class RotationSplit(Corruption):
    """Split live ``<daemon>.log`` files into rotation segments.

    Produces the log4j RollingFileAppender layout — ``<daemon>.log.N``
    oldest through ``<daemon>.log.1``, then the live file — which the
    readers must merge back in chronological order.
    """

    name = "rotation-split"
    identity_preserving = True

    def __init__(self, max_segments: int = 3, rate: float = 0.6):
        self.max_segments = max_segments
        self.rate = rate

    def apply(self, logdir: Path, rng: RandomSource) -> CorruptionReceipt:
        receipt = self._receipt()
        for daemon, paths in stream_segments(logdir):
            if len(paths) > 1:
                continue  # already rotated
            path = paths[0]
            lines, complete = _read_lines(path)
            if len(lines) < 2 or rng.uniform() >= self.rate:
                continue
            segments = min(self.max_segments, len(lines), 2 + rng.integers(0, 2))
            cuts = sorted(rng.sample(range(1, len(lines)), segments - 1))
            if not cuts:
                continue
            chunks: List[List[bytes]] = []
            start = 0
            for cut in cuts + [len(lines)]:
                chunks.append(lines[start:cut])
                start = cut
            # Oldest chunk gets the highest index; the newest stays live.
            for i, chunk in enumerate(chunks[:-1]):
                _write_lines(
                    logdir / f"{daemon}.log.{len(chunks) - 1 - i}", chunk, True
                )
            _write_lines(path, chunks[-1], complete)
            receipt.touched.append(daemon)
            receipt.details.append(
                f"{path.name}: split into {len(chunks)} segment(s)"
            )
        return receipt


class TruncateTail(Corruption):
    """Lose the tail of a stream: a crash or full disk ate the end.

    Removes up to ``max_lines`` final lines from a few streams and cuts
    the new final line mid-byte (leaving a partial record with no
    trailing newline).  Only the events that lived in the lost tail
    disappear; the affected applications must come back with those
    components explicitly missing.
    """

    name = "truncate-tail"
    identity_preserving = False

    def __init__(self, max_lines: int = 6, max_streams: int = 2, container_only: bool = False):
        self.max_lines = max_lines
        self.max_streams = max_streams
        self.container_only = container_only

    def apply(self, logdir: Path, rng: RandomSource) -> CorruptionReceipt:
        receipt = self._receipt()
        streams = [
            (daemon, paths)
            for daemon, paths in stream_segments(logdir)
            if not self.container_only or _is_container_stream(daemon)
        ]
        victims = [s for s in streams if _read_lines(s[1][-1])[0]]
        if not victims:
            return receipt
        chosen = rng.sample(victims, min(self.max_streams, len(victims)))
        for daemon, paths in sorted(chosen):
            path = paths[-1]  # the live (newest) segment holds the tail
            lines, _complete = _read_lines(path)
            lost = min(rng.integers(0, self.max_lines + 1), len(lines) - 1)
            kept = lines[: len(lines) - lost]
            cut = b""
            if kept and self.max_lines >= 0:
                final = kept[-1]
                if len(final) > 1:
                    cut_at = 1 + rng.integers(0, len(final) - 1)
                    kept[-1] = final[:cut_at]
                    cut = final[cut_at:]
            _write_lines(path, kept, complete=not cut)
            receipt.touched.append(daemon)
            receipt.details.append(
                f"{path.name}: dropped {lost} tail line(s), cut final line"
            )
        return receipt


class TruncateFinalLine(TruncateTail):
    """Cut only the final line mid-byte: the classic crash-mid-write."""

    name = "truncate-final"

    def __init__(self, max_streams: int = 2, container_only: bool = False):
        super().__init__(
            max_lines=0, max_streams=max_streams, container_only=container_only
        )


class ReorderJitter(Corruption):
    """Swap nearby lines, as racing async appenders do under load."""

    name = "reorder-jitter"
    identity_preserving = False

    def __init__(self, rate: float = 0.05):
        self.rate = rate

    def apply(self, logdir: Path, rng: RandomSource) -> CorruptionReceipt:
        receipt = self._receipt()
        for daemon, paths in stream_segments(logdir):
            for path in paths:
                lines, complete = _read_lines(path)
                swaps = 0
                i = 0
                while i < len(lines) - 1:
                    if rng.uniform() < self.rate:
                        lines[i], lines[i + 1] = lines[i + 1], lines[i]
                        swaps += 1
                        i += 2  # never un-swap what we just swapped
                    else:
                        i += 1
                if swaps:
                    _write_lines(path, lines, complete)
                    receipt.touched.append(daemon)
                    receipt.details.append(f"{path.name}: {swaps} adjacent swap(s)")
        return receipt


class InvalidBytes(Corruption):
    """Flip a few bytes per victim line into invalid UTF-8 sequences."""

    name = "invalid-utf8"
    identity_preserving = False

    #: Bytes that can never appear in well-formed UTF-8.
    _BAD = (b"\xfe", b"\xff", b"\xc0\xaf")

    def __init__(self, rate: float = 0.03):
        self.rate = rate

    def apply(self, logdir: Path, rng: RandomSource) -> CorruptionReceipt:
        receipt = self._receipt()
        for daemon, paths in stream_segments(logdir):
            for path in paths:
                lines, complete = _read_lines(path)
                mangled = 0
                for i, line in enumerate(lines):
                    if not line or rng.uniform() >= self.rate:
                        continue
                    pos = rng.integers(0, len(line))
                    bad = rng.choice(self._BAD)
                    lines[i] = line[:pos] + bad + line[pos + 1 :]
                    mangled += 1
                if mangled:
                    _write_lines(path, lines, complete)
                    receipt.touched.append(daemon)
                    receipt.details.append(
                        f"{path.name}: invalid bytes in {mangled} line(s)"
                    )
        return receipt


class DeleteDaemon(Corruption):
    """Remove one daemon's files entirely: a log that was never collected."""

    name = "delete-daemon"
    identity_preserving = False

    def apply(self, logdir: Path, rng: RandomSource) -> CorruptionReceipt:
        receipt = self._receipt()
        streams = stream_segments(logdir)
        if len(streams) <= 1:
            return receipt  # never delete the only stream
        daemon, paths = rng.choice(streams)
        for path in paths:
            path.unlink()
        receipt.touched.append(daemon)
        receipt.details.append(f"removed {len(paths)} file(s) of {daemon}")
        return receipt


class FormatDrift(Corruption):
    """Drift the log4j layout of some lines, as config changes do.

    Three flavours, all observed in real fleets: an ISO-8601 ``T``
    date-time separator, a ``.`` millisecond separator, and a
    lower-cased level token (all three make the line unparseable), plus
    a month-shifted date that still *looks* like a timestamp but cannot
    be interpreted — the case the bad-timestamp counter exists for.
    """

    name = "format-drift"
    identity_preserving = False

    def __init__(self, rate: float = 0.08):
        self.rate = rate

    def _drift(self, line: bytes, rng: RandomSource) -> bytes:
        flavour = rng.integers(0, 4)
        if flavour == 0:  # ISO-8601 separator
            return line.replace(b" ", b"T", 1)
        if flavour == 1:  # dot milliseconds
            return line.replace(b",", b".", 1)
        if flavour == 2:  # lower-cased level
            head, sep, tail = line.partition(b" INFO ")
            if sep:
                return head + b" info " + tail
            return line.replace(b" WARN ", b" warn ", 1)
        # month shift: shape survives, the timestamp itself is bogus
        return line.replace(b"2018-01-", b"2018-02-", 1)

    def apply(self, logdir: Path, rng: RandomSource) -> CorruptionReceipt:
        receipt = self._receipt()
        for daemon, paths in stream_segments(logdir):
            for path in paths:
                lines, complete = _read_lines(path)
                drifted = 0
                for i, line in enumerate(lines):
                    if not line.startswith(b"2018-") or rng.uniform() >= self.rate:
                        continue
                    lines[i] = self._drift(line, rng)
                    drifted += 1
                if drifted:
                    _write_lines(path, lines, complete)
                    receipt.touched.append(daemon)
                    receipt.details.append(
                        f"{path.name}: drifted {drifted} timestamp(s)"
                    )
        return receipt


#: The full catalog, keyed by CLI-facing name.
CATALOG: Dict[str, Type[Corruption]] = {
    cls.name: cls
    for cls in (
        DuplicateLines,
        InjectNoise,
        RotationSplit,
        TruncateFinalLine,
        TruncateTail,
        ReorderJitter,
        InvalidBytes,
        DeleteDaemon,
        FormatDrift,
    )
}


def make_corruption(name: str, **kwargs) -> Corruption:
    """Instantiate a catalog corruption by name."""
    if name not in CATALOG:
        raise KeyError(f"unknown corruption {name!r} (have {sorted(CATALOG)})")
    return CATALOG[name](**kwargs)


def identity_names() -> List[str]:
    """Corruptions the pipeline must absorb with byte-identical reports."""
    return [n for n, cls in CATALOG.items() if cls.identity_preserving]


def degradation_names() -> List[str]:
    """Corruptions the pipeline must survive with accounted losses."""
    return [n for n, cls in CATALOG.items() if not cls.identity_preserving]
