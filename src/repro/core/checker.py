"""The SDchecker facade: logs in, analysis report out."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from repro.core.bugcheck import find_unused_containers
from repro.core.decompose import decompose
from repro.core.diagnostics import AppDiagnostics
from repro.core.graph import SchedulingGraph
from repro.core.grouping import ApplicationTrace, group_events
from repro.core.parser import AUTO_JOBS, LogMiner, resolve_jobs
from repro.core.report import AnalysisReport
from repro.logsys.store import LogStore

__all__ = ["SDChecker", "analyze_events"]


def analyze_events(events, diagnostics=None) -> AnalysisReport:
    """Steps 2-5 over already-mined events: group, decompose, report.

    Shared by the batch :meth:`SDChecker.analyze` facade and the
    incremental :mod:`repro.live` session (which mines as the logs
    grow, then runs exactly this tail) — one code path is what makes a
    drained live report byte-identical to a batch one.
    """
    traces = group_events(events, diagnostics=diagnostics)
    apps = [decompose(trace) for trace in traces.values()]
    if diagnostics is not None:
        for app in apps:
            diagnostics.apps[app.app_id] = AppDiagnostics(
                app_id=app.app_id,
                missing_components=app.missing_components(),
                skew_warnings=app.skew_warnings(),
            )
    findings = find_unused_containers(traces)
    return AnalysisReport(apps=apps, bug_findings=findings, diagnostics=diagnostics)


class SDChecker:
    """Offline scheduling-delay analyzer for YARN + Spark log files.

    Typical use::

        report = SDChecker().analyze("/path/to/logs")   # or a LogStore
        print(report.summary())
        report.sample("total_delay").p95

    The pipeline is the paper's section III: mine (regex extraction) ->
    group (global-ID binding) -> graph (per-app scheduling DAG) ->
    decompose (delay components) -> report (+ bug check).

    ``jobs`` is a worker-process count or ``"auto"`` (the default),
    which resolves per source via :func:`repro.core.parser.resolve_jobs`
    — serial for small corpora or single-CPU machines, a worker pool
    otherwise.  Parallel mining is byte-identical to serial mining (the
    chunk/stream merge is deterministic), only faster on large corpora.
    """

    def __init__(self, jobs: Union[int, str] = AUTO_JOBS) -> None:
        self._miner = LogMiner()
        self.jobs = jobs

    def _resolved_jobs(self, source: Union[LogStore, str, Path]) -> int:
        return resolve_jobs(self.jobs, source)

    def mine(self, source: Union[LogStore, str, Path]):
        """Step 1: raw scheduling events."""
        jobs = self._resolved_jobs(source)
        if jobs > 1:
            return self._miner.mine_parallel(source, jobs=jobs)
        return self._miner.mine(source)

    def group(self, source: Union[LogStore, str, Path]) -> Dict[str, ApplicationTrace]:
        """Steps 1-2: per-application traces."""
        return group_events(self.mine(source))

    def graph(self, trace: ApplicationTrace) -> SchedulingGraph:
        """Step 3: the scheduling graph of one application."""
        return SchedulingGraph(trace)

    def mine_with_diagnostics(self, source: Union[LogStore, str, Path]):
        """Step 1 with the tolerance ledger: (events, MiningDiagnostics)."""
        jobs = self._resolved_jobs(source)
        if jobs > 1:
            return self._miner.mine_parallel_with_diagnostics(source, jobs=jobs)
        return self._miner.mine_with_diagnostics(source)

    def analyze(self, source: Union[LogStore, str, Path]) -> AnalysisReport:
        """The full pipeline: a report over every application found.

        The degradation contract: this never raises on corrupted input.
        Unparseable lines are skipped and counted, unbindable events
        are counted as orphans, and every application the logs mention
        is decomposed — components whose endpoint events are gone come
        back explicitly ``None`` and are named in the report's
        :class:`~repro.core.diagnostics.MiningDiagnostics`.
        """
        events, diagnostics = self.mine_with_diagnostics(source)
        return analyze_events(events, diagnostics=diagnostics)
