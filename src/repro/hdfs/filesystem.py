"""Replicated file store with contention-aware reads and writes.

Reads fan out over the file's replicas (approximating HDFS's per-block
replica choice for multi-block files); each stream traverses the source
disk (for the page-cache-cold fraction of the file), the source NIC and
the client NIC.  Writes model the HDFS replication pipeline: client NIC
plus disk+NIC on every replica.  All legs are
:class:`~repro.simul.resources.FairShareResource` flows, so dfsIO
writers, task input scans and localization downloads all contend for
the same hardware — the coupling behind Figs 5 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.cluster.contention import cold_fraction, pipelined_transfer
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.params import SimulationParams
from repro.simul.distributions import RandomSource
from repro.simul.engine import Event, SimulationError, Simulator

__all__ = ["Hdfs", "HdfsFile"]


@dataclass(slots=True)
class HdfsFile:
    """A replicated file (or a table directory treated as one blob)."""

    path: str
    size_bytes: float
    replicas: List[Node] = field(default_factory=list)


class Hdfs:
    """The cluster file system service."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        params: SimulationParams,
        rng: RandomSource,
    ):
        self.sim = sim
        self.cluster = cluster
        self.params = params
        self._rng = rng.child("hdfs")
        self._files: Dict[str, HdfsFile] = {}

    # -- namespace ---------------------------------------------------------
    def register_file(
        self,
        path: str,
        size_bytes: float,
        replicas: Optional[List[Node]] = None,
    ) -> HdfsFile:
        """Create ``path`` with replica placement chosen at random."""
        if size_bytes < 0:
            raise SimulationError(f"negative file size for {path!r}")
        if path in self._files:
            raise SimulationError(f"file already exists: {path!r}")
        if replicas is None:
            # Multi-block files spread over many datanodes: the holder
            # set grows with file size (~one extra node per 8 GB) up to
            # the whole cluster, so a 200 GB table's read load lands
            # everywhere rather than on three hot nodes.
            spread = max(
                self.params.hdfs_replication,
                min(len(self.cluster.nodes), int(size_bytes / (8 * 1024**3)) + 1),
            )
            replicas = self._rng.sample(self.cluster.nodes, spread)
        file = HdfsFile(path, float(size_bytes), replicas)
        self._files[path] = file
        return file

    def lookup(self, path: str) -> HdfsFile:
        try:
            return self._files[path]
        except KeyError:
            raise SimulationError(f"no such HDFS file: {path!r}") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    # -- data path -----------------------------------------------------------
    def read(
        self,
        client: Node,
        file: HdfsFile,
        nbytes: Optional[float] = None,
    ) -> Generator[Event, None, float]:
        """Process body: read ``nbytes`` (default: whole file) to ``client``.

        Includes the namenode block lookup, which is client-CPU-bound
        (the paper's explanation for the mild localization slowdown
        under CPU interference, Fig 13d).  Returns elapsed seconds.
        """
        start = self.sim.now
        if nbytes is None:
            nbytes = file.size_bytes
        if nbytes < 0:
            raise SimulationError(f"negative read size {nbytes!r}")
        # Namenode lookup: an RPC whose client-side marshalling and
        # response processing runs on the client CPU.
        lookup_cpu = self.params.namenode_lookup_s
        if lookup_cpu > 0:
            yield client.cpu.submit(lookup_cpu, demand=1.0)
        if nbytes == 0:
            return self.sim.now - start
        streams = []
        # Per-read replica choice: each read hits `replication` sources
        # sampled from the file's holder set (HDFS's per-block replica
        # selection over a multi-block file).
        holders = file.replicas or [client]
        if len(holders) > self.params.hdfs_replication:
            sources = self._rng.sample(holders, self.params.hdfs_replication)
        else:
            sources = holders
        per_stream = nbytes / len(sources)
        for source in sources:
            legs = []
            # Cache hotness is per-source and pressure-dependent: a
            # frequently-localized jar is memory-resident on an idle
            # datanode but evicted under dfsIO write pressure (Fig 12).
            disk_bytes = per_stream * cold_fraction(
                source,
                file.size_bytes,
                self.params.page_cache_bytes,
                self.params.page_cache_eviction_sensitivity,
            )
            if disk_bytes > 0:
                legs.append(source.disk.submit(disk_bytes))
            if source is not client:
                legs.append(source.nic.submit(per_stream))
            streams.extend(legs)
        # All streams converge on the client NIC (remote portion only).
        remote_bytes = sum(per_stream for s in sources if s is not client)
        if remote_bytes > 0:
            streams.append(client.nic.submit(remote_bytes))
        if streams:
            yield self.sim.all_of(streams)
        return self.sim.now - start

    def write(
        self,
        client: Node,
        nbytes: float,
        demand: Optional[float] = None,
        replicas: Optional[List[Node]] = None,
    ) -> Generator[Event, None, float]:
        """Process body: write ``nbytes`` through a replication pipeline.

        ``demand`` caps the stream rate (dfsIO writers are throttled by
        their map task's single-threaded producer).  Returns elapsed
        seconds.
        """
        start = self.sim.now
        if nbytes < 0:
            raise SimulationError(f"negative write size {nbytes!r}")
        if nbytes == 0:
            return 0.0
        if replicas is None:
            # HDFS places the first replica locally when the writer is a
            # datanode, the rest remotely.
            remote = self._rng.sample(
                [n for n in self.cluster.nodes if n is not client],
                max(0, self.params.hdfs_replication - 1),
            )
            replicas = [client] + remote
        path = []
        remote_count = sum(1 for r in replicas if r is not client)
        if remote_count:
            path.append(client.nic)
        for replica in replicas:
            path.append(replica.disk)
            if replica is not client:
                path.append(replica.nic)
        # Register cache-dirtying write pressure on every replica for
        # the duration of the stream.
        per_disk_demand = demand if demand is not None else self.params.disk_bandwidth
        for replica in replicas:
            replica.begin_write(per_disk_demand)
        try:
            yield pipelined_transfer(self.sim, nbytes, path, demand=demand)
        finally:
            for replica in replicas:
                replica.end_write(per_disk_demand)
        return self.sim.now - start
