"""Tests for log records, log4j formatting and the log store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logsys.record import LogRecord, format_timestamp, parse_timestamp
from repro.logsys.store import LogStore


class TestTimestampFormat:
    def test_zero_renders_epoch_midnight(self):
        assert format_timestamp(0.0) == "2018-01-12 00:00:00,000"

    def test_millisecond_rounding(self):
        assert format_timestamp(1.23456).endswith(",235")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_timestamp(-0.001)

    def test_day_rollover(self):
        rendered = format_timestamp(86_400.0 + 3600.0)
        assert rendered.startswith("2018-01-13 01:00:00")

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=0.0, max_value=86_400.0 * 10))
    def test_round_trip_at_ms_precision(self, seconds):
        rendered = format_timestamp(seconds)
        record = LogRecord.parse(f"{rendered} INFO X: y")
        assert record.timestamp == pytest.approx(seconds, abs=0.0005 + 1e-9)


class TestLogRecord:
    def test_render_layout(self):
        r = LogRecord(1.5, "org.apache.Foo", "hello world")
        assert r.render() == "2018-01-12 00:00:01,500 INFO org.apache.Foo: hello world"

    def test_parse_round_trip(self):
        r = LogRecord(12.345, "RMAppImpl", "a: b: c", level="WARN")
        back = LogRecord.parse(r.render())
        assert back.cls == "RMAppImpl"
        assert back.message == "a: b: c"
        assert back.level == "WARN"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            LogRecord.parse("java.lang.NullPointerException")

    def test_try_parse_returns_none_for_noise(self):
        assert LogRecord.try_parse("   at Foo.bar(Foo.java:42)") is None

    def test_parse_class_with_dollar_sign(self):
        line = "2018-01-12 00:00:00,001 INFO a.b.C$D: inner class logger"
        assert LogRecord.parse(line).cls == "a.b.C$D"


class TestLogStore:
    def test_logger_stamps_with_clock(self):
        store = LogStore()
        now = [0.0]
        logger = store.logger("daemon-a", lambda: now[0])
        logger.info("Cls", "first")
        now[0] = 2.0
        logger.warn("Cls", "second")
        records = store.records("daemon-a")
        assert [r.timestamp for r in records] == [0.0, 2.0]
        assert records[1].level == "WARN"

    def test_daemons_sorted(self):
        store = LogStore()
        store.logger("zeta", lambda: 0.0).info("C", "m")
        store.logger("alpha", lambda: 0.0).info("C", "m")
        assert store.daemons == ["alpha", "zeta"]

    def test_len_counts_all_records(self):
        store = LogStore()
        log = store.logger("d", lambda: 0.0)
        for i in range(5):
            log.info("C", f"m{i}")
        assert len(store) == 5

    def test_dump_and_load_round_trip(self, tmp_path):
        store = LogStore()
        log = store.logger("hadoop-resourcemanager", lambda: 1.0)
        log.info("RMAppImpl", "application_1_0001 State change from NEW to SUBMITTED on event = START")
        log.error("Other", "unrelated")
        paths = store.dump(tmp_path)
        assert [p.name for p in paths] == ["hadoop-resourcemanager.log"]
        loaded = LogStore.load(tmp_path)
        assert len(loaded) == 2
        assert loaded.records("hadoop-resourcemanager")[0].cls == "RMAppImpl"

    def test_load_skips_unparseable_lines(self, tmp_path):
        (tmp_path / "daemon.log").write_text(
            "2018-01-12 00:00:00,100 INFO A: ok\n"
            "java.io.IOException: broken pipe\n"
            "\tat Foo.bar(Foo.java:1)\n"
            "2018-01-12 00:00:00,200 INFO B: also ok\n"
        )
        store = LogStore.load(tmp_path)
        assert [r.cls for r in store.records("daemon")] == ["A", "B"]

    def test_from_lines(self):
        store = LogStore.from_lines(
            [
                ("d1", "2018-01-12 00:00:00,000 INFO X: m"),
                ("d1", "not a log line"),
                ("d2", "2018-01-12 00:00:01,000 INFO Y: n"),
            ]
        )
        assert len(store.records("d1")) == 1
        assert len(store.records("d2")) == 1

    def test_all_records_iterates_in_daemon_order(self):
        store = LogStore()
        store.logger("b", lambda: 0.0).info("C", "m1")
        store.logger("a", lambda: 0.0).info("C", "m2")
        daemons = [d for d, _r in store.all_records()]
        assert daemons == ["a", "b"]
