"""Calibration constants for the simulated Spark-on-YARN testbed.

Every latency model in the simulator reads from a :class:`SimulationParams`
instance.  Defaults correspond to the paper's testbed: a 26-node cluster
(one master + 25 workers), two 8-core Xeon E5-2640 with hyper-threading
(32 vcores), 132 GB RAM, 5x1TB RAID-5 disks, 10 Gbps Ethernet, running
Hadoop 3.0.0-alpha3 + Spark 2.2.0 (section IV-A).

Where the paper explains a mechanism (heartbeat-bounded acquisition,
bandwidth-limited localization, the 80%-of-executors gate, per-file
broadcast creation) the constant parameterizes that mechanism.  Where the
paper only reports a distribution (JVM start-up, Docker image load) the
constant is the median of a calibrated lognormal.  Paper-reported targets
are cited inline; EXPERIMENTS.md records measured-vs-paper for each.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional

__all__ = ["SimulationParams", "MB", "GB"]

MB = 1024 * 1024
GB = 1024 * MB


@dataclass
class SimulationParams:
    """All tunable constants of the simulated cluster, in SI units."""

    # ------------------------------------------------------------------
    # Hardware (paper section IV-A)
    # ------------------------------------------------------------------
    #: Worker nodes (the paper's 26-node cluster has 25 workers; one node
    #: is the master running RM/NN/NTP).
    num_nodes: int = 25
    #: vcores per node: 2 sockets x 8 cores x HT.
    cores_per_node: int = 32
    #: usable memory per node in MB (132 GB raw).
    memory_per_node_mb: int = 128 * 1024
    #: aggregate sequential bandwidth of the RAID-5 array, bytes/s.
    disk_bandwidth: float = 400.0 * MB
    #: 10 Gbps Ethernet NIC, bytes/s.
    network_bandwidth: float = 1250.0 * MB
    #: OS page-cache budget per node; HDFS reads below this are served
    #: from memory (drives the small-file/large-file localization split
    #: in Fig 8: 500 MB localizes at wire speed, 8 GB goes to disk).
    page_cache_bytes: float = 1.0 * GB
    #: How aggressively sustained disk pressure evicts the page cache
    #: (see :func:`repro.cluster.contention.cold_fraction`).
    page_cache_eviction_sensitivity: float = 5.0

    # ------------------------------------------------------------------
    # YARN / RPC
    # ------------------------------------------------------------------
    #: Resource calculator: "memory" (YARN's DefaultResourceCalculator —
    #: vcores tracked but not enforced, allowing the CPU oversubscription
    #: the Kmeans experiment exploits) or "dominant" (memory + vcores).
    resource_calculator: str = "memory"
    #: NodeManager -> ResourceManager heartbeat (node updates drive the
    #: Capacity Scheduler's batch allocation).
    nm_heartbeat_s: float = 1.0
    #: AM -> RM heartbeat for MapReduce (the 1 s default that caps the
    #: container acquisition delay in Fig 7c).
    mr_am_heartbeat_s: float = 1.0
    #: AM -> RM heartbeat for Spark while containers are pending
    #: (spark.yarn.scheduler.heartbeat.interval-ms is 200 ms when
    #: allocation is outstanding).
    spark_am_heartbeat_s: float = 0.2
    #: One-way RPC latency median on the 10 GbE fabric.
    rpc_latency_median_s: float = 0.0015
    #: Lognormal sigma for RPC latencies.
    rpc_latency_sigma: float = 0.6
    #: RM CPU time to service one container allocation (caps scheduler
    #: throughput at ~1/x containers/s; Table II observes 2831/s at
    #: full load, well below this cap, i.e. allocation is arrival-bound).
    rm_alloc_service_s: float = 0.00018
    #: RM event-dispatcher overhead per app-level event.
    rm_event_service_s: float = 0.0008
    #: Extra scheduling passes the Capacity Scheduler needs before a
    #: request is satisfiable (locality delay + queue-limit checks);
    #: expressed as a mean number of skipped node updates per container.
    capacity_locality_skips_mean: float = 12.0
    #: Time for the RM to write app state to the state store
    #: (NEW_SAVING -> SUBMITTED).
    rm_state_store_s: float = 0.04
    #: NM service time to admit a startContainer RPC.
    nm_start_container_s: float = 0.01
    #: Weighted tenant fairness for the Fair Scheduler: YARN queue name
    #: -> weight (unlisted queues weigh 1.0).  None keeps flat per-app
    #: max-min fairness, byte-identical to the pre-weights scheduler.
    queue_weights: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Opportunistic (distributed) scheduling
    # ------------------------------------------------------------------
    #: Per-container grant latency of the distributed scheduler (no
    #: node-update wait; Fig 7a: de- median ~80x below ce-).
    opportunistic_grant_s: float = 0.003
    #: Number of candidate nodes the distributed scheduler samples.
    opportunistic_sample_k: int = 2
    #: Extra executors Spark over-requests in opportunistic mode —
    #: the SPARK-21562 bug the paper reports in section V-A.
    spark_overrequest_bug_extra: int = 2

    # ------------------------------------------------------------------
    # Localization (Fig 8)
    # ------------------------------------------------------------------
    #: Fixed per-container localizer start-up (process fork, token
    #: verification, directory creation).
    localization_setup_s: float = 0.08
    #: Default Spark-SQL localization payload: Spark jars + TPC-H jar +
    #: config (the paper's ~500 MB package that localizes in ~500 ms).
    default_localized_bytes: float = 500.0 * MB
    #: HDFS replication factor (3, section IV-A); big localization reads
    #: fan out over this many source replicas.
    hdfs_replication: int = 3
    #: namenode block-lookup CPU time per localization (the CPU-bound
    #: part that slows 1.4x under CPU interference, Fig 13d).
    namenode_lookup_s: float = 0.012
    #: The ContainerLocalizer is itself a short-lived JVM; its start-up
    #: is CPU-bound — the other reason localization slows moderately
    #: under CPU interference (Fig 13d).
    localizer_jvm_cpu_s: float = 0.18

    # ------------------------------------------------------------------
    # Container launching (Fig 9)
    # ------------------------------------------------------------------
    #: NM script preparation (env setup, cgroup, launch-script write).
    launch_script_setup_s: float = 0.05
    #: JVM start to first log line, median, per instance type (Fig 9a:
    #: Spark driver/executor median ~700 ms, MapReduce a bit longer).
    jvm_start_median_s: dict[str, float] = field(
        default_factory=lambda: {
            "spm": 0.66,  # Spark driver (AppMaster)
            "spe": 0.64,  # Spark executor
            "mrm": 0.88,  # MapReduce AppMaster
            "mrsm": 0.80,  # MapReduce map task
            "mrsr": 0.82,  # MapReduce reduce task
        }
    )
    #: Lognormal sigma of JVM start.
    jvm_start_sigma: float = 0.30
    #: CPU work (core-seconds) of a JVM start: the part that contends
    #: with CPU interference (class loading + JIT, Fig 13).
    jvm_start_cpu_fraction: float = 0.75
    #: Bytes of jars/classes a starting JVM reads from the local disk.
    #: Page-cache-hot when the node is idle (zero extra cost); evicted
    #: and disk-bound under dfsIO pressure — the "heavy disk activities
    #: interfere with JVM warm-up" factor of Fig 12.
    jvm_class_load_bytes: float = 150.0 * MB
    #: Docker launch overhead: image load + mount (Fig 9b: +350 ms
    #: median, +658 ms p95, long tail; image is 2.65 GB).
    docker_overhead_median_s: float = 0.28
    docker_overhead_alpha: float = 2.6
    docker_overhead_cap_s: float = 3.0

    # ------------------------------------------------------------------
    # Spark in-application behaviour (Figs 4, 11)
    # ------------------------------------------------------------------
    #: Driver-side SparkContext + ApplicationMaster init before
    #: registering with the RM (driver delay ~3 s in Fig 11a), median.
    driver_init_median_s: float = 2.7
    driver_init_sigma: float = 0.18
    #: Fraction of driver init that is CPU-bound (JVM warm-up + JIT);
    #: scales 2.9x under 16-Kmeans CPU interference (Fig 13c).
    driver_init_cpu_fraction: float = 0.85
    #: Spark launches task scheduling once this fraction of requested
    #: executors has registered (spark.scheduler.minRegisteredResourcesRatio
    #: defaults to 0.8 on YARN; section IV-B).
    min_registered_resources_ratio: float = 0.8
    #: spark.scheduler.maxRegisteredResourcesWaitingTime: proceed with
    #: task scheduling after this long even below the 80% gate.
    max_registered_wait_s: float = 30.0
    #: Creating one broadcast variable for a newly-defined RDD backed by
    #: a file (the expensive per-table cost on the critical path that
    #: section IV-D identifies), median seconds.
    broadcast_create_median_s: float = 0.55
    broadcast_create_sigma: float = 0.45
    #: CPU-bound fraction of broadcast creation (serialization).
    broadcast_cpu_fraction: float = 0.55
    #: Metadata read from HDFS per opened file during RDD init (footer /
    #: schema sampling); contends with cluster IO, which is what couples
    #: the in-application delay to IO interference (Figs 5, 12c).
    rdd_metadata_read_bytes: float = 48.0 * MB
    #: Thread-pool width of the Scala-Future-parallelized RDD init
    #: (the "opt" variant in Fig 11b).
    rdd_init_parallelism: int = 8
    #: Driver-side job submission: DAG construction, task serialization,
    #: task-binary broadcast — between user init and first task dispatch.
    job_submit_median_s: float = 1.3
    job_submit_sigma: float = 0.35
    #: CPU-bound fraction of job submission (DAG build + serialization).
    job_submit_cpu_fraction: float = 0.7
    #: Extra Spark-SQL query planning (catalyst analysis/optimization).
    sql_planning_median_s: float = 1.0
    sql_planning_sigma: float = 0.35
    #: Executor-side initialization after the JVM is up (SparkEnv,
    #: BlockManager registration) before the executor can register with
    #: the driver — part of the Fig 11 executor-delay baseline.
    executor_init_median_s: float = 1.1
    executor_init_sigma: float = 0.3
    #: Classes/jars the executor lazily loads *after* its first log line
    #: (SparkEnv, serializers, shuffle machinery).  Cache-hot and free on
    #: an idle node; disk-bound under IO interference — one of the two
    #: factors behind the Fig 12c executor-delay slowdown.
    executor_init_class_load_bytes: float = 200.0 * MB
    #: Executor-side registration handshake processing at the driver.
    executor_register_service_s: float = 0.05

    # ------------------------------------------------------------------
    # Executors / tasks
    # ------------------------------------------------------------------
    #: Paper default: each Spark executor gets 4 GB and 8 cores.
    executor_memory_mb: int = 4096
    executor_vcores: int = 8
    #: AM container size.
    am_memory_mb: int = 2048
    am_vcores: int = 1
    #: HDFS block size (section IV-A) — determines task fan-out.
    hdfs_block_bytes: float = 128.0 * MB
    #: Per-core scan/compute rate of a TPC-H task, bytes/s.
    task_scan_rate: float = 22.0 * MB
    #: Fixed per-task overhead (scheduling + deserialize + commit).
    task_overhead_s: float = 0.18
    #: Fraction of task time that is CPU-bound (TPC-H is CPU intensive;
    #: CPU interference "slows down the entire Spark-SQL execution").
    task_cpu_fraction: float = 0.8
    #: Failure injection: probability that any one task attempt fails
    #: mid-flight (0 by default; fault-tolerance tests raise it).
    spark_task_failure_prob: float = 0.0
    #: Attempts before a task is declared unschedulable
    #: (spark.task.maxFailures defaults to 4).
    spark_task_max_attempts: int = 4
    #: spark.sql.shuffle.partitions (tuned down from the 200 default for
    #: a small cluster, as TPC-H-on-Spark setups commonly do).
    sql_shuffle_partitions: int = 48
    #: Per-shuffle-task compute at weight 1.0.
    shuffle_task_cpu_s: float = 1.15
    #: Inter-stage overhead: stage submission + shuffle fetch ramp.
    stage_overhead_s: float = 0.45
    #: Minimum scan-stage tasks (Spark splits small tables per file).
    min_scan_tasks: int = 8

    # ------------------------------------------------------------------
    # MapReduce (load generator, Figs 7, 9; Table II)
    # ------------------------------------------------------------------
    map_container_memory_mb: int = 1024
    map_container_vcores: int = 1
    map_task_duration_median_s: float = 12.0
    map_task_duration_sigma: float = 0.4

    # ------------------------------------------------------------------
    # dfsIO interference (Fig 12)
    # ------------------------------------------------------------------
    #: Bytes written to HDFS per dfsIO map task (paper: 20 GB each).
    dfsio_bytes_per_map: float = 20.0 * GB
    #: Per-flow demand cap of a dfsIO writer stream.
    dfsio_stream_rate: float = 260.0 * MB

    # ------------------------------------------------------------------
    # Kmeans interference (Fig 13)
    # ------------------------------------------------------------------
    kmeans_executors: int = 4
    kmeans_executor_vcores: int = 16
    kmeans_iteration_s: float = 20.0
    kmeans_iterations: int = 30

    # ------------------------------------------------------------------
    # Proposed optimizations (paper section V-B / Table III) — all off
    # by default; the optimization benchmarks flip them on.
    # ------------------------------------------------------------------
    #: JVM reuse across recurring applications: warm JVMs skip most of
    #: the start-up and warm-up cost (the paper's fix for driver and
    #: executor delay; requires recurring apps).
    jvm_reuse: bool = False
    #: Fraction of JVM start / driver init / executor init saved when a
    #: warm JVM is reused (JIT code and classes already resident; [27]
    #: attributes ~30% of short-job runtime to warm-up).
    jvm_reuse_discount: float = 0.55
    #: Time to attach a container to a pooled warm JVM.
    jvm_reuse_attach_s: float = 0.06
    #: Localization storage: "shared" (the default — localization files
    #: flow through the same disks/NICs as HDFS data, the Fig 12
    #: vulnerability) or "dedicated" (the paper's proposal: an SSD/RAM
    #: storage class + per-node caching service isolates localization
    #: from both disk and network interference).
    localization_storage: str = "shared"
    #: Bandwidth of the dedicated localization storage class.
    localization_ssd_bandwidth: float = 500.0 * MB
    #: NM localized-resource cache (real YARN behaviour); the ablation
    #: study disables it to show the localization storm it prevents.
    nm_localization_cache: bool = True

    def with_overrides(self, **overrides: Any) -> "SimulationParams":
        """A copy with the given fields replaced (validation included).

        Unknown or ill-typed knob names raise a loud :class:`ValueError`
        naming the offender — a mistyped knob must never be silently
        dropped into a calibration run.
        """
        _check_override_types(overrides)
        new = replace(self, **overrides)
        new.validate()
        return new

    # -- serialization (the calibration artifact format) -------------------
    def to_dict(self) -> Dict[str, Any]:
        """Every field as plain JSON-serializable data.

        Dict-valued fields are copied so mutating the export never
        aliases the params instance.  ``from_dict(p.to_dict())`` is an
        exact round-trip.
        """
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = dict(value) if isinstance(value, dict) else value
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationParams":
        """Rebuild params from :meth:`to_dict` output.

        Raises :class:`ValueError` on unknown keys and on values whose
        type does not match the field (``True`` is not an int count, a
        string is not a latency) — the loud round-trip contract the
        fitted-model artifact format relies on.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"SimulationParams payload must be a mapping, got "
                f"{type(payload).__name__}"
            )
        overrides = dict(payload)
        _check_override_types(overrides)
        return cls(**overrides)

    def validate(self) -> None:
        """Sanity-check invariants the simulator relies on."""
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if not (0.0 < self.min_registered_resources_ratio <= 1.0):
            raise ValueError("min_registered_resources_ratio must be in (0, 1]")
        if self.executor_memory_mb > self.memory_per_node_mb:
            raise ValueError("executor does not fit on a node")
        if self.hdfs_replication < 1:
            raise ValueError("hdfs_replication must be >= 1")
        for key in ("spm", "spe", "mrm", "mrsm", "mrsr"):
            if key not in self.jvm_start_median_s:
                raise ValueError(f"missing jvm_start_median_s entry for {key!r}")
        if self.page_cache_bytes < 0:
            raise ValueError("page_cache_bytes must be >= 0")
        if self.resource_calculator not in ("memory", "dominant"):
            raise ValueError(
                f"unknown resource_calculator {self.resource_calculator!r}"
            )
        if self.localization_storage not in ("shared", "dedicated"):
            raise ValueError(
                f"unknown localization_storage {self.localization_storage!r}"
            )
        if not (0.0 <= self.jvm_reuse_discount < 1.0):
            raise ValueError("jvm_reuse_discount must be in [0, 1)")
        if self.queue_weights is not None:
            for tenant, weight in self.queue_weights.items():
                if weight <= 0:
                    raise ValueError(
                        f"queue_weights[{tenant!r}] must be > 0, got {weight}"
                    )

    def __post_init__(self) -> None:
        self.validate()


#: Fields whose type cannot be inferred from a scalar default: the
#: per-instance-type JVM table (a required dict) and the optional
#: tenant-weight map.
_DICT_FIELDS = frozenset({"jvm_start_median_s"})
_OPTIONAL_DICT_FIELDS = frozenset({"queue_weights"})


def _field_kinds() -> Dict[str, str]:
    """field name -> expected-kind tag, derived from the defaults.

    Every scalar field declares a default (pinned by the params test
    suite), so the default's concrete type is the field's type — no
    fragile string-annotation parsing under ``from __future__ import
    annotations``.
    """
    kinds: Dict[str, str] = {}
    for f in fields(SimulationParams):
        if f.name in _DICT_FIELDS:
            kinds[f.name] = "dict"
        elif f.name in _OPTIONAL_DICT_FIELDS:
            kinds[f.name] = "optional_dict"
        elif isinstance(f.default, bool):
            kinds[f.name] = "bool"
        elif isinstance(f.default, int):
            kinds[f.name] = "int"
        elif isinstance(f.default, float):
            kinds[f.name] = "float"
        elif isinstance(f.default, str):
            kinds[f.name] = "str"
        else:
            raise TypeError(
                f"SimulationParams.{f.name} has no scalar default; add it "
                f"to the dict-field tables in repro.params"
            )
    return kinds


_FIELD_KINDS = _field_kinds()


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _kind_ok(kind: str, value: Any) -> bool:
    if kind == "bool":
        return isinstance(value, bool)
    if kind == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "float":
        return _is_number(value)
    if kind == "str":
        return isinstance(value, str)
    if kind == "optional_dict" and value is None:
        return True
    # dict / optional_dict: string keys, numeric values.
    return isinstance(value, dict) and all(
        isinstance(k, str) and _is_number(v) for k, v in value.items()
    )


def _check_override_types(overrides: Mapping[str, Any]) -> None:
    """Loudly reject unknown knob names and ill-typed values."""
    unknown = sorted(set(overrides) - set(_FIELD_KINDS))
    if unknown:
        raise ValueError(
            f"unknown SimulationParams field(s): {', '.join(unknown)}"
        )
    for name, value in overrides.items():
        kind = _FIELD_KINDS[name]
        if not _kind_ok(kind, value):
            raise ValueError(
                f"SimulationParams.{name} expects {kind}, got "
                f"{type(value).__name__} ({value!r})"
            )
