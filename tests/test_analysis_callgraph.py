"""Tests for the whole-program resolver behind the SD4xx/SD5xx passes."""

from pathlib import Path

from repro.analysis.callgraph import (
    CallGraph,
    ProjectIndex,
    module_name_of,
    resolve_relative_import,
)

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"


class TestModuleNaming:
    def test_plain_module(self):
        assert module_name_of("repro/live/server.py") == "repro.live.server"

    def test_package_init(self):
        assert module_name_of("repro/live/__init__.py") == "repro.live"

    def test_top_level(self):
        assert module_name_of("repro/__init__.py") == "repro"


class TestRelativeImports:
    def test_single_dot_sibling(self):
        # from .compat import x inside repro/pkg/mod.py
        assert (
            resolve_relative_import("repro.pkg.mod", False, 1, "compat")
            == "repro.pkg.compat"
        )

    def test_double_dot_climbs(self):
        assert (
            resolve_relative_import("repro.pkg.mod", False, 2, "other")
            == "repro.other"
        )

    def test_package_init_counts_as_its_own_level(self):
        assert (
            resolve_relative_import("repro.pkg", True, 1, "compat")
            == "repro.pkg.compat"
        )

    def test_bare_from_dot_import(self):
        assert resolve_relative_import("repro.pkg.mod", False, 1, None) == "repro.pkg"

    def test_climbing_past_the_root_is_none(self):
        assert resolve_relative_import("repro", False, 3, "x") is None


class TestAliasChains:
    def test_reexport_resolves_to_stdlib(self):
        index = ProjectIndex.from_sources(
            {
                "repro/pkg/__init__.py": "",
                "repro/pkg/compat.py": "from time import time as now\n",
                "repro/pkg/mod.py": "from .compat import now\n",
            }
        )
        assert index.resolve_dotted("repro.pkg.compat.now") == "time.time"
        assert index.resolve_dotted("repro.pkg.mod.now") == "time.time"

    def test_unaliased_names_come_back_unchanged(self):
        index = ProjectIndex.from_sources({"repro/a.py": "def f():\n    pass\n"})
        assert index.resolve_dotted("os.path.join") == "os.path.join"

    def test_alias_cycles_terminate(self):
        index = ProjectIndex.from_sources(
            {
                "repro/a.py": "from repro.b import x\n",
                "repro/b.py": "from repro.a import x\n",
            }
        )
        # Must not recurse forever; the exact result is unimportant.
        assert isinstance(index.resolve_dotted("repro.a.x"), str)


class TestCallEdges:
    SOURCES = {
        "repro/lib.py": (
            "class Session:\n"
            "    def poll(self):\n"
            "        return fetch()\n"
            "def fetch():\n"
            "    return open('x').read()\n"
        ),
        "repro/app.py": (
            "from repro.lib import Session\n"
            "class Server:\n"
            "    def __init__(self, session: Session):\n"
            "        self.session = session\n"
            "    async def loop(self):\n"
            "        self.session.poll()\n"
        ),
    }

    def test_annotated_attribute_method_resolution(self):
        graph = CallGraph.from_sources(self.SOURCES)
        loop = graph.index.functions["repro.app.Server.loop"]
        assert [c for c, _ in loop.calls] == ["repro.lib.Session.poll"]

    def test_reachability_and_chain(self):
        graph = CallGraph.from_sources(self.SOURCES)
        parents = graph.reachable("repro.app.Server.loop")
        assert "repro.lib.fetch" in parents
        assert graph.chain(parents, "repro.lib.fetch") == [
            "repro.app.Server.loop",
            "repro.lib.Session.poll",
            "repro.lib.fetch",
        ]

    def test_external_calls_are_recorded(self):
        graph = CallGraph.from_sources(self.SOURCES)
        fetch = graph.index.functions["repro.lib.fetch"]
        assert "open" in [name for name, _ in fetch.external_calls]

    def test_locals_do_not_masquerade_as_externals(self):
        graph = CallGraph.from_sources(
            {"repro/x.py": "def f(cb):\n    cb()\n    data = []\n    data.append(1)\n"}
        )
        f = graph.index.functions["repro.x.f"]
        assert f.external_calls == []
        assert f.calls == []

    def test_reachability_stops_at_async_callees(self):
        graph = CallGraph.from_sources(
            {
                "repro/y.py": (
                    "async def inner():\n"
                    "    pass\n"
                    "def outer():\n"
                    "    return inner()\n"
                )
            }
        )
        parents = graph.reachable("repro.y.outer")
        assert "repro.y.inner" not in parents
        assert "repro.y.inner" in graph.reachable("repro.y.outer", through_async=True)

    def test_nested_defs_are_separate_roots(self):
        graph = CallGraph.from_sources(
            {
                "repro/z.py": (
                    "def runner():\n"
                    "    async def serve():\n"
                    "        return 1\n"
                    "    return serve\n"
                )
            }
        )
        nested = graph.index.functions["repro.z.runner.<locals>.serve"]
        assert nested.is_async
        # The nested body is not attributed to the enclosing function.
        assert graph.index.functions["repro.z.runner"].calls == []


class TestRealTree:
    def test_builds_and_resolves_the_live_poll_chain(self):
        graph = CallGraph.build(SRC_ROOT)
        loop = graph.index.functions["repro.live.server.LiveServer._poll_loop"]
        assert loop.is_async
        parents = graph.reachable(loop.qualname)
        blocking_holders = {
            qual
            for qual in parents
            if any(
                name == "open"
                for name, _ in graph.index.functions[qual].external_calls
            )
        }
        assert blocking_holders, "the poll loop must reach file I/O"
        chain = graph.chain(parents, sorted(blocking_holders)[0])
        assert chain[0] == loop.qualname
        assert len(chain) >= 3, "resolution must cross several modules"
