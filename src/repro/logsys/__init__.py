"""Log4j-style logging substrate.

The simulated daemons (ResourceManager, NodeManagers, Spark drivers and
executors) emit :class:`LogRecord` entries rendered exactly in the
log4j layout the paper mines::

    2018-01-12 10:23:45,123 INFO ClassName: message

with 1 millisecond timestamp precision — the stated precision limit of
SDchecker.  A :class:`LogStore` holds one stream per daemon and can be
round-tripped through plain ``.log`` text files so that SDchecker always
operates on rendered text, never on simulator internals.
"""

from repro.logsys.diagnostics import StreamDiagnostics
from repro.logsys.record import LogRecord, format_timestamp, parse_timestamp
from repro.logsys.store import DaemonLogger, LogStore, stream_segments

__all__ = [
    "DaemonLogger",
    "LogRecord",
    "LogStore",
    "StreamDiagnostics",
    "format_timestamp",
    "parse_timestamp",
    "stream_segments",
]
