"""Unit + property suite for the calibration parameter space.

The space is provenance: it rides inside every fitted-model artifact,
so its enumeration order, thinning, and sampling must be pure functions
of (knobs, seed) — no machine-dependent or order-dependent values.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.calibrate.space import (
    DEFAULT_SPACE,
    SCHEDULER_CHOICES,
    SCHEDULER_KNOB,
    Knob,
    ParameterSpace,
)
from repro.simul.distributions import RandomSource

SEEDS = st.integers(min_value=0, max_value=2**16)


class TestKnobValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="not a SimulationParams field"):
            Knob("nm_hearbeat_s", low=0.1, high=1.0)  # the classic typo

    def test_scheduler_knob_allowed(self):
        knob = Knob(SCHEDULER_KNOB, kind="categorical", choices=SCHEDULER_CHOICES)
        assert knob.grid_values() == list(SCHEDULER_CHOICES)

    def test_bad_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            Knob("nm_heartbeat_s", kind="gaussian", low=0.1, high=1.0)

    def test_bad_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            Knob("nm_heartbeat_s", low=0.1, high=1.0, scale="cubic")

    def test_low_ge_high(self):
        with pytest.raises(ValueError, match="low must be < high"):
            Knob("nm_heartbeat_s", low=1.0, high=1.0)

    def test_log_scale_needs_positive_low(self):
        with pytest.raises(ValueError, match="needs low > 0"):
            Knob("nm_heartbeat_s", low=0.0, high=1.0, scale="log")

    def test_grid_too_small(self):
        with pytest.raises(ValueError, match="grid must be >= 2"):
            Knob("nm_heartbeat_s", low=0.1, high=1.0, grid=1)

    def test_categorical_needs_choices(self):
        with pytest.raises(ValueError, match="needs string choices"):
            Knob(SCHEDULER_KNOB, kind="categorical")


class TestKnobValues:
    def test_linear_grid_endpoints(self):
        knob = Knob("nm_heartbeat_s", low=0.5, high=2.5, grid=5)
        values = knob.grid_values()
        assert values[0] == pytest.approx(0.5)
        assert values[-1] == pytest.approx(2.5)
        assert values == sorted(values)

    def test_log_grid_is_geometric(self):
        knob = Knob("nm_heartbeat_s", low=0.25, high=4.0, scale="log", grid=3)
        values = knob.grid_values()
        assert values == pytest.approx([0.25, 1.0, 4.0])

    def test_int_grid_dedups(self):
        knob = Knob("num_nodes", kind="int", low=3, high=5, grid=9)
        assert knob.grid_values() == [3, 4, 5]

    def test_round_trip(self):
        for knob in DEFAULT_SPACE:
            assert Knob.from_dict(knob.to_dict()) == knob

    def test_from_dict_unknown_key(self):
        with pytest.raises(ValueError, match="unknown knob key"):
            Knob.from_dict({"name": "nm_heartbeat_s", "lo": 0.1})

    @given(seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_sample_within_bounds(self, seed):
        rng = RandomSource(seed, "test.space")
        for knob in DEFAULT_SPACE:
            value = knob.sample(rng.child(knob.name))
            if knob.kind == "categorical":
                assert value in knob.choices
            else:
                assert knob.low <= value <= knob.high

    @given(seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_sample_is_seed_pure(self, seed):
        knob = Knob("nm_heartbeat_s", low=0.25, high=4.0, scale="log")
        a = knob.sample(RandomSource(seed, "test.space").child(knob.name))
        b = knob.sample(RandomSource(seed, "test.space").child(knob.name))
        assert a == b


class TestParameterSpace:
    def test_needs_knobs(self):
        with pytest.raises(ValueError, match="at least one knob"):
            ParameterSpace(())

    def test_duplicate_names(self):
        knob = Knob("nm_heartbeat_s", low=0.1, high=1.0)
        with pytest.raises(ValueError, match="duplicate knob names"):
            ParameterSpace((knob, knob))

    def test_round_trip(self):
        assert (
            ParameterSpace.from_dict(DEFAULT_SPACE.to_dict()) == DEFAULT_SPACE
        )

    def test_grid_size(self):
        space = ParameterSpace(
            (
                Knob("nm_heartbeat_s", low=0.5, high=2.0, grid=3),
                Knob(SCHEDULER_KNOB, kind="categorical", choices=("a", "b")),
            )
        )
        assert space.grid_size() == 6
        assert len(space.grid_points()) == 6

    def test_grid_points_cover_every_knob(self):
        for point in DEFAULT_SPACE.grid_points(limit=5):
            assert sorted(point) == sorted(DEFAULT_SPACE.names())

    def test_thinning_is_deterministic_subset(self):
        full = DEFAULT_SPACE.grid_points()
        thin = DEFAULT_SPACE.grid_points(limit=7)
        assert len(thin) == 7
        assert thin == [p for p in full if p in thin]
        assert thin == DEFAULT_SPACE.grid_points(limit=7)

    @given(seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_sample_point_knob_independence(self, seed):
        """A knob's draw must not depend on which other knobs exist."""
        rng = RandomSource(seed, "calibrate.fit").child("trial.0")
        full = DEFAULT_SPACE.sample_point(rng)
        solo_space = ParameterSpace((DEFAULT_SPACE.knobs[0],))
        rng2 = RandomSource(seed, "calibrate.fit").child("trial.0")
        solo = solo_space.sample_point(rng2)
        name = DEFAULT_SPACE.knobs[0].name
        assert solo[name] == full[name]

    def test_sample_point_log_knobs_positive(self):
        rng = RandomSource(123, "calibrate.fit").child("trial.9")
        point = DEFAULT_SPACE.sample_point(rng)
        for knob in DEFAULT_SPACE:
            if knob.kind != "categorical" and knob.scale == "log":
                assert point[knob.name] > 0
                assert not math.isnan(point[knob.name])
