"""Figure 9: launching delay by instance type and container type.

* (a) launching delay per instance type — Spark driver (spm) and
  executor (spe) median ~700 ms; MapReduce AM (mrm), map child (mrsm)
  and reduce child (mrsr) a bit longer.
* (b) Docker vs default YARN containers: Docker adds ~350 ms at the
  median and ~658 ms at p95 (image load + mount of a 2.65 GB image),
  with a long tail from the extra IO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.checker import SDChecker
from repro.core.stats import DelaySample
from repro.experiments.common import resolve_scale
from repro.experiments.harness import TraceScenario
from repro.mapreduce.application import MapReduceApplication
from repro.testbed import Testbed

__all__ = ["Fig9Result", "run_fig9", "run_fig9a", "run_fig9b", "INSTANCE_TYPES"]

INSTANCE_TYPES = ("spm", "spe", "mrm", "mrsm", "mrsr")


def run_fig9a(scale: str = "small", seed: int = 0) -> Dict[str, DelaySample]:
    """Launching-delay sample per instance type, from a mixed workload."""
    n_spark = resolve_scale(scale, small=25, paper=100)
    n_mr = resolve_scale(scale, small=8, paper=30)
    scenario = TraceScenario(n_queries=n_spark, seed=seed, mean_interarrival_s=4.0)
    bed = scenario.build()
    for i in range(n_mr):
        bed.submit(
            MapReduceApplication(f"mr-wc-{i}", num_maps=6, num_reduces=2),
            delay=4.0 * i,
        )
    bed.run_until_all_finished(limit=100_000)
    report = SDChecker().analyze(bed.log_store)
    return report.launching_by_instance_type()


def run_fig9b(scale: str = "small", seed: int = 0) -> Dict[str, DelaySample]:
    """{'default': ..., 'docker': ...} Spark launching-delay samples."""
    n_queries = resolve_scale(scale, small=40, paper=150)
    base = TraceScenario(n_queries=n_queries, seed=seed, mean_interarrival_s=4.0)
    out: Dict[str, DelaySample] = {}
    for key, docker in (("default", False), ("docker", True)):
        report = base.variant(docker=docker).run().report
        out[key] = report.container_sample("launching", workers_only=False)
    return out


@dataclass
class Fig9Result:
    by_instance_type: Dict[str, DelaySample]
    by_container_type: Dict[str, DelaySample]

    def docker_overhead_median(self) -> float:
        return (
            self.by_container_type["docker"].p50
            - self.by_container_type["default"].p50
        )

    def docker_overhead_p95(self) -> float:
        return (
            self.by_container_type["docker"].p95
            - self.by_container_type["default"].p95
        )

    def rows(self) -> List[str]:
        lines = ["Figure 9 — launching delays"]
        lines.append("(a) by instance type:")
        for code in INSTANCE_TYPES:
            sample = self.by_instance_type.get(code)
            if sample:
                lines.append(
                    f"    {code:5s}: med={sample.p50:5.2f}s p95={sample.p95:5.2f}s (n={len(sample)})"
                )
        d, n = self.by_container_type["docker"], self.by_container_type["default"]
        lines.append(
            f"(b) container type: default med={n.p50:5.2f}s p95={n.p95:5.2f}s | "
            f"docker med={d.p50:5.2f}s p95={d.p95:5.2f}s | "
            f"overhead med={self.docker_overhead_median() * 1000:4.0f}ms "
            f"p95={self.docker_overhead_p95() * 1000:4.0f}ms"
        )
        return lines


def run_fig9(scale: str = "small", seed: int = 0) -> Fig9Result:
    return Fig9Result(
        by_instance_type=run_fig9a(scale, seed),
        by_container_type=run_fig9b(scale, seed),
    )
