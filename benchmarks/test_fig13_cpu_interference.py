"""Figure 13: CPU interference (Kmeans apps).

Shape claims at 16 Kmeans apps (paper): total p95 ~1.6x; the
*in-application* path takes the damage — driver delay up to 2.9x and
executor delay up to 2.4x (CPU-bound JVM warm-up) — while localization
slows only mildly (~1.4x median: namenode lookup + localizer JVM are
its only CPU-bound parts).
"""

from repro.experiments.fig13 import FIG13_KMEANS_COUNTS, run_fig13


def test_fig13_cpu_interference(benchmark, scale, seed, record_rows):
    result = benchmark.pedantic(run_fig13, args=(scale, seed), rounds=1, iterations=1)
    record_rows("fig13", result.rows())

    strongest = max(FIG13_KMEANS_COUNTS)

    # Total delay degrades noticeably but moderately (paper: x1.6).
    assert result.slowdown(strongest, "total", 95) > 1.2

    # Driver and executor delays hit hard (paper: x2.9 / x2.4 tails).
    assert result.slowdown(strongest, "driver", 95) > 1.5
    assert result.slowdown(strongest, "executor", 95) > 1.3

    # The in-application path suffers more than the out-application
    # path — the paper's headline contrast with IO interference.
    assert result.slowdown(strongest, "in", 95) > result.slowdown(
        strongest, "out", 95
    )

    # Localization only mildly affected (paper: x1.4 median).
    loc = result.slowdown(strongest, "localization", 50)
    assert loc < result.slowdown(strongest, "driver", 95)
