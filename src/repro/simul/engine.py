"""Generator-based discrete-event simulation kernel.

The kernel follows the classic event-loop design: a binary heap of
``(time, priority, sequence, event)`` entries, an ``Event`` type with
success/failure payloads and callback lists, and a ``Process`` type that
drives a Python generator by resuming it with the value of whatever event
it last yielded.

Determinism: events scheduled for the same timestamp are processed in
schedule order (the monotonically increasing sequence number breaks
ties), so a simulation with a fixed random seed replays identically.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
]

#: Default priority for ordinary events.
NORMAL = 1
#: Priority used for "urgent" bookkeeping events (processed first at a tick).
URGENT = 0


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value supplied by the
    interrupting party.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence with a value or an exception payload.

    Lifecycle: *pending* -> *triggered* (scheduled on the heap) ->
    *processed* (callbacks ran).  Processes wait on events by yielding
    them; an event that fails propagates its exception into every
    waiting process unless marked :attr:`defused`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "defused")

    #: Sentinel for "no value yet".
    _PENDING = object()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callbacks invoked with this event once it is processed, or
        #: ``None`` after processing.
        self.callbacks: Optional[list] = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._scheduled = False
        #: Set to True when a failure has been handled and should not be
        #: re-raised by the simulator at the end of the run.
        self.defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only when triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """Payload of the event (the exception object for failures)."""
        if self._value is Event._PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule its callbacks."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.sim._enqueue(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiting processes receive ``exc``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exc
        self._ok = False
        self.sim._enqueue(self, delay)
        return self

    def trigger(self, event: "Event") -> None:
        """Chain-trigger: adopt the outcome of another event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        sim._enqueue(self, delay)


class Process(Event):
    """Drives a generator; doubles as the process-termination event.

    The generator may yield any :class:`Event`; the process resumes with
    the event's value when it fires (or has the exception thrown in for
    failed events).  The process event itself succeeds with the
    generator's return value.
    """

    __slots__ = ("name", "_generator", "_target")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        #: Event this process is currently waiting on (None when running).
        self._target: Optional[Event] = None
        # Kick off the generator at the current simulation time.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if not self.is_alive:
            return
        target = self._target
        # Detach from the event we were waiting on so its eventual firing
        # does not resume us a second time.
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        wakeup = Event(self.sim)
        wakeup.callbacks.append(self._resume)
        wakeup.fail(Interrupt(cause))
        wakeup.defused = True

    # -- internal ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        sim = self.sim
        sim._active_process = self
        self._target = None
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                event.defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            self.fail(exc)
            return
        sim._active_process = None

        if not isinstance(result, Event):
            # Misbehaving generator: surface a clear error inside it.
            wakeup = Event(sim)
            wakeup.callbacks.append(self._resume)
            wakeup.fail(
                SimulationError(
                    f"process {self.name!r} yielded non-event {result!r}"
                )
            )
            wakeup.defused = True
            return

        if result.callbacks is None:
            # Already processed: resume immediately (next tick, delay 0).
            wakeup = Event(sim)
            wakeup.callbacks.append(self._resume)
            if result._ok:
                wakeup.succeed(result._value)
            else:
                result.defused = True
                wakeup.fail(result._value)
                wakeup.defused = True
        else:
            result.callbacks.append(self._resume)
            self._target = result


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        # Register after validating everything.
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self.events and not self.triggered:
            self.succeed({})

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict:
        # Only *processed* constituents belong in the result: a Timeout
        # is "triggered" from birth (its value is pre-set) but has not
        # occurred until its callbacks ran.
        return {ev: ev._value for ev in self.events if ev.processed}


class AllOf(_Condition):
    """Fires when every constituent event has fired.

    Succeeds with a dict mapping each event to its value; fails as soon
    as any constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: a clock and a heap of scheduled events."""

    def __init__(self):
        self._now: float = 0.0
        self._heap: list = []
        self._seq = count()
        self._active_process: Optional[Process] = None

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Launch ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Invoke ``fn`` (a plain callable) at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        ev = Event(self)
        ev.callbacks.append(lambda _ev: fn())
        ev.succeed(None, delay=when - self._now)
        return ev

    # -- scheduling ------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        event._scheduled = True
        heapq.heappush(self._heap, (self._now + delay, priority, next(self._seq), event))

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event from the heap."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event.defused:
            raise event._value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly that
        time even if the last event fires earlier.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)

    def run_until_complete(self, proc: Process, limit: float = float("inf")) -> Any:
        """Run until ``proc`` terminates; return its value.

        ``limit`` bounds the simulated time as a safety net against
        deadlocked scenarios.
        """
        while not proc.triggered:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: no scheduled events but {proc.name!r} is still alive"
                )
            if self._heap[0][0] > limit:
                raise SimulationError(
                    f"simulated time limit {limit} exceeded waiting for {proc.name!r}"
                )
            self.step()
        if not proc._ok:
            raise proc._value
        proc.defused = True
        return proc._value
