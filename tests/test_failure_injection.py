"""Failure-injection tests: task attempts fail, jobs still complete,
and SDchecker's measurements survive the noise."""

import pytest

from repro.core.checker import SDChecker
from repro.core.validate import validate_traces
from repro.params import SimulationParams
from repro.simul.engine import SimulationError
from repro.testbed import Testbed
from tests.conftest import make_query_app


def _run(failure_prob, max_attempts=8, seed=71):
    params = SimulationParams(
        num_nodes=5,
        spark_task_failure_prob=failure_prob,
        spark_task_max_attempts=max_attempts,
    )
    bed = Testbed(params=params, seed=seed)
    app = make_query_app("q", query=5)
    bed.submit(app)
    bed.run_until_all_finished(limit=10_000)
    return bed, app


class TestTaskFailures:
    def test_job_completes_despite_failures(self):
        bed, app = _run(0.15)
        assert app.finished.processed
        assert "job_done" in app.milestones

    def test_retries_lengthen_the_job(self):
        _bed, app = _run(0.15)
        _bed2, clean = _run(0.0)
        assert app.milestones["job_done"] > clean.milestones["job_done"]

    def test_failure_lines_logged(self):
        bed, app = _run(0.15)
        exec_logs = [
            line
            for daemon in bed.log_store.daemons
            if daemon.startswith("container_")
            for line in bed.log_store.render(daemon)
        ]
        assert any("Exception in task" in line for line in exec_logs)

    def test_sdchecker_unaffected_by_failure_noise(self):
        bed, app = _run(0.15)
        report = SDChecker().analyze(bed.log_store)
        delays = report.apps[0]
        assert delays.complete()
        assert delays.total_delay > 0
        # Error lines do not confuse the validator either.
        assert validate_traces(SDChecker().group(bed.log_store)) == []

    def test_max_attempts_exhaustion_raises(self):
        with pytest.raises(SimulationError, match="maxFailures"):
            _run(1.0, max_attempts=2)

    def test_zero_probability_never_fails(self):
        bed, _app = _run(0.0)
        logs = [
            line
            for daemon in bed.log_store.daemons
            for line in bed.log_store.render(daemon)
        ]
        assert not any("Exception in task" in line for line in logs)


class TestFairScheduler:
    def test_runs_trace_end_to_end(self):
        bed = Testbed(params=SimulationParams(num_nodes=5), seed=72, scheduler="fair")
        apps = [make_query_app(f"q{i}", query=6) for i in range(3)]
        for i, app in enumerate(apps):
            bed.submit(app, delay=2.0 * i)
        bed.run_until_all_finished(limit=10_000)
        assert all(a.finished.processed for a in apps)
        report = SDChecker().analyze(bed.log_store)
        assert all(a.complete() for a in report.apps)

    def test_memory_conserved(self):
        bed = Testbed(params=SimulationParams(num_nodes=5), seed=73, scheduler="fair")
        app = make_query_app("q", query=6)
        bed.submit(app)
        bed.run_until_all_finished(limit=10_000)
        bed.run(until=bed.sim.now + 5.0)
        assert bed.cluster.used_memory_mb() == 0

    def test_starved_app_served_first(self):
        """A small late app gets containers before the hog grows more."""
        from repro.mapreduce.application import MapReduceApplication

        bed = Testbed(params=SimulationParams(num_nodes=5), seed=74, scheduler="fair")
        hog = MapReduceApplication("hog", num_maps=200)
        bed.submit(hog)
        small = make_query_app("small", query=6)
        bed.submit(small, delay=5.0)
        bed.run_until_all_finished(limit=10_000)
        assert small.milestones["allocation_complete"] < hog.milestones["job_done"]

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            Testbed(params=SimulationParams(num_nodes=2), scheduler="random")
