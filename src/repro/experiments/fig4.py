"""Figure 4: overall scheduling delays for the TPC-H query trace.

Paper configuration: 2000 TPC-H queries, 2 GB input, 4 executors each,
google-trace arrivals.  Reported:

* (a) CDFs of job runtime, total, am, in, out — p95 callouts 17.2 s /
  6 s / 12.7 s / 5.3 s;
* (b) normalized delays — total/job ~40% mean (60% worst); in > 70% of
  total, out < 30%, am ~35%;
* (c) standard deviations — `in` varies most and drives total's
  variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.report import AnalysisReport
from repro.core.stats import DelaySample
from repro.experiments.common import resolve_scale
from repro.experiments.harness import ScenarioResult, TraceScenario

__all__ = ["Fig4Result", "run_fig4", "FIG4_METRICS"]

FIG4_METRICS = ("job_runtime", "total_delay", "am_delay", "in_app_delay", "out_app_delay")
_SHORT = {
    "job_runtime": "job",
    "total_delay": "total",
    "am_delay": "am",
    "in_app_delay": "in",
    "out_app_delay": "out",
}


@dataclass
class Fig4Result:
    """Everything Figure 4 plots, plus the raw report."""

    report: AnalysisReport
    scenario: ScenarioResult
    #: (a) per-metric delay samples.
    samples: Dict[str, DelaySample]
    #: (b) normalized samples: total/job, then am,in,out over total.
    normalized: Dict[str, DelaySample]
    #: (c) standard deviations.
    std: Dict[str, float]

    def cdf(self, metric: str, points: int = 50) -> List[Tuple[float, float]]:
        """The CDF series of subfigure (a) for one metric."""
        return self.samples[metric].cdf(points)

    def rows(self) -> List[str]:
        lines = [f"Figure 4 — overall scheduling delays ({len(self.report)} queries)"]
        lines.append("(a) delay distributions:")
        for metric in FIG4_METRICS:
            s = self.samples[metric]
            lines.append(
                f"    {_SHORT[metric]:6s} median={s.p50:6.2f}s  p95={s.p95:6.2f}s"
            )
        lines.append("(b) normalized delays:")
        n = self.normalized
        lines.append(
            f"    total/job mean={n['total/job'].mean():6.1%}  "
            f"worst(p95)={n['total/job'].p95:6.1%}"
        )
        for key in ("am", "in", "out"):
            lines.append(
                f"    {key}/total mean={n[key + '/total'].mean():6.1%}"
            )
        lines.append("(c) standard deviations:")
        for metric in FIG4_METRICS:
            lines.append(f"    {_SHORT[metric]:6s} std={self.std[metric]:6.2f}s")
        return lines


def run_fig4(scale: str = "small", seed: int = 0) -> Fig4Result:
    """Run the Figure 4 experiment at the given scale."""
    n_queries = resolve_scale(scale, small=150, paper=2000)
    scenario = TraceScenario(n_queries=n_queries, seed=seed)
    result = scenario.run()
    report = result.report
    samples = {m: report.sample(m) for m in FIG4_METRICS}
    normalized = {"total/job": report.normalized_total()}
    for metric, short in (("am_delay", "am"), ("in_app_delay", "in"), ("out_app_delay", "out")):
        normalized[f"{short}/total"] = report.normalized_to_total(metric)
    std = {m: samples[m].std() for m in FIG4_METRICS}
    return Fig4Result(
        report=report,
        scenario=result,
        samples=samples,
        normalized=normalized,
        std=std,
    )
