"""repro.live — incremental log tailing, mining, and serving.

The batch :class:`~repro.core.checker.SDChecker` answers "what was the
scheduling delay?" after a run finishes.  This package answers it
*while the run is happening*, without giving up the batch answer:

* :mod:`repro.live.tailer` — rotation-aware tailing of a growing log
  directory (inode-keyed cursors, complete-line ownership, truncation
  re-sync);
* :mod:`repro.live.incremental` — chunk-at-a-time mining through the
  batch fast path's scanner and accumulator, per-app provisional→final
  status, checkpoint/resume;
* :mod:`repro.live.metrics` — a dependency-free counters/gauges/
  histograms registry rendered in Prometheus text format;
* :mod:`repro.live.server` / :mod:`repro.live.client` — a JSON-lines
  query server (bounded per-connection write queues) and its blocking
  client;
* :mod:`repro.live.router` / :mod:`repro.live.sharded` — the sharded
  deployment: worker processes each tailing a slice of the
  directories, a merging router speaking the same wire protocol, and
  an HTTP endpoint exposing aggregated Prometheus metrics;
* :mod:`repro.live.cli` — ``python -m repro.live {watch,serve,query}``
  (``serve --shards N`` runs the sharded deployment).

The contract that makes the live answer trustworthy: once the
directory stops growing, a drained session's report is byte-identical
to a batch run over the same directory, for *any* schedule of chunk
arrivals — pinned by the metamorphic replay suite.  The sharded
extension: a drained deployment's merged report is byte-identical to
batch over the union of all shards' directories, for any shard
assignment.
"""

from repro.live.client import LiveClient, QueryError
from repro.live.incremental import LiveMiner, LiveSession
from repro.live.metrics import (
    MetricsRegistry,
    build_live_registry,
    merge_metric_states,
)
from repro.live.router import (
    RouterServer,
    merge_state_payloads,
    report_from_state_payload,
)
from repro.live.server import (
    JsonLineServer,
    LiveServer,
    ServerHandle,
    serve_in_thread,
)
from repro.live.sharded import ShardedLiveService, partition_directories
from repro.live.tailer import DirectoryTailer, StreamTailer, TailChunk

__all__ = [
    "DirectoryTailer",
    "JsonLineServer",
    "LiveClient",
    "LiveMiner",
    "LiveServer",
    "LiveSession",
    "MetricsRegistry",
    "QueryError",
    "RouterServer",
    "ServerHandle",
    "ShardedLiveService",
    "StreamTailer",
    "TailChunk",
    "build_live_registry",
    "merge_metric_states",
    "merge_state_payloads",
    "partition_directories",
    "report_from_state_payload",
    "serve_in_thread",
]
