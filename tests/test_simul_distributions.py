"""Tests for the seeded random substreams."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simul.distributions import RandomSource


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(5).child("x")
        b = RandomSource(5).child("x")
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_different_names_differ(self):
        root = RandomSource(5)
        assert root.child("a").uniform() != root.child("b").uniform()

    def test_child_independent_of_sibling_creation_order(self):
        r1 = RandomSource(5)
        r1.child("first")
        v1 = r1.child("target").uniform()
        r2 = RandomSource(5)
        v2 = r2.child("target").uniform()
        assert v1 == v2

    def test_nested_names_compose(self):
        a = RandomSource(5).child("x").child("y")
        b = RandomSource(5, "root.x.y")
        assert a.uniform() == b.uniform()


class TestDraws:
    def test_lognormal_median_is_the_median(self):
        rng = RandomSource(0).child("ln")
        draws = [rng.lognormal_median(3.0, 0.4) for _ in range(4000)]
        assert np.median(draws) == pytest.approx(3.0, rel=0.05)

    def test_lognormal_rejects_nonpositive_median(self):
        with pytest.raises(ValueError):
            RandomSource(0).lognormal_median(0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        scale=st.floats(min_value=0.01, max_value=10.0),
        alpha=st.floats(min_value=0.5, max_value=5.0),
        cap_factor=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_bounded_pareto_respects_bounds(self, scale, alpha, cap_factor):
        cap = scale * cap_factor
        rng = RandomSource(1).child("bp")
        for _ in range(20):
            draw = rng.bounded_pareto(scale, alpha, cap)
            assert scale <= draw <= cap

    def test_bounded_pareto_invalid_args(self):
        with pytest.raises(ValueError):
            RandomSource(0).bounded_pareto(2.0, 1.0, 1.0)

    def test_truncated_normal_clipping(self):
        rng = RandomSource(2).child("tn")
        draws = [rng.truncated_normal(0.0, 5.0, low=0.0, high=1.0) for _ in range(200)]
        assert all(0.0 <= d <= 1.0 for d in draws)

    def test_integers_range(self):
        rng = RandomSource(3).child("i")
        draws = {rng.integers(2, 5) for _ in range(100)}
        assert draws == {2, 3, 4}

    def test_sample_distinct_and_capped(self):
        rng = RandomSource(4).child("s")
        population = list(range(10))
        picked = rng.sample(population, 4)
        assert len(picked) == len(set(picked)) == 4
        assert rng.sample(population, 50) != []  # capped at len, no raise
        assert len(rng.sample(population, 50)) == 10

    def test_jitter_within_bounds(self):
        rng = RandomSource(5).child("j")
        for _ in range(100):
            v = rng.jitter(10.0, 0.2)
            assert 8.0 <= v <= 12.0

    def test_shuffled_is_permutation(self):
        rng = RandomSource(6).child("sh")
        seq = list(range(20))
        out = rng.shuffled(seq)
        assert sorted(out) == seq
        assert seq == list(range(20))  # input untouched

    def test_choice_picks_member(self):
        rng = RandomSource(7).child("c")
        assert rng.choice(["a", "b"]) in ("a", "b")

    def test_bernoulli_extremes(self):
        rng = RandomSource(8).child("bn")
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))
