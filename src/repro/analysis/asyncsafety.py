"""Pass 4 — async-safety lint (rules SD401-SD403).

The :mod:`repro.live` server put an asyncio event loop in front of the
miner, and the ROADMAP's sharded live service will widen that surface.
Three hazards matter for a single-threaded loop that promises bounded
poll-to-answer latency:

* **SD401 blocking-in-async** — a blocking call (``time.sleep``, sync
  file/socket I/O, ``subprocess.run``, the miner entry points that do
  file I/O) *reachable* from an ``async def`` body through any chain of
  synchronous project calls.  One stalled callback stalls every
  connected client; the finding names the shortest call chain so the
  offending path is obvious five frames down.
* **SD402 unawaited-coroutine** — a bare expression statement calling a
  coroutine function (the call builds a coroutine object and drops it;
  the body never runs), or discarding the task handle returned by
  ``asyncio.create_task``/``ensure_future`` (the task is never joined
  or cancelled, so its exceptions vanish and shutdown cannot drain it).
* **SD403 unbounded-queue** — ``asyncio.Queue()`` constructed without a
  positive ``maxsize`` (no backpressure: a slow consumer grows the
  queue without bound), and ``await queue.join()`` outside
  ``asyncio.wait_for`` (if the consumer task died with items queued,
  ``join()`` waits forever — the classic shutdown hang).

All three are whole-program queries answered by
:class:`repro.analysis.callgraph.CallGraph`; per the resolver's
contract they under-approximate, so an unresolvable receiver produces
silence, not noise.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    local_bindings,
    walk_own_body,
)
from repro.analysis.findings import Finding, make_finding, sort_findings

__all__ = ["BLOCKING_CALLS", "TASK_SPAWNERS", "analyze", "run", "scan_sources"]

#: Canonical dotted names whose call blocks the calling thread.  The
#: bare names (``open``) are how the resolver reports unshadowed
#: builtins.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "io.open",
        "input",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "urllib.request.urlopen",
        "os.scandir",
        "os.listdir",
        "os.walk",
        "os.stat",
        "os.replace",
        "os.rename",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.rmtree",
    }
)

#: Calls whose *return value* is a task handle that must be retained.
TASK_SPAWNERS = frozenset({"asyncio.create_task", "asyncio.ensure_future"})

_QUEUE_CONSTRUCTORS = frozenset({"asyncio.Queue", "asyncio.PriorityQueue",
                                 "asyncio.LifoQueue"})


def _short(graph: CallGraph, qualname: str) -> str:
    func = graph.index.functions.get(qualname)
    return func.short_name if func is not None else qualname.rsplit(".", 1)[-1]


# -- SD401 ----------------------------------------------------------------

def _blocking_findings(graph: CallGraph, start: FunctionInfo) -> List[Finding]:
    parents = graph.reachable(start.qualname, through_async=False)
    #: blocking name -> (chain length, chain, holder qualname, anchor line)
    best: Dict[str, Tuple[int, List[str], str, int]] = {}
    for qualname in sorted(parents):
        func = graph.index.functions.get(qualname)
        if func is None:
            continue
        for external, lineno in func.external_calls:
            if external not in BLOCKING_CALLS:
                continue
            chain = graph.chain(parents, qualname)
            if qualname == start.qualname:
                anchor = lineno
            else:
                # Anchor at the call site inside the async body that
                # begins the chain.
                anchor = parents[chain[1]][1]
            candidate = (len(chain), chain, qualname, anchor)
            incumbent = best.get(external)
            if incumbent is None or candidate[:2] < incumbent[:2]:
                best[external] = candidate
    findings: List[Finding] = []
    for external in sorted(best):
        _length, chain, holder, anchor = best[external]
        if holder == start.qualname:
            message = (
                f"blocking call {external}() inside async def "
                f"{start.short_name} stalls the event loop; move it to an "
                f"executor or use the asyncio equivalent"
            )
        else:
            via = " -> ".join(_short(graph, q) for q in chain[1:])
            message = (
                f"blocking call {external}() is reachable from async def "
                f"{start.short_name} via {via}; it stalls the event loop "
                f"for every connected client"
            )
        findings.append(make_finding("SD401", start.path, anchor, message))
    return findings


# -- SD402 ----------------------------------------------------------------

def _unawaited_findings(graph: CallGraph, func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    local_types = graph.local_types(func)
    bound = local_bindings(func.node)
    for node in walk_own_body(func.node):
        if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
            continue
        target = graph.resolve_call(func, node.value, local_types, bound)
        if target is None:
            continue
        kind, name = target
        if kind == "project":
            callee = graph.index.functions[name]
            if callee.is_async:
                findings.append(
                    make_finding(
                        "SD402",
                        func.path,
                        node.lineno,
                        f"coroutine {callee.short_name}() is called but "
                        f"never awaited; the call builds a coroutine object "
                        f"and discards it without running the body",
                    )
                )
        elif kind == "external" and name in TASK_SPAWNERS:
            findings.append(
                make_finding(
                    "SD402",
                    func.path,
                    node.lineno,
                    f"{name}() result is discarded; a fire-and-forget task "
                    f"can never be cancelled or joined on shutdown and its "
                    f"exceptions are silently dropped",
                )
            )
    return findings


# -- SD403 ----------------------------------------------------------------

def _is_unbounded_queue_call(call: ast.Call) -> bool:
    """True when a queue constructor call has no positive ``maxsize``."""
    bound: Optional[ast.expr] = None
    if call.args:
        bound = call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "maxsize":
            bound = keyword.value
    if bound is None:
        return True
    if isinstance(bound, ast.Constant) and isinstance(bound.value, int):
        return bound.value <= 0
    return False  # a computed bound: assume the caller knows


def _queue_findings(graph: CallGraph, func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    index = graph.index
    info = index.modules[func.module]
    queue_vars: Set[str] = set()

    def canonical(expr: ast.expr) -> Optional[str]:
        parts: List[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        return index.resolve_dotted_in(info, ".".join(parts))

    # Parameters annotated as queues count too (the shutdown-path
    # helpers receive the connection queue as an argument).
    args = func.node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.annotation is not None and not isinstance(
            arg.annotation, ast.Constant
        ):
            if canonical(arg.annotation) in _QUEUE_CONSTRUCTORS:
                queue_vars.add(arg.arg)

    # First sweep: constructions (flag unbounded ones) and annotations.
    for node in walk_own_body(func.node):
        call: Optional[ast.Call] = None
        names: List[str] = []
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            call = node.value
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            resolved = canonical(node.annotation) if not isinstance(
                node.annotation, ast.Constant
            ) else None
            if resolved in _QUEUE_CONSTRUCTORS:
                queue_vars.add(node.target.id)
            if isinstance(node.value, ast.Call):
                call = node.value
                names = [node.target.id]
        elif isinstance(node, ast.Call):
            call = node
        if call is None:
            continue
        resolved = canonical(call.func)
        if resolved not in _QUEUE_CONSTRUCTORS:
            continue
        queue_vars.update(names)
        if _is_unbounded_queue_call(call):
            findings.append(
                make_finding(
                    "SD403",
                    func.path,
                    call.lineno,
                    f"{resolved}() constructed without a positive maxsize "
                    f"in {func.short_name}; an unbounded queue gives a slow "
                    f"consumer no backpressure",
                )
            )
    # Second sweep: ``await q.join()`` with no timeout guard.  When the
    # join is wrapped in ``asyncio.wait_for`` the Await's direct value
    # is the wait_for call, so the pattern below does not match.
    for node in walk_own_body(func.node):
        if not isinstance(node, ast.Await) or not isinstance(node.value, ast.Call):
            continue
        target = node.value.func
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "join"
            and isinstance(target.value, ast.Name)
            and target.value.id in queue_vars
        ):
            findings.append(
                make_finding(
                    "SD403",
                    func.path,
                    node.lineno,
                    f"await {target.value.id}.join() in {func.short_name} "
                    f"has no timeout; if the consumer task died with items "
                    f"queued, shutdown hangs forever — wrap it in "
                    f"asyncio.wait_for",
                )
            )
    return findings


# -- entry points ----------------------------------------------------------

def analyze(graph: CallGraph) -> List[Finding]:
    """All SD4xx findings over an already-built call graph."""
    findings: List[Finding] = []
    seen: Set[str] = set()
    for qualname in sorted(graph.index.functions):
        func = graph.index.functions[qualname]
        if func.is_async:
            findings.extend(_blocking_findings(graph, func))
        findings.extend(_unawaited_findings(graph, func))
        findings.extend(_queue_findings(graph, func))
    unique = [f for f in findings if f.key not in seen and not seen.add(f.key)]
    return sort_findings(unique)


def scan_sources(sources: Dict[str, str]) -> List[Finding]:
    """SD4xx findings for an in-memory ``{path: source}`` tree (tests)."""
    return analyze(CallGraph.from_sources(sources))


def run(root: Path) -> List[Finding]:
    """The async-safety pass entry point used by the CLI."""
    return analyze(CallGraph.build(root))
