"""The Spark driver (ApplicationMaster) and its scheduling behaviour.

This is where the paper's *in-application delay* comes from:

* **driver delay** (Table I msgs 9 -> 10): JVM warm-up plus SparkContext
  initialization between the driver's first log line and its
  registration with the RM — mostly CPU-bound, hence the 2.9x slowdown
  under CPU interference (Fig 13c).
* **executor delay** (msgs 13 -> 14): executors sit idle while the
  driver runs user initialization (one RDD + broadcast variable per
  opened file, sequential unless the Scala-Future optimization is on),
  plans the query, builds the DAG, and waits for 80% of executors to
  register before dispatching the first task (Fig 10's timeline).

The driver also reproduces the SPARK-21562 over-request bug: in
opportunistic mode it asks for more containers than it launches, leaving
grants with RM-side log states only (section V-A).
"""

from __future__ import annotations

import math
from collections import deque
from itertools import count
from typing import Any, Generator, List, Optional, TYPE_CHECKING

from repro.simul.engine import Event, SimulationError
from repro.spark.executor import STOP, SparkExecutor
from repro.spark.tasks import StageSpec, Task
from repro.yarn.app import ContainerContext, YarnApplication
from repro.yarn.records import ExecutionType, LaunchSpec, ResourceRequest, ResourceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spark.workload import SparkWorkload

__all__ = ["SparkApplication"]

_AM_CLS = "org.apache.spark.deploy.yarn.ApplicationMaster"
_ALLOCATOR_CLS = "org.apache.spark.deploy.yarn.YarnAllocator"
_SC_CLS = "org.apache.spark.SparkContext"
_BACKEND_CLS = "org.apache.spark.scheduler.cluster.YarnSchedulerBackend"


class SparkApplication(YarnApplication):
    """One Spark job submitted to YARN (cluster deploy mode)."""

    AM_INSTANCE_TYPE = "spm"

    #: Spark recovers from forced kills: lost tasks re-enter the pending
    #: queue and a replacement container is requested (the preemption /
    #: node-failure scenarios rely on this).
    supports_container_kill = True

    def __init__(
        self,
        name: str,
        workload: "SparkWorkload",
        num_executors: int = 4,
        docker: bool = False,
        opportunistic: bool = False,
        extra_localized_bytes: float = 0.0,
        parallel_rdd_init: bool = False,
        executor_memory_mb: Optional[int] = None,
        executor_vcores: Optional[int] = None,
        task_threads: Optional[int] = None,
        user: str = "ubuntu",
        queue: str = "default",
    ):
        super().__init__(name, user=user, queue=queue)
        if num_executors < 1:
            raise ValueError("num_executors must be >= 1")
        self.workload = workload
        self.num_executors = num_executors
        self.docker = docker
        #: Request OPPORTUNISTIC containers via the distributed scheduler.
        self.opportunistic = opportunistic
        #: Extra "--files" upload localized by every executor (Fig 8).
        self.extra_localized_bytes = float(extra_localized_bytes)
        #: Parallelize RDD/broadcast init with Futures (Fig 11b "opt").
        self.parallel_rdd_init = parallel_rdd_init
        self._executor_memory_mb = executor_memory_mb
        self._executor_vcores = executor_vcores
        self._task_threads = task_threads
        # Runtime state (populated when the driver starts).
        self.registered_executors: List[SparkExecutor] = []
        self.surplus_grants: List = []
        self._extra_file = None
        self._ctx: Optional[ContainerContext] = None
        self._stopped = False
        self._gate: Optional[Event] = None
        self._stage_done: Optional[Event] = None
        self._stage_remaining = 0
        #: Stage tasks not yet offered to any executor (pull model).
        self._pending_tasks: deque = deque()
        self._task_ids = count(0)
        self._executor_ids = count(1)
        self._rng = None
        #: Containers lost to forced kills (drives the raised launch cap).
        self._relaunches = 0
        #: True while _allocation_loop is pulling grants; replacements
        #: requested then are absorbed by raising its total instead of
        #: racing it for the allocated store.
        self._alloc_active = False
        self._alloc_total = 0
        #: <1.0 when the driver attached to a warm JVM (section V-B).
        self._warm_factor = 1.0
        #: SDchecker-relevant milestones, for white-box assertions in tests.
        self.milestones: dict = {}

    # -- YARN integration -----------------------------------------------------
    def am_heartbeat_intervals(self, params):
        # Fast while allocation is pending, slow when idle (Spark's
        # spark.yarn.scheduler.heartbeat behaviour).
        return (params.spark_am_heartbeat_s, 3.0)

    def prepare_payload(self, services) -> None:
        super().prepare_payload(services)
        if self.extra_localized_bytes > 0:
            # The "--files" upload of Fig 8: when larger than the page
            # cache its localization goes to the source disks.
            self._extra_file = services.hdfs.register_file(
                f"/user/{self.user}/.sparkStaging/{self.name}/extra_files.bin",
                self.extra_localized_bytes,
            )
        self.workload.prepare(services)

    def executor_spec(self, params) -> ResourceSpec:
        return ResourceSpec(
            self._executor_memory_mb or params.executor_memory_mb,
            self._executor_vcores or params.executor_vcores,
        )

    def executor_launch_spec(self, params) -> LaunchSpec:
        files = list(self.payload_files)
        if self._extra_file is not None:
            files.append(self._extra_file)
        return LaunchSpec(
            instance_type="spe", run=self._executor_body, files=files, docker=self.docker
        )

    # -- hooks used by SparkExecutor ---------------------------------------------
    def rpc_latency(self) -> float:
        p = self._ctx.services.params
        return self._rng.child("rpc").lognormal_median(
            p.rpc_latency_median_s, p.rpc_latency_sigma
        )

    def task_threads_per_executor(self) -> int:
        params = self._ctx.services.params
        return self._task_threads or self.executor_spec(params).vcores

    def register_executor(
        self, executor: SparkExecutor
    ) -> Generator[Event, Any, bool]:
        """Executor -> driver registration; returns False post-shutdown."""
        params = self._ctx.services.params
        # Handshake processing happens on the driver's CPU, contending
        # with user initialization running there.
        yield self._ctx.node.cpu.submit(params.executor_register_service_s, demand=1.0)
        if self._stopped:
            return False
        self.registered_executors.append(executor)
        self._ctx.logger.info(
            _BACKEND_CLS,
            f"Registered executor NettyRpcEndpointRef(null) "
            f"({executor.ctx.node.hostname}:{36000 + executor.executor_id}) "
            f"with ID {executor.executor_id}",
        )
        # A mid-stage registrant immediately receives pending offers.
        self._offer_tasks(executor, self.task_threads_per_executor())
        need = self._gate_need()
        if len(self.registered_executors) >= need and not self._gate.triggered:
            self.milestones["gate_satisfied"] = self._ctx.sim.now
            self._gate.succeed(None)
        return True

    def task_finished(self, task: Task, executor: SparkExecutor) -> None:
        # Work-conserving offers: a freed slot pulls the next pending
        # task (Spark's resourceOffers-on-StatusUpdate behaviour).
        self._offer_tasks(executor, 1)
        self._stage_remaining -= 1
        if self._stage_remaining == 0 and self._stage_done is not None:
            self._stage_done.succeed(None)

    def container_killed(self, grant, instance, reason: str) -> None:
        """Recover from a forced container kill (preemption / node loss).

        Reclaims the dead executor's tasks into the pending queue,
        re-offers them to the survivors, and asks the RM for a
        replacement container (Spark's allocator requests missing
        executors on its next heartbeat).
        """
        if self._stopped:
            return
        executor = next(
            (e for e in self.registered_executors if e.ctx.grant is grant), None
        )
        if executor is not None:
            # Remove first so task re-offers below never target the dead
            # executor, then reclaim everything it would strand.
            self.registered_executors.remove(executor)
            lost = executor.kill(reason)
            self._ctx.logger.info(
                _BACKEND_CLS,
                f"Lost executor {executor.executor_id} on "
                f"{executor.ctx.node.hostname}: {reason}",
            )
            self._pending_tasks.extend(lost)
            threads = self.task_threads_per_executor()
            survivors = list(self.registered_executors)
            for _ in range(threads):
                for survivor in survivors:
                    self._offer_tasks(survivor, 1)
        elif instance is not None and instance.is_alive:
            # Killed before it registered with the driver (still in
            # executor init): unwind the instance process directly.
            instance.interrupt(reason)
        self._relaunches += 1
        params = self._ctx.services.params
        execution_type = (
            ExecutionType.OPPORTUNISTIC if self.opportunistic else ExecutionType.GUARANTEED
        )
        self._ctx.am_client.request_containers(
            ResourceRequest(self.executor_spec(params), 1, execution_type)
        )
        if self._alloc_active:
            self._alloc_total += 1
        else:
            self._ctx.sim.process(
                self._replacement_loop(self._ctx),
                name=f"replace-{grant.container_id}",
            )

    def task_failed(self, task: Task, executor: SparkExecutor) -> None:
        """A failed attempt: re-offer up to spark.task.maxFailures."""
        params = self._ctx.services.params
        if task.attempts >= params.spark_task_max_attempts:
            raise SimulationError(
                f"{self.app_id}: task {task.task_id} failed "
                f"{task.attempts} times (spark.task.maxFailures)"
            )
        self._pending_tasks.append(task)
        self._offer_tasks(executor, 1)

    def _offer_tasks(self, executor: SparkExecutor, slots: int) -> None:
        for _ in range(slots):
            if not self._pending_tasks:
                return
            executor.inbox.put(self._pending_tasks.popleft())

    def _gate_need(self) -> int:
        ratio = self._ctx.services.params.min_registered_resources_ratio
        return max(1, math.ceil(ratio * self.num_executors))

    # -- the driver process ----------------------------------------------------------
    def run_application_master(
        self, ctx: ContainerContext
    ) -> Generator[Event, Any, None]:
        sim = ctx.sim
        params = ctx.services.params
        self._ctx = ctx
        self._gate = sim.event()
        self._rng = ctx.services.rng.child(f"spark.{self.app_id}")

        # FIRST_LOG — Table I message 9.
        ctx.logger.info(_AM_CLS, f"Preparing Local resources for {self.app_id}")
        self.milestones["driver_first_log"] = sim.now

        # SparkContext + ApplicationMaster initialization (driver delay).
        init = self._rng.lognormal_median(
            params.driver_init_median_s, params.driver_init_sigma
        )
        if ctx.warm_jvm:
            # JVM reuse (section V-B): warm-up already paid by a prior
            # recurring application.  User code also runs on warm JIT
            # code, so a (smaller) discount applies to the init path.
            init *= 1.0 - params.jvm_reuse_discount
            self._warm_factor = 1.0 - 0.6 * params.jvm_reuse_discount
        else:
            self._warm_factor = 1.0
        cpu_part = init * params.driver_init_cpu_fraction
        if cpu_part > 0:
            yield ctx.node.cpu.submit(cpu_part, demand=1.0)
        if init > cpu_part:
            yield sim.timeout(init - cpu_part)

        yield from ctx.am_client.register()
        # REGISTER — Table I message 10.
        ctx.logger.info(
            _AM_CLS,
            f"Registered ApplicationMaster for {self.app_id} "
            f"(appattempt {self.app_id.attempt(1)})",
        )
        self.milestones["driver_registered"] = sim.now

        # START_ALLO — Table I message 11 (the paper's manual addition).
        extra = params.spark_overrequest_bug_extra if self.opportunistic else 0
        total = self.num_executors + extra
        ctx.logger.info(
            _ALLOCATOR_CLS,
            f"SDCHECKER START_ALLO Will request {total} executor "
            f"container(s) for {self.app_id}",
        )
        execution_type = (
            ExecutionType.OPPORTUNISTIC if self.opportunistic else ExecutionType.GUARANTEED
        )
        ctx.am_client.request_containers(
            ResourceRequest(self.executor_spec(params), total, execution_type)
        )
        self._alloc_total = total
        sim.process(self._allocation_loop(ctx), name=f"alloc-loop-{self.app_id}")

        # User main: RDD init, planning, job submission, stages.
        yield from self._user_main(ctx)

        # Teardown: stop executors, return bug containers, unregister.
        self._stopped = True
        threads = self.task_threads_per_executor()
        for executor in self.registered_executors:
            for _ in range(threads):
                executor.inbox.put(STOP)
        for grant in list(self.surplus_grants):
            ctx.am_client.release_container(grant)
        self.surplus_grants.clear()
        ctx.logger.info(_SC_CLS, "Successfully stopped SparkContext")
        yield from ctx.am_client.unregister()

    def _executor_body(self, ectx: ContainerContext):
        executor = SparkExecutor(self, ectx, next(self._executor_ids))
        return executor.run()

    def _allocation_loop(self, ctx: ContainerContext) -> Generator[Event, Any, None]:
        granted = 0
        launched = 0
        self._alloc_active = True
        try:
            # _alloc_total grows when a container is killed mid-allocation
            # (the replacement rides on this same loop).
            while granted < self._alloc_total:
                grant = yield ctx.am_client.allocated.get()
                granted += 1
                if self._stopped:
                    ctx.am_client.release_container(grant)
                    continue
                if launched >= self.num_executors + self._relaunches:
                    # SPARK-21562: over-requested containers are never
                    # launched; they hold RM-side states only until release.
                    self.surplus_grants.append(grant)
                    continue
                launched += 1
                ctx.sim.process(
                    self._start_executor_container(ctx, grant),
                    name=f"launch-{grant.container_id}",
                )
        finally:
            self._alloc_active = False
        # END_ALLO — Table I message 12.
        ctx.logger.info(
            _ALLOCATOR_CLS,
            f"SDCHECKER END_ALLO All requested containers allocated "
            f"for {self.app_id} ({granted} granted)",
        )
        self.milestones["allocation_complete"] = ctx.sim.now

    def _replacement_loop(self, ctx: ContainerContext) -> Generator[Event, Any, None]:
        """Pull one replacement grant after the allocation loop ended."""
        grant = yield ctx.am_client.allocated.get()
        if self._stopped:
            ctx.am_client.release_container(grant)
            return
        yield from self._start_executor_container(ctx, grant)

    def _start_executor_container(
        self, ctx: ContainerContext, grant
    ) -> Generator[Event, Any, None]:
        params = ctx.services.params
        yield ctx.sim.timeout(self.rpc_latency())
        if not grant.node.active:
            # The node died between the grant and the launch RPC:
            # release the RM-side accounting and request a replacement.
            ctx.services.rm.container_killed(self, grant)
            self.container_killed(grant, None, "node lost before launch")
            return
        nm = ctx.services.rm.nm_for(grant.node)
        nm.start_container(grant, self.executor_launch_spec(params), self)

    # -- user code -------------------------------------------------------------------
    def _user_main(self, ctx: ContainerContext) -> Generator[Event, Any, None]:
        sim = ctx.sim
        params = ctx.services.params
        files = self.workload.input_files
        if not files:
            raise SimulationError(f"{self.name}: workload has no input files")

        if self.parallel_rdd_init:
            width = max(1, params.rdd_init_parallelism)
            for base in range(0, len(files), width):
                batch = files[base : base + width]
                procs = [
                    sim.process(
                        self._init_rdd(ctx, file, base + i),
                        name=f"rdd-init-{self.app_id}-{base + i}",
                    )
                    for i, file in enumerate(batch)
                ]
                yield sim.all_of(procs)
        else:
            for i, file in enumerate(files):
                yield from self._init_rdd(ctx, file, i)
        self.milestones["user_init_done"] = sim.now

        if self.workload.is_sql:
            planning = self._warm_factor * self._rng.lognormal_median(
                params.sql_planning_median_s, params.sql_planning_sigma
            )
            yield ctx.node.cpu.submit(planning, demand=1.0)

        submit = self._warm_factor * self._rng.lognormal_median(
            params.job_submit_median_s, params.job_submit_sigma
        )
        cpu_part = submit * params.job_submit_cpu_fraction
        if cpu_part > 0:
            yield ctx.node.cpu.submit(cpu_part, demand=1.0)
        if submit > cpu_part:
            yield sim.timeout(submit - cpu_part)

        # The scheduler backend refuses to launch tasks until 80% of the
        # requested executors have registered (section IV-B) — or until
        # spark.scheduler.maxRegisteredResourcesWaitingTime (30 s)
        # expires, whichever comes first.
        if not self._gate.triggered:
            yield sim.any_of(
                [self._gate, sim.timeout(params.max_registered_wait_s)]
            )
        self.milestones["job_start"] = sim.now

        for stage in self.workload.build_stages(ctx.services, self):
            yield from self._run_stage(ctx, stage)
        self.milestones["job_done"] = sim.now

    def _init_rdd(
        self, ctx: ContainerContext, file, index: int
    ) -> Generator[Event, Any, None]:
        """One opened file: metadata read + broadcast variable creation."""
        sim = ctx.sim
        params = ctx.services.params
        rng = self._rng.child(f"rdd.{index}")
        nbytes = min(params.rdd_metadata_read_bytes, file.size_bytes)
        if nbytes > 0:
            yield from ctx.services.hdfs.read(ctx.node, file, nbytes=nbytes)
        cost = self._warm_factor * rng.lognormal_median(
            params.broadcast_create_median_s, params.broadcast_create_sigma
        )
        cpu_part = cost * params.broadcast_cpu_fraction
        if cpu_part > 0:
            yield ctx.node.cpu.submit(cpu_part, demand=1.0)
        if cost > cpu_part:
            yield sim.timeout(cost - cpu_part)
        ctx.logger.info(
            _SC_CLS, f"Created broadcast {index} from textFile at {file.path}"
        )

    def _run_stage(
        self, ctx: ContainerContext, stage: StageSpec
    ) -> Generator[Event, Any, None]:
        sim = ctx.sim
        params = ctx.services.params
        # Stage submission + shuffle-fetch ramp before tasks can start.
        if params.stage_overhead_s > 0:
            yield sim.timeout(params.stage_overhead_s)
        noise_rng = self._rng.child(f"stage.{stage.name}")
        self._stage_done = sim.event()
        self._stage_remaining = stage.n_tasks
        tasks = [
            Task(
                task_id=next(self._task_ids),
                stage=stage,
                noise=noise_rng.lognormal_median(1.0, 0.25),
            )
            for _ in range(stage.n_tasks)
        ]
        # Initial offers spread round-robin across registered executors
        # up to their slot counts (Spark's spread-out placement); the
        # remainder waits in the pending queue and is pulled as slots
        # free up or new executors register.
        self._pending_tasks.extend(tasks)
        threads = self.task_threads_per_executor()
        executors = list(self.registered_executors)
        for _ in range(threads):
            for executor in executors:
                self._offer_tasks(executor, 1)
        yield self._stage_done
        self._stage_done = None
