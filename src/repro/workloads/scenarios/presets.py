"""Named scenario presets.

Each preset is a production-shaped situation the paper's measurement
methodology has to survive: diurnal load swings, weighted multi-tenant
fairness, scheduler preemption storms, mid-run node failures, and
autoscale-out churn.  Every preset is deterministic under its seed and
pinned by a golden mined-report snapshot under ``tests/data/`` (see
``tests/data/regen_golden.py``).

Presets are deliberately sized so a full generate → mine → compare
cycle stays in the low seconds; production *scale* (millions of
submissions) is exercised by the vectorized arrival samplers in the
property suite, where no simulation is needed.
"""

from __future__ import annotations

from typing import Dict, List

from repro.params import GB
from repro.workloads.scenarios.scenario import (
    ArrivalSpec,
    ClusterEvent,
    Scenario,
    TenantSpec,
)

__all__ = ["SCENARIO_PRESETS", "get_scenario", "list_scenarios"]


_PRESETS: List[Scenario] = [
    Scenario(
        name="diurnal-burst",
        description=(
            "One tenant on a sinusoidal day cycle: submissions cluster "
            "around the load peak, stretching queue-wait delay."
        ),
        n_jobs=8,
        arrivals=ArrivalSpec(
            kind="diurnal",
            base_rate_per_s=0.02,
            peak_rate_per_s=0.30,
            period_s=240.0,
        ),
        tenants=(TenantSpec("analytics", num_executors=4),),
        params={"num_nodes": 5},
        dataset_bytes=2.0 * GB,
        default_seed=11,
    ),
    Scenario(
        name="multi-tenant-fairness",
        description=(
            "Three weighted tenants on the fair scheduler: a heavy "
            "batch queue, a mid-weight analytics queue, and a "
            "high-priority interactive queue."
        ),
        n_jobs=9,
        arrivals=ArrivalSpec(kind="poisson", rate_per_s=0.20),
        tenants=(
            TenantSpec("batch", share=3.0, weight=1.0, num_executors=5),
            TenantSpec("analytics", share=2.0, weight=2.0, num_executors=3),
            TenantSpec(
                "interactive",
                share=1.0,
                weight=4.0,
                num_executors=2,
                queries=(1, 6, 12),
            ),
        ),
        scheduler="fair",
        params={"num_nodes": 6},
        dataset_bytes=2.0 * GB,
        default_seed=23,
    ),
    Scenario(
        name="preemption-storm",
        description=(
            "A container-hungry batch tenant saturates the cluster; the "
            "preemption monitor reclaims containers for later arrivals. "
            "Exercises the KILLED taxonomy path and preemption_delay."
        ),
        n_jobs=6,
        arrivals=ArrivalSpec(kind="mmpp", rates_per_s=(0.04, 0.8), mean_dwell_s=25.0),
        tenants=(
            TenantSpec("hog", share=1.0, num_executors=10, queries=(5,)),
            TenantSpec("victim", share=2.0, num_executors=3, queries=(1, 6)),
        ),
        scheduler="fair",
        preemption={
            "check_interval_s": 4.0,
            "starvation_timeout_s": 8.0,
            "max_per_pass": 2,
        },
        # 20 GB nodes: the hog's ten 4 GB executors saturate the
        # cluster, so later victims actually starve (128 GB defaults
        # never trigger the monitor).
        params={"num_nodes": 4, "memory_per_node_mb": 20 * 1024},
        dataset_bytes=2.0 * GB,
        default_seed=37,
    ),
    Scenario(
        name="node-failures",
        description=(
            "Heterogeneous hardware with a node lost mid-run and a "
            "second decommissioned near the tail: killed containers "
            "must be re-requested and recovery shows up as "
            "preemption_delay."
        ),
        n_jobs=7,
        arrivals=ArrivalSpec(kind="poisson", rate_per_s=0.15),
        tenants=(TenantSpec("etl", num_executors=5),),
        cluster_events=(
            # 26 s lands the failure inside an app's executor ramp, so
            # the kill surfaces as nonzero preemption_delay rather than
            # a post-ramp relaunch.
            ClusterEvent(at_s=26.0, kind="fail", node=2),
            ClusterEvent(at_s=140.0, kind="decommission", node=4),
        ),
        node_profiles=("baseline", "compute", "memory", "baseline", "burst", "compute"),
        params={"num_nodes": 6},
        dataset_bytes=2.0 * GB,
        default_seed=47,
    ),
    Scenario(
        name="autoscale-out",
        description=(
            "A small cluster hit by an MMPP flash crowd while the "
            "autoscaler joins two nodes mid-burst: late arrivals land "
            "on fresh capacity."
        ),
        n_jobs=8,
        arrivals=ArrivalSpec(kind="mmpp", rates_per_s=(0.05, 0.6), mean_dwell_s=20.0),
        tenants=(TenantSpec("stream", num_executors=3),),
        cluster_events=(
            ClusterEvent(at_s=30.0, kind="add", profile="compute"),
            ClusterEvent(at_s=60.0, kind="add", profile="burst"),
        ),
        params={"num_nodes": 3},
        dataset_bytes=1.0 * GB,
        default_seed=53,
    ),
]

#: All presets by name, in declaration order.
SCENARIO_PRESETS: Dict[str, Scenario] = {s.name: s for s in _PRESETS}


def list_scenarios() -> List[str]:
    """Preset names in declaration order."""
    return list(SCENARIO_PRESETS)


def get_scenario(name: str) -> Scenario:
    """Preset by name; raises KeyError listing what exists."""
    try:
        return SCENARIO_PRESETS[name]
    except KeyError:
        known = ", ".join(SCENARIO_PRESETS)
        raise KeyError(f"unknown scenario {name!r} (have: {known})") from None
