"""Applying corruptions to log directories, and the certification sweep.

:class:`FaultInjector` is the seeded driver: it owns one
:class:`~repro.simul.distributions.RandomSource` root and derives an
independent named substream per corruption, so adding or reordering
catalog entries never perturbs the bytes another corruption produces.

:func:`sweep` is the release gate behind ``make fuzz-smoke``: for every
(corruption, seed) pair it corrupts a scratch copy of a clean corpus,
runs :meth:`SDChecker.analyze <repro.core.checker.SDChecker.analyze>`,
and checks the two contracts — *never crash*, and for
identity-preserving corruptions *byte-identical report*.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.core.checker import SDChecker
from repro.faults.catalog import CATALOG, Corruption, CorruptionReceipt, make_corruption
from repro.simul.distributions import RandomSource

__all__ = ["FaultInjector", "SweepResult", "corrupt_copy", "sweep"]


class FaultInjector:
    """Apply a list of corruptions to a log directory, deterministically.

    The same ``(seed, corruption list)`` always rewrites the directory
    into the same bytes; each corruption draws from its own substream
    keyed by position and name.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._root = RandomSource(seed, name="faults")

    def inject(
        self,
        logdir: Union[str, Path],
        corruptions: Iterable[Union[str, Corruption]],
    ) -> List[CorruptionReceipt]:
        """Corrupt ``logdir`` in place; returns one receipt per corruption."""
        logdir = Path(logdir)
        receipts = []
        occurrence: dict = {}
        for corruption in corruptions:
            if isinstance(corruption, str):
                corruption = make_corruption(corruption)
            # Substreams are keyed by (name, occurrence-of-that-name),
            # never by list position: prepending a different corruption
            # must not perturb the bytes this one produces.
            nth = occurrence.get(corruption.name, 0)
            occurrence[corruption.name] = nth + 1
            rng = self._root.child(f"{corruption.name}.{nth}")
            receipts.append(corruption.apply(logdir, rng))
        return receipts


def corrupt_copy(
    clean_dir: Union[str, Path],
    out_dir: Union[str, Path],
    corruptions: Iterable[Union[str, Corruption]],
    seed: int = 0,
) -> List[CorruptionReceipt]:
    """Copy ``clean_dir`` to ``out_dir`` and corrupt the copy."""
    clean_dir, out_dir = Path(clean_dir), Path(out_dir)
    shutil.copytree(clean_dir, out_dir, dirs_exist_ok=True)
    return FaultInjector(seed).inject(out_dir, corruptions)


@dataclass
class SweepResult:
    """Outcome of one (corruption, seed) certification cell."""

    corruption: str
    seed: int
    #: analyze() completed without raising — the universal contract.
    crashed: bool = False
    error: str = ""
    #: For identity-preserving corruptions only: report bytes matched
    #: the clean corpus (None for degradation corruptions).
    identity_ok: Optional[bool] = None
    #: The diagnostics ledger admitted degradation.
    degraded: bool = False
    receipts: List[CorruptionReceipt] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """The cell's verdict under the two-contract rule."""
        return not self.crashed and self.identity_ok is not False

    def describe(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        extras = []
        if self.crashed:
            extras.append(f"crashed: {self.error}")
        if self.identity_ok is False:
            extras.append("report diverged from clean corpus")
        if self.degraded:
            extras.append("degraded (accounted)")
        tail = f" [{'; '.join(extras)}]" if extras else ""
        return f"{verdict} {self.corruption} seed={self.seed}{tail}"


def _report_fingerprint(report) -> str:
    """The byte-identity oracle: summary + full export, no diagnostics."""
    return report.summary() + "\n" + json.dumps(report.to_dict(), sort_keys=True)


def sweep(
    clean_dir: Union[str, Path],
    seeds: Sequence[int],
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> List[SweepResult]:
    """Certify the mining pipeline against the corruption catalog.

    Runs every named corruption at every seed against a scratch copy of
    ``clean_dir``.  ``jobs`` is forwarded to :class:`SDChecker`, so the
    sweep can certify the parallel mining path as well as the serial
    one.
    """
    clean_dir = Path(clean_dir)
    if names is None:
        names = sorted(CATALOG)
    checker = SDChecker(jobs=jobs)
    clean_fingerprint = _report_fingerprint(checker.analyze(clean_dir))
    results = []
    for name in names:
        identity = CATALOG[name].identity_preserving
        for seed in seeds:
            result = SweepResult(corruption=name, seed=seed)
            with tempfile.TemporaryDirectory(prefix="sdfaults-") as scratch:
                out = Path(scratch) / "logs"
                result.receipts = corrupt_copy(clean_dir, out, [name], seed=seed)
                try:
                    report = checker.analyze(out)
                except Exception as exc:  # the contract is: this never happens
                    result.crashed = True
                    result.error = f"{type(exc).__name__}: {exc}"
                else:
                    if report.diagnostics is not None:
                        result.degraded = report.diagnostics.degraded()
                    if identity:
                        result.identity_ok = (
                            _report_fingerprint(report) == clean_fingerprint
                        )
            results.append(result)
    return results
