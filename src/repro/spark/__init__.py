"""Simulated Spark 2.2 on YARN.

The in-application half of the two-level design (section II): the
driver (ApplicationMaster) that initializes the SparkContext, requests
executors through :class:`~repro.yarn.app.AMRMClient`, runs the user's
initialization code (per-file RDD + broadcast creation — the executor
delay of section IV-D), and schedules tasks once 80% of executors have
registered; and the executors whose FIRST_LOG/FIRST_TASK log lines are
Table I messages 13 and 14.
"""

from repro.spark.application import SparkApplication
from repro.spark.executor import SparkExecutor, STOP
from repro.spark.tasks import StageSpec, Task
from repro.spark.workload import SparkWorkload

__all__ = ["STOP", "SparkApplication", "SparkExecutor", "SparkWorkload", "StageSpec", "Task"]
