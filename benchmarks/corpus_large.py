"""Seeded multi-GB log corpus, generated straight to disk.

``benchmarks/test_miner_throughput.py`` builds its corpus in a
:class:`~repro.logsys.store.LogStore` and dumps it — fine at ~500k
lines, impossible at the multi-GB scale where the mmap-vs-read(2)
question actually matters (a multi-GB corpus cannot be materialized in
memory first, and the interesting regime is precisely the one where
the kernel page cache and copy volume dominate).

:func:`generate_large_corpus` therefore renders log4j text directly
into ``<daemon>.log`` files, reusing the exact line shapes of the
throughput corpus (RM app/container state changes, NM container
transitions, AM SDCHECKER allocation markers, executor task lines
drowned in chatter) so the mined event structure is the familiar one —
just at whatever byte size the caller asks for.

Determinism: the generator is fully seeded (`random.Random(seed)`)
and clocked by a counter, so a ``(target_bytes, seed)`` pair always
produces byte-identical files — the large benchmark's serial/parallel
and mmap/read(2) equivalence checks compare runs over one fixed
corpus, and re-runs are reproducible across machines.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, TextIO, Tuple

from repro.logsys.record import format_timestamp

__all__ = ["generate_large_corpus", "DEFAULT_SEED"]

DEFAULT_SEED = 20180112

_EXECUTORS_PER_APP = 4
_NM_HOSTS = 7

#: Executor chatter — the noise floor real throughput is decided by.
#: Same shapes as the throughput benchmark, including the near-miss
#: lines that share a literal prefix with a real message.
_EXEC_CHATTER = (
    "Starting executor heartbeat thread",
    "Finished task 3.0 in stage 1.0 (TID 7) in 23 ms on node02 (1/4)",
    "Running task 1.0 in stage 2.0 (TID 11)",
    "Block broadcast_3_piece0 stored as bytes in memory",
    "Told master about block broadcast_3_piece0",
    "Reading broadcast variable 3 took 2 ms",
    "Got assigned task slot on host node02",
    "Task attempt finished cleanly",
)

#: Noise lines per executor stream.  ~100 B/line puts one app (4
#: executors + AM + RM/NM bookkeeping) at roughly 1 MiB, so app count
#: scales linearly with the byte target.
_NOISE_PER_EXECUTOR = 2400


class _Clock:
    """1 ms-per-line monotone clock with a cached per-second prefix.

    ``format_timestamp`` is an f-string cascade; calling it per line is
    the difference between a generator that takes seconds and one that
    takes minutes at multi-GB scale.  The date+time part only changes
    once a second (= every 1000 lines), so cache it.
    """

    __slots__ = ("millis", "_sec", "_prefix")

    def __init__(self) -> None:
        self.millis = 0
        self._sec = -1
        self._prefix = ""

    def stamp(self) -> str:
        self.millis += 1
        sec, ms = divmod(self.millis, 1000)
        if sec != self._sec:
            self._sec = sec
            # "yyyy-MM-dd HH:mm:ss,SSS" minus the three millis digits.
            self._prefix = format_timestamp(float(sec))[:-3]
        return f"{self._prefix}{ms:03d}"


def generate_large_corpus(
    directory: str | Path,
    target_bytes: int,
    seed: int = DEFAULT_SEED,
) -> Tuple[int, int]:
    """Write a corpus of at least ``target_bytes`` of log text.

    Returns ``(total_bytes, total_lines)`` actually written.  Apps are
    emitted whole, so the corpus overshoots the target by at most one
    app's worth (~1 MiB).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rng = random.Random(seed)
    clock = _Clock()
    written = 0
    lines = 0

    def open_stream(daemon: str) -> TextIO:
        return open(directory / f"{daemon}.log", "w", encoding="utf-8", newline="")

    rm = open_stream("hadoop-resourcemanager")
    nms = [open_stream(f"hadoop-nodemanager-node{n:02d}") for n in range(1, _NM_HOSTS + 1)]
    handles: List[TextIO] = [rm, *nms]

    def emit(handle: TextIO, cls: str, message: str) -> None:
        nonlocal written, lines
        line = f"{clock.stamp()} INFO {cls}: {message}\n"
        handle.write(line)
        written += len(line)  # every shape here is pure ASCII
        lines += 1

    def emit_stream(daemon: str, records: List[Tuple[str, str]]) -> None:
        """One container stream, built in memory and written once."""
        nonlocal written, lines
        parts = [
            f"{clock.stamp()} INFO {cls}: {message}\n" for cls, message in records
        ]
        text = "".join(parts)
        with open_stream(daemon) as handle:
            handle.write(text)
        written += len(text)
        lines += len(parts)

    try:
        app_index = 0
        while written < target_bytes:
            app_index += 1
            i = app_index
            app = f"application_1515715200000_{i:04d}"
            containers = [
                f"container_1515715200000_{i:04d}_01_{c:06d}"
                for c in range(1, _EXECUTORS_PER_APP + 2)
            ]
            am, executors = containers[0], containers[1:]
            emit(rm, "x.RMAppImpl", f"{app} State change from NEW to SUBMITTED on event = START")
            emit(rm, "x.RMAppImpl", f"{app} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED")
            for c_idx, cid in enumerate(containers):
                emit(rm, "x.RMContainerImpl", f"{cid} Container Transitioned from NEW to ALLOCATED")
                emit(rm, "x.RMContainerImpl", f"{cid} Container Transitioned from ALLOCATED to ACQUIRED")
                nm = nms[(i + c_idx) % _NM_HOSTS]
                emit(nm, "x.ContainerImpl", f"Container {cid} transitioned from NEW to LOCALIZING")
                emit(nm, "x.ContainerImpl", f"Container {cid} transitioned from LOCALIZING to SCHEDULED")
                emit(nm, "x.ContainerImpl", f"Container {cid} transitioned from SCHEDULED to RUNNING")
                emit(nm, "x.ContainersMonitorImpl", f"Memory usage of ProcessTree for {cid}: 180MB")
            emit(rm, "x.RMAppImpl", f"{app} State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED")

            emit_stream(am, [
                ("org.apache.spark.deploy.yarn.ApplicationMaster", "Preparing Local resources"),
                ("org.apache.spark.deploy.yarn.ApplicationMaster", f"Registered ApplicationMaster for {app}"),
                ("org.apache.spark.deploy.yarn.YarnAllocator", f"SDCHECKER START_ALLO Will request {_EXECUTORS_PER_APP} executor container(s) for {app}"),
                ("org.apache.spark.deploy.yarn.YarnAllocator", f"SDCHECKER END_ALLO All requested containers allocated for {app} ({_EXECUTORS_PER_APP} granted)"),
            ])
            for j, cid in enumerate(executors):
                records: List[Tuple[str, str]] = [(
                    "org.apache.spark.executor.CoarseGrainedExecutorBackend",
                    f"Started daemon with process name: {j + 2}@node02 for container {cid}",
                )]
                chatter = "org.apache.spark.executor.Executor"
                # Seeded draw: the chatter mix (and hence the byte
                # layout) varies across executors but never across runs.
                task_at = rng.randrange(_NOISE_PER_EXECUTOR // 2, _NOISE_PER_EXECUTOR)
                for k in range(_NOISE_PER_EXECUTOR):
                    if k == task_at:
                        records.append((chatter, f"Got assigned task {j}"))
                    records.append((chatter, rng.choice(_EXEC_CHATTER)))
                emit_stream(cid, records)
            emit(rm, "x.RMAppImpl", f"{app} State change from RUNNING to FINISHED on event = ATTEMPT_FINISHED")
    finally:
        for handle in handles:
            handle.close()
    return written, lines
