# Developer entry points.  REPRO_SCALE=paper switches the benchmark
# suite to the full section-IV trace sizes.

PYTHON ?= python

.PHONY: install test bench bench-miner bench-miner-large bench-live bench-calibrate bench-paper examples fuzz-smoke live-smoke live-shard-smoke scenario-smoke calibrate-smoke lint sanitize clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Miner throughput only (serial vs parallel vs the pre-streaming
# baseline); appends a trajectory point to benchmarks/results/BENCH_miner.json.
bench-miner:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_miner_throughput.py -q -s

# Memory-path benchmark at multi-GB scale: generates a seeded corpus
# straight to disk and times mmap windows vs read(2) vs --jobs 4 over
# the same bytes.  Size with REPRO_LARGE_MB (default 2048); appends a
# point to benchmarks/results/BENCH_miner.json.
bench-miner-large:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_miner_large.py -q -s

# Live-mining ingest + query-latency benchmark; appends a trajectory
# point to benchmarks/results/BENCH_live.json.
bench-live:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_live_throughput.py -q -s

# End-to-end smoke of the live subsystem: the watch/serve/query CLI,
# the replay-equivalence contract, and the smoke-mode throughput bars.
live-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_live_smoke.py tests/test_live_server.py -q
	REPRO_BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_live_throughput.py -q -s

# Sharded deployment smoke: partition/merge units, the router over
# real shard servers, a 2-process ShardedLiveService with the HTTP
# metrics endpoint, and the smoke-mode shard-scaling benchmark (which
# re-checks merged-drain == batch at benchmark scale).
live-shard-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_live_sharded.py -q
	REPRO_BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_live_throughput.py::test_sharded_ingest_scaling -q -s

# Scenario-pack smoke: generate the smallest preset at its pinned
# seed, mine it (serial + parallel), and compare against the committed
# golden snapshot; plus the CLI error-path regressions.
scenario-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments scenario --list
	PYTHONPATH=src $(PYTHON) -m pytest "tests/test_scenarios_golden.py::TestSnapshots::test_matches_snapshot[autoscale-out]" "tests/test_scenarios_golden.py::TestSnapshots::test_parallel_mining_is_byte_identical[autoscale-out]" tests/test_scenarios_golden.py::TestCLI -q

# Calibration smoke: a tiny self-fit on diurnal-burst (the baseline
# trial must score exactly 0), the golden fitted-model byte pin, and
# the whatif/predict CLI round-trip.
calibrate-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_calibrate_cli.py tests/test_calibrate_fit.py::TestSelfFit tests/test_calibrate_fit.py::TestGoldenFit -q

# Calibration trial throughput (trials/s, serial vs --jobs) with the
# CPU-gated parallel-speedup assertion; appends a trajectory point to
# benchmarks/results/BENCH_calibrate.json.
bench-calibrate:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_calibrate_throughput.py -q -s

# Seeded corruption sweep over the golden corpus: every catalog
# corruption x seed must leave analyze() crash-free, and the
# identity-preserving ones byte-identical.  REPRO_BENCH_SMOKE=1 (set
# here) shrinks the sweep to CI size; unset it for the full 25 seeds.
fuzz-smoke:
	REPRO_BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m repro.faults sweep tests/data/golden

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/scheduler_comparison.py --queries 20
	$(PYTHON) examples/localization_study.py --queries 8
	$(PYTHON) examples/interference_study.py --queries 25
	$(PYTHON) examples/offline_analysis.py --queries 12

# sdlint: catalog coverage, state-machine structure, determinism,
# async safety (SD4xx), and process-boundary safety (SD5xx).  Findings
# above the checked-in sdlint.baseline fail the build, and so does a
# stale baseline (regenerate with --write-baseline and review).
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	PYTHONPATH=src $(PYTHON) -m repro.analysis
	PYTHONPATH=src $(PYTHON) -m repro.analysis --check-baseline

# The full suite under the runtime sanitizer: every asyncio callback
# timed (SD601), every executor submission pickle-checked and
# spot-verified for worker determinism (SD602/SD603).  Any recorded
# violation fails the session at teardown.
sanitize:
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m pytest tests/ -q

# Caches only — benchmarks/results and src/repro.egg-info are committed
# and must survive a clean.
clean:
	rm -rf .pytest_cache .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
