"""Supervisor for a sharded live deployment: N workers + one router.

``python -m repro.live serve DIR... --shards N`` builds one of these.
The supervisor:

1. partitions the log directories round-robin across ``min(N, dirs)``
   worker *processes* — each worker owns a full
   :class:`~repro.live.incremental.LiveSession` (its own tailer, miner,
   metrics registry) on its own event loop, so ingest parallelism is
   real OS-level parallelism, not cooperative scheduling;
2. starts a :class:`~repro.live.router.RouterServer` on a background
   thread of the supervisor process, speaking the same JSON-lines
   protocol as a single server — existing clients and the ``query``
   CLI work unchanged;
3. optionally serves ``GET /metrics`` over plain stdlib HTTP,
   rendering the *aggregated* (all shards + router) Prometheus text —
   the scrape endpoint a fleet deployment points its collector at.

Workers report their bound port back over a multiprocessing queue; a
worker that fails to bind reports the error instead, and
:meth:`ShardedLiveService.start` re-raises it immediately rather than
hanging (the process-level analogue of the ``serve_in_thread`` startup
contract).  Shutdown flows through the wire protocol: a ``shutdown``
op at the router fans out to every shard, so the whole deployment
stops from one client request — or from :meth:`stop`.

The worker entry point is a top-level function and every argument it
takes is a plain picklable value, so the supervisor works under both
``fork`` and ``spawn`` start methods (SD5xx process-boundary rules).
"""

from __future__ import annotations

import asyncio
import http.server
import json
import multiprocessing
import threading
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.live.client import LiveClient
from repro.live.router import RouterServer
from repro.live.server import DEFAULT_QUEUE_DEPTH, ServerHandle

__all__ = [
    "ShardedLiveService",
    "partition_directories",
    "serve_router_in_thread",
]

#: Seconds the supervisor waits for each worker to report its port.
WORKER_START_TIMEOUT = 30.0


def partition_directories(
    directories: Sequence[Union[str, Path]], shards: int
) -> List[List[str]]:
    """Round-robin the directories across at most ``shards`` workers.

    Deterministic (assignment depends only on input order), never
    produces an empty shard: with fewer directories than requested
    shards, the extra shards simply do not exist.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    paths = [str(path) for path in directories]
    if not paths:
        raise ValueError("at least one directory is required")
    count = min(shards, len(paths))
    return [paths[index::count] for index in range(count)]


def _worker_main(
    index: int,
    directories: List[str],
    host: str,
    port_queue,
    poll_interval: float,
    evict_after_polls: Optional[int],
    queue_depth: int,
    poll: bool,
) -> None:
    """One shard: a LiveSession + LiveServer on a fresh event loop.

    Top-level (picklable) by design; reports ``("ok", index, port)`` or
    ``("error", index, message)`` exactly once, before serving.
    """
    # Imported here so a spawn-start worker pays its own import cost and
    # the module graph stays import-cycle free.
    from repro.live.incremental import LiveSession
    from repro.live.server import LiveServer

    async def _serve() -> None:
        try:
            session = LiveSession(
                directories, evict_after_polls=evict_after_polls
            )
            server = LiveServer(
                session,
                host=host,
                port=0,
                poll_interval=poll_interval,
                queue_depth=queue_depth,
                poll=poll,
            )
            await server.start()
        except BaseException as exc:  # noqa: BLE001 - relayed to supervisor
            port_queue.put(("error", index, f"{type(exc).__name__}: {exc}"))
            raise
        port_queue.put(("ok", index, server.bound_port))
        await server.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    except Exception:
        # Already reported through the queue; a worker's stderr
        # traceback would only interleave with the supervisor's.
        pass


def serve_router_in_thread(
    shards: Sequence[Tuple[str, int]],
    host: str = "127.0.0.1",
    port: int = 0,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    propagate_shutdown: bool = True,
) -> ServerHandle:
    """Run a :class:`RouterServer` on a daemon thread; returns its handle.

    Same startup contract as :func:`~repro.live.server.serve_in_thread`:
    a bind failure re-raises here, immediately.
    """
    started = threading.Event()
    holder: dict = {}

    async def _main() -> None:
        router = RouterServer(
            shards,
            host=host,
            port=port,
            queue_depth=queue_depth,
            propagate_shutdown=propagate_shutdown,
        )
        await router.start()
        holder["server"] = router
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        await router.serve_until_shutdown()

    def _run() -> None:
        try:
            asyncio.run(_main())
        except BaseException as exc:  # noqa: BLE001 - relayed to caller
            holder.setdefault("error", exc)
        finally:
            started.set()

    thread = threading.Thread(
        target=_run, name="repro-live-router", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("router failed to start within 30s")
    error = holder.get("error")
    if error is not None:
        raise error
    if "server" not in holder:
        raise RuntimeError("router exited before binding")
    return ServerHandle(holder["server"], holder["loop"], thread)


class _MetricsHTTPHandler(http.server.BaseHTTPRequestHandler):
    """``GET /metrics`` → the deployment's aggregated Prometheus text."""

    server_version = "repro-live-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "try /metrics")
            return
        try:
            with LiveClient(
                self.server.router_host, self.server.router_port
            ) as client:
                body = client.metrics().encode("utf-8")
        except Exception as exc:  # noqa: BLE001 - surfaced as HTTP 503
            self.send_error(503, f"router unavailable: {exc}")
            return
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:
        """Scrapes are periodic; stderr noise helps nobody."""


class _MetricsHTTPServer(http.server.ThreadingHTTPServer):
    daemon_threads = True
    router_host: str = ""
    router_port: int = 0


class ShardedLiveService:
    """The full deployment: worker processes, router, HTTP metrics."""

    def __init__(
        self,
        directories: Sequence[Union[str, Path]],
        shards: int,
        host: str = "127.0.0.1",
        router_port: int = 0,
        http_port: Optional[int] = None,
        poll_interval: float = 0.25,
        evict_after_polls: Optional[int] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        poll: bool = True,
        start_method: Optional[str] = None,
    ):
        self.partitions = partition_directories(directories, shards)
        self.host = host
        self.router_port = router_port
        self.http_port = http_port
        self.poll_interval = poll_interval
        self.evict_after_polls = evict_after_polls
        self.queue_depth = queue_depth
        self.poll = poll
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._mp = multiprocessing.get_context(start_method)
        self._workers: List = []
        self.shard_addresses: List[Tuple[str, int]] = []
        self._router: Optional[ServerHandle] = None
        self._http: Optional[_MetricsHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ShardedLiveService":
        port_queue = self._mp.Queue()
        for index, directories in enumerate(self.partitions):
            process = self._mp.Process(
                target=_worker_main,
                args=(
                    index,
                    directories,
                    self.host,
                    port_queue,
                    self.poll_interval,
                    self.evict_after_polls,
                    self.queue_depth,
                    self.poll,
                ),
                name=f"repro-live-shard-{index}",
                daemon=True,
            )
            process.start()
            self._workers.append(process)
        ports: dict = {}
        try:
            for _ in self.partitions:
                status, index, value = port_queue.get(
                    timeout=WORKER_START_TIMEOUT
                )
                if status != "ok":
                    raise RuntimeError(f"shard {index} failed to start: {value}")
                ports[index] = value
        except Exception:
            self._terminate_workers()
            raise
        self.shard_addresses = [
            (self.host, ports[index]) for index in range(len(self.partitions))
        ]
        try:
            self._router = serve_router_in_thread(
                self.shard_addresses,
                host=self.host,
                port=self.router_port,
                queue_depth=self.queue_depth,
            )
            if self.http_port is not None:
                self._start_http()
        except Exception:
            self.stop()
            raise
        return self

    def _start_http(self) -> None:
        server = _MetricsHTTPServer(
            (self.host, self.http_port), _MetricsHTTPHandler
        )
        server.router_host = self.router_host
        server.router_port = self.router_address[1]
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-live-metrics-http",
            daemon=True,
        )
        thread.start()
        self._http = server
        self._http_thread = thread

    # -- addresses ---------------------------------------------------------
    @property
    def router_host(self) -> str:
        return self.host

    @property
    def router_address(self) -> Tuple[str, int]:
        assert self._router is not None, "start() first"
        return (self._router.host, self._router.port)

    @property
    def http_address(self) -> Optional[Tuple[str, int]]:
        if self._http is None:
            return None
        return self._http.server_address[:2]

    def client(self, timeout: float = 10.0) -> LiveClient:
        """A blocking client connected to the router."""
        host, port = self.router_address
        return LiveClient(host, port, timeout=timeout)

    # -- teardown ----------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until the router stops (e.g. a client sent shutdown)."""
        assert self._router is not None, "start() first"
        self._router._thread.join(timeout=timeout)

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the whole deployment down: router, shards, HTTP."""
        if self._stopped:
            return
        self._stopped = True
        if self._router is not None:
            # One shutdown op at the router fans out to every shard.
            try:
                with self.client(timeout=timeout) as client:
                    client.shutdown()
            except Exception:
                pass  # router already gone; fall through to hard stop
            self._router.stop(timeout=timeout)
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            if self._http_thread is not None:
                self._http_thread.join(timeout=timeout)
        for process in self._workers:
            process.join(timeout=timeout)
        self._terminate_workers()

    def _terminate_workers(self) -> None:
        for process in self._workers:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    def __enter__(self) -> "ShardedLiveService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- convenience -------------------------------------------------------
    def drained_report_dict(self) -> dict:
        """Drain every shard and return the merged report as a dict.

        The byte-identity entry point: equal to batch ``SDChecker``
        ``report.to_dict(include_diagnostics=True)`` over the union of
        directories (JSON-compared) for any shard assignment, provided
        no shard evicted.
        """
        from repro.live.router import report_from_state_payload

        with self.client() as client:
            merged_state = client.drain()
        report = report_from_state_payload(merged_state)
        return json.loads(
            json.dumps(report.to_dict(include_diagnostics=True))
        )
