"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simul.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


class TestEvent:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed(42)
        sim.run()
        assert seen == [42]

    def test_cannot_trigger_twice(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, sim):
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_unhandled_failure_propagates_from_run(self, sim):
        sim.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_defused_failure_is_silent(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        ev.defused = True
        sim.run()  # no raise


class TestTimeout:
    def test_fires_at_right_time(self, sim):
        fired = []
        t = sim.timeout(2.5)
        t.callbacks.append(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_carries_value(self, sim):
        results = []

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            results.append(value)

        sim.process(proc())
        sim.run()
        assert results == ["payload"]


class TestProcess:
    def test_sequential_timeouts_advance_clock(self, sim):
        marks = []

        def proc():
            yield sim.timeout(1.0)
            marks.append(sim.now)
            yield sim.timeout(2.0)
            marks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert marks == [1.0, 3.0]

    def test_return_value_becomes_event_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(proc())
        result = sim.run_until_complete(p)
        assert result == "done"

    def test_yield_on_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("early")
        sim.run()
        results = []

        def proc():
            value = yield ev  # already processed: resume next tick
            results.append(value)

        sim.process(proc())
        sim.run()
        assert results == ["early"]

    def test_exception_in_process_surfaces(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise ValueError("inside")

        sim.process(proc())
        with pytest.raises(ValueError, match="inside"):
            sim.run()

    def test_waiting_on_failed_event_throws_into_process(self, sim):
        ev = sim.event()
        caught = []

        def proc():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(proc())
        ev.fail(RuntimeError("bad"))
        sim.run()
        assert caught == ["bad"]

    def test_yielding_non_event_is_an_error(self, sim):
        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimulationError, match="non-event"):
            sim.run()

    def test_interrupt_wakes_process(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                log.append((sim.now, i.cause))

        p = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(3.0)
            p.interrupt("wake up")

        sim.process(interrupter())
        sim.run()
        assert log == [(3.0, "wake up")]

    def test_interrupt_dead_process_is_noop(self, sim):
        def quick():
            yield sim.timeout(0.1)

        p = sim.process(quick())
        sim.run()
        p.interrupt("too late")  # must not raise
        assert not p.is_alive

    def test_process_waiting_on_process(self, sim):
        def inner():
            yield sim.timeout(2.0)
            return 7

        results = []

        def outer():
            value = yield sim.process(inner())
            results.append((sim.now, value))

        sim.process(outer())
        sim.run()
        assert results == [(2.0, 7)]

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            Process(sim, lambda: None)


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        marks = []

        def proc():
            yield sim.all_of([sim.timeout(1.0), sim.timeout(5.0), sim.timeout(3.0)])
            marks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert marks == [5.0]

    def test_any_of_fires_on_first(self, sim):
        marks = []

        def proc():
            yield sim.any_of([sim.timeout(4.0), sim.timeout(1.5)])
            marks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert marks == [1.5]

    def test_all_of_empty_fires_immediately(self, sim):
        done = []

        def proc():
            yield sim.all_of([])
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [0.0]

    def test_all_of_propagates_failure(self, sim):
        bad = sim.event()
        caught = []

        def proc():
            try:
                yield sim.all_of([sim.timeout(10.0), bad])
            except RuntimeError:
                caught.append(sim.now)

        sim.process(proc())
        bad.fail(RuntimeError("x"))
        sim.run()
        assert caught == [0.0]

    def test_mixed_simulators_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            AllOf(sim, [sim.timeout(1), other.timeout(1)])


class TestSimulator:
    def test_same_time_events_in_schedule_order(self, sim):
        order = []
        for i in range(5):
            t = sim.timeout(1.0)
            t.callbacks.append(lambda e, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_advances_clock_exactly(self, sim):
        sim.timeout(1.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_in_past_rejected(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_call_at(self, sim):
        fired = []
        sim.call_at(4.2, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [4.2]

    def test_call_at_past_rejected(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_run_until_complete_detects_deadlock(self, sim):
        def stuck():
            yield sim.event()  # never triggered

        p = sim.process(stuck())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(p)

    def test_run_until_complete_respects_limit(self, sim):
        def slow():
            yield sim.timeout(1000.0)

        p = sim.process(slow())
        with pytest.raises(SimulationError, match="limit"):
            sim.run_until_complete(p, limit=10.0)
