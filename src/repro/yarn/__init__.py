"""Simulated Apache YARN: ResourceManager, NodeManagers, schedulers.

The module reproduces the two-level scheduling architecture of section
II-A: *out-application* scheduling (resource allocation, container
placement, localization, launching) lives here; *in-application*
scheduling (Spark task scheduling) lives in :mod:`repro.spark`.

Every scheduling entity is modelled as the same state machine Hadoop
uses (``RMAppImpl``, ``RMContainerImpl``, ``ContainerImpl``) and every
state transition is logged in log4j format — those log lines are the
*only* interface SDchecker consumes.
"""

from repro.yarn.ids import ApplicationId, ContainerId, CLUSTER_TIMESTAMP
from repro.yarn.records import (
    ContainerGrant,
    ExecutionType,
    LaunchSpec,
    ResourceRequest,
    ResourceSpec,
)
from repro.yarn.resource_manager import ResourceManager
from repro.yarn.node_manager import NodeManager
from repro.yarn.capacity_scheduler import CapacityScheduler
from repro.yarn.opportunistic_scheduler import OpportunisticScheduler
from repro.yarn.app import AMRMClient, ContainerContext, YarnApplication

__all__ = [
    "AMRMClient",
    "ApplicationId",
    "CLUSTER_TIMESTAMP",
    "CapacityScheduler",
    "ContainerContext",
    "ContainerGrant",
    "ContainerId",
    "ExecutionType",
    "LaunchSpec",
    "NodeManager",
    "OpportunisticScheduler",
    "ResourceManager",
    "ResourceRequest",
    "ResourceSpec",
    "YarnApplication",
]
