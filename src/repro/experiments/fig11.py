"""Figure 11: the in-application delay, decomposed and optimized.

* (a) driver delay is ~3 s for both Spark wordcount and Spark-SQL
  (identical SparkContext init); the executor delay differs — p95 6.0 s
  for wordcount vs 9.5 s for Spark-SQL — because TPC-H initializes
  eight tables (eight RDD + broadcast creations on the scheduling
  critical path) where wordcount opens one file.
* (b) sweeping the number of opened files (x1..x4) lengthens the
  executor delay roughly linearly; parallelizing the RDD init with
  Scala Futures ("opt") cuts ~2 s off the tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.stats import DelaySample
from repro.experiments.common import resolve_scale
from repro.experiments.harness import TraceScenario

__all__ = ["Fig11Result", "run_fig11", "run_fig11a", "run_fig11b", "FIG11B_VARIANTS"]

#: Fig 11b x-axis: opt = Future-parallelized, x1 = default, x2.. = more
#: opened files.
FIG11B_VARIANTS = ("opt", "x1", "x2", "x3", "x4")


def run_fig11a(scale: str = "small", seed: int = 0) -> Dict[str, Dict[str, DelaySample]]:
    """{'wordcount'|'sql': {'driver': ..., 'executor': ...}}."""
    n_queries = resolve_scale(scale, small=60, paper=200)
    out: Dict[str, Dict[str, DelaySample]] = {}
    for key, workload in (("wordcount", "wordcount"), ("sql", "tpch")):
        scenario = TraceScenario(n_queries=n_queries, seed=seed, workload=workload)
        report = scenario.run().report
        out[key] = {
            "driver": report.sample("driver_delay"),
            "executor": report.sample("executor_delay"),
        }
    return out


def run_fig11b(scale: str = "small", seed: int = 0) -> Dict[str, DelaySample]:
    """variant label -> executor-delay sample."""
    n_queries = resolve_scale(scale, small=50, paper=200)
    # Light load: the comparison isolates user-init cost, so the
    # executor-delay tail must not be bound by allocation spread.
    base = TraceScenario(n_queries=n_queries, seed=seed, mean_interarrival_s=4.5)
    out: Dict[str, DelaySample] = {}
    for label in FIG11B_VARIANTS:
        if label == "opt":
            scenario = base.variant(parallel_rdd_init=True)
        else:
            scenario = base.variant(opened_files_multiplier=int(label[1:]))
        out[label] = scenario.run().report.sample("executor_delay")
    return out


@dataclass
class Fig11Result:
    by_workload: Dict[str, Dict[str, DelaySample]]
    by_variant: Dict[str, DelaySample]

    def opt_tail_reduction(self) -> float:
        """Seconds shaved off the p95 executor delay by the Future opt."""
        return self.by_variant["x1"].p95 - self.by_variant["opt"].p95

    def rows(self) -> List[str]:
        lines = ["Figure 11 — in-application delay"]
        lines.append("(a) driver / executor delay by workload:")
        for key, metrics in self.by_workload.items():
            d, e = metrics["driver"], metrics["executor"]
            lines.append(
                f"    {key:9s}: driver med={d.p50:5.2f}s p95={d.p95:5.2f}s | "
                f"executor med={e.p50:5.2f}s p95={e.p95:5.2f}s"
            )
        lines.append("(b) executor delay vs opened files:")
        for label in FIG11B_VARIANTS:
            s = self.by_variant[label]
            lines.append(f"    {label:4s}: med={s.p50:5.2f}s p95={s.p95:5.2f}s")
        lines.append(
            f"    Future-parallelized init cuts the tail by "
            f"{self.opt_tail_reduction():.2f}s"
        )
        return lines


def run_fig11(scale: str = "small", seed: int = 0) -> Fig11Result:
    return Fig11Result(
        by_workload=run_fig11a(scale, seed),
        by_variant=run_fig11b(scale, seed),
    )
