"""Entry point so ``python -m repro.analysis`` runs the sdlint CLI."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
