"""Calibration & what-if engine for the simulated testbed.

Fits :class:`~repro.params.SimulationParams` knobs to a mined
scheduling-delay decomposition (any log corpus, or a scenario preset's
own output) via a seeded grid + random search fanned out over worker
processes, and answers counterfactual queries — "what if the cluster
ran the Opportunistic scheduler?", "what if the NM heartbeat were
halved?" — from the resulting fitted model.

Entry points: :func:`fit` / :func:`predict` / :func:`whatif`, or
``python -m repro.calibrate {fit,predict,whatif}`` on the command line.
"""

from repro.calibrate.objective import (
    COMPONENTS,
    DEFAULT_WEIGHTS,
    ComponentStats,
    TargetDecomposition,
    TrialResult,
    apply_overrides,
    component_error,
    component_sample,
    evaluate_candidate,
    mine_scenario,
)
from repro.calibrate.search import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    FittedModel,
    fit,
    resolve_fit_jobs,
    self_target,
)
from repro.calibrate.space import (
    DEFAULT_SPACE,
    SCHEDULER_CHOICES,
    SCHEDULER_KNOB,
    Knob,
    ParameterSpace,
)
from repro.calibrate.whatif import QUANTILES, WhatIfAnswer, predict, whatif

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "COMPONENTS",
    "DEFAULT_SPACE",
    "DEFAULT_WEIGHTS",
    "ComponentStats",
    "FittedModel",
    "Knob",
    "ParameterSpace",
    "QUANTILES",
    "SCHEDULER_CHOICES",
    "SCHEDULER_KNOB",
    "TargetDecomposition",
    "TrialResult",
    "WhatIfAnswer",
    "apply_overrides",
    "component_error",
    "component_sample",
    "evaluate_candidate",
    "fit",
    "mine_scenario",
    "predict",
    "resolve_fit_jobs",
    "self_target",
    "whatif",
]
