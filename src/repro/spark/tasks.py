"""Stages and tasks: the unit of in-application scheduling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.simul.engine import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdfs.filesystem import HdfsFile
    from repro.yarn.app import ContainerContext

__all__ = ["StageSpec", "Task"]


@dataclass(slots=True)
class StageSpec:
    """One stage of a Spark job.

    ``input_file`` is set for scan stages (stage-1 table reads, which
    flow through HDFS and therefore contend with cluster IO — the
    self-interference of Fig 5); shuffle/aggregate stages have
    ``bytes_per_task`` zero and are pure compute.
    """

    name: str
    n_tasks: int
    cpu_seconds_per_task: float
    bytes_per_task: float = 0.0
    input_file: Optional["HdfsFile"] = None
    #: Override of params.task_cpu_fraction (Kmeans stages are ~all CPU).
    cpu_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValueError(f"stage {self.name!r} has no tasks")
        if self.cpu_seconds_per_task < 0 or self.bytes_per_task < 0:
            raise ValueError(f"stage {self.name!r} has negative work")


@dataclass(slots=True)
class Task:
    """One task instance dispatched to an executor worker."""

    task_id: int
    stage: StageSpec
    #: Per-task duration noise factor drawn by the driver.
    noise: float = 1.0
    #: CPU demand of the task thread (cores).
    demand: float = 1.0
    #: Attempts made so far (failure injection / retries).
    attempts: int = 0
    finished_at: Optional[float] = None

    def execute(
        self, ctx: "ContainerContext", completion: float = 1.0
    ) -> Generator[Event, Any, None]:
        """Process body: run (a fraction of) the task on the node.

        ``completion`` < 1 models an attempt that fails mid-flight: the
        work done before the failure still consumed resources.
        """
        sim = ctx.sim
        params = ctx.services.params
        self.attempts += 1
        yield sim.timeout(params.task_overhead_s * self.noise)
        if self.stage.bytes_per_task > 0 and self.stage.input_file is not None:
            yield from ctx.services.hdfs.read(
                ctx.node,
                self.stage.input_file,
                nbytes=self.stage.bytes_per_task * completion,
            )
        cpu = self.stage.cpu_seconds_per_task * self.noise * completion
        fraction = (
            self.stage.cpu_fraction
            if self.stage.cpu_fraction is not None
            else params.task_cpu_fraction
        )
        cpu_part = cpu * fraction
        if cpu_part > 0:
            yield ctx.node.cpu.submit(cpu_part, demand=self.demand)
        if cpu > cpu_part:
            yield sim.timeout(cpu - cpu_part)
        if completion >= 1.0:
            self.finished_at = sim.now
