#!/usr/bin/env python
"""Quickstart: one Spark-SQL query through the full SDchecker pipeline.

Runs a single TPC-H query job on the simulated 25-node Spark-on-YARN
testbed, shows a snippet of the log4j logs the daemons emit (the
paper's Fig 2), then mines the logs with SDchecker and prints the
decomposed scheduling delays and the critical path of the scheduling
graph (Fig 3).

Usage::

    python examples/quickstart.py [--seed N] [--query 1..22]
"""

import argparse

from repro import GB, SDChecker, SparkApplication, Testbed
from repro.workloads import TPCHDataset, TPCHQueryWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--query", type=int, default=5, choices=range(1, 23))
    args = parser.parse_args()

    # --- run one query job on the simulated cluster ---------------------
    bed = Testbed(seed=args.seed)
    dataset = TPCHDataset(2 * GB)
    app = SparkApplication(
        f"tpch-q{args.query}",
        TPCHQueryWorkload(dataset, query=args.query),
        num_executors=4,
    )
    bed.submit(app)
    bed.run_until_all_finished()
    print(f"Simulated {app} to completion at t={bed.sim.now:.1f}s "
          f"({len(bed.log_store)} log lines from {len(bed.log_store.daemons)} daemons)")

    # --- Fig 2: a snippet of the raw logs SDchecker consumes -------------
    print("\n--- ResourceManager log (snippet) ---")
    for line in bed.log_store.render("hadoop-resourcemanager")[:8]:
        print(line)
    driver_daemon = str(app.grants[0].container_id)
    print(f"\n--- Spark driver log ({driver_daemon}) ---")
    for line in bed.log_store.render(driver_daemon)[:5]:
        print(line)

    # --- SDchecker: mine, decompose, report ------------------------------
    checker = SDChecker()
    report = checker.analyze(bed.log_store)
    print("\n" + report.summary())

    # --- Fig 3: the scheduling graph's critical path ----------------------
    traces = checker.group(bed.log_store)
    graph = checker.graph(traces[str(app.app_id)])
    print("\nCritical path (SUBMITTED -> first task):")
    for src, dst, seconds, component in graph.critical_path():
        print(f"  {component:22s} {seconds:7.3f}s   {src} -> {dst}")

    # --- Fig 10: the workflow timeline (executors idle until the driver
    # finishes user initialization and dispatches the first tasks) --------
    from repro.core.timeline import render_timeline

    print()
    print(render_timeline(traces[str(app.app_id)]))


if __name__ == "__main__":
    main()
