"""Experiment harness: one module per paper table/figure.

Each ``figN``/``tableN`` module builds the scenario from section IV,
runs the simulated testbed, feeds the rendered logs to SDchecker, and
returns the rows/series the paper reports.  DESIGN.md's experiment
index maps every module to its figure; EXPERIMENTS.md records
paper-vs-measured numbers.
"""

from repro.experiments.harness import (
    ScenarioResult,
    TraceScenario,
    submit_dfsio_interference,
    submit_kmeans_interference,
)
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7, run_fig7a, run_fig7b, run_fig7c
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9, run_fig9a, run_fig9b
from repro.experiments.fig11 import run_fig11, run_fig11a, run_fig11b
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3

__all__ = [
    "ScenarioResult",
    "TraceScenario",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig7a",
    "run_fig7b",
    "run_fig7c",
    "run_fig8",
    "run_fig9",
    "run_fig9a",
    "run_fig9b",
    "run_fig11",
    "run_fig11a",
    "run_fig11b",
    "run_fig12",
    "run_fig13",
    "run_table2",
    "run_table3",
    "submit_dfsio_interference",
    "submit_kmeans_interference",
]
