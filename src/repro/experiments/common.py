"""Shared helpers for the per-figure experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.stats import DelaySample

__all__ = ["Scale", "resolve_scale", "SeriesTable"]


#: Experiment scale presets: "small" runs in seconds for CI/benchmarks,
#: "paper" replays the full section-IV configuration.
Scale = str
_SCALES = ("small", "paper")


def resolve_scale(scale: Scale, small: int, paper: int) -> int:
    """Pick a trace size for the given scale."""
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r} (choose from {_SCALES})")
    return small if scale == "small" else paper


@dataclass
class SeriesTable:
    """Rows of (label, {column: DelaySample}) ready to print.

    The textual output mirrors what each paper figure plots: one row
    per sweep point, one column per delay metric, with median/p95 —
    the statistics the paper calls out.
    """

    title: str
    columns: List[str]
    rows: List[tuple] = field(default_factory=list)

    def add_row(self, label: str, samples: Dict[str, DelaySample]) -> None:
        self.rows.append((label, samples))

    def render(self) -> str:
        header = f"{'':16s}" + "".join(
            f"{c + ' med':>12s}{c + ' p95':>12s}" for c in self.columns
        )
        lines = [self.title, header]
        for label, samples in self.rows:
            cells = []
            for column in self.columns:
                sample = samples.get(column)
                if sample is None or not sample:
                    cells.append(f"{'n/a':>12s}{'n/a':>12s}")
                else:
                    cells.append(f"{sample.p50:12.2f}{sample.p95:12.2f}")
            lines.append(f"{label:16s}" + "".join(cells))
        return "\n".join(lines)

    def sample(self, label: str, column: str) -> DelaySample:
        for row_label, samples in self.rows:
            if row_label == label:
                return samples[column]
        raise KeyError(f"no row {label!r}")
