"""The assembled simulated testbed: one object wiring every substrate.

A :class:`Testbed` builds the whole stack the paper's 26-node cluster
provided — simulation clock, nodes, HDFS, ResourceManager with the
chosen scheduler(s), one NodeManager per node, and the log store that
collects every daemon's log4j output.  Experiments submit applications
to it, run the clock, and hand the rendered logs to SDchecker.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.cluster.profiles import HardwareProfile
from repro.cluster.topology import Cluster
from repro.hdfs.filesystem import Hdfs
from repro.logsys.store import LogStore
from repro.params import SimulationParams
from repro.simul.distributions import RandomSource
from repro.simul.engine import Event, SimulationError, Simulator
from repro.yarn.capacity_scheduler import CapacityScheduler
from repro.yarn.fair_scheduler import FairScheduler
from repro.yarn.node_manager import NodeManager
from repro.yarn.opportunistic_scheduler import OpportunisticScheduler
from repro.yarn.resource_manager import ResourceManager
from repro.yarn.app import YarnApplication

__all__ = ["Testbed"]


class Testbed:
    """The full simulated Spark-on-YARN deployment."""

    def __init__(
        self,
        params: Optional[SimulationParams] = None,
        seed: int = 0,
        distributed_scheduling: bool = False,
        scheduler: str = "capacity",
        node_profiles: Optional[Sequence[Optional[HardwareProfile]]] = None,
    ):
        self.params = params if params is not None else SimulationParams()
        self.sim = Simulator()
        self.rng = RandomSource(seed)
        self.log_store = LogStore()
        self.cluster = Cluster(self.sim, self.params, node_profiles=node_profiles)
        self.hdfs = Hdfs(self.sim, self.cluster, self.params, self.rng)
        if scheduler == "capacity":
            scheduler_factory = CapacityScheduler
        elif scheduler == "fair":
            scheduler_factory = FairScheduler
        else:
            raise SimulationError(f"unknown scheduler {scheduler!r}")
        self.rm = ResourceManager(
            self,
            scheduler_factory=scheduler_factory,
            opportunistic_factory=(
                OpportunisticScheduler if distributed_scheduling else None
            ),
        )
        for node in self.cluster:
            self.rm.register_node_manager(NodeManager(self.rm, node))
        self.applications: List[YarnApplication] = []

    # -- running workloads ---------------------------------------------------
    def submit(self, app: YarnApplication, delay: float = 0.0) -> Event:
        """Submit ``app`` now or after ``delay``; returns FINISHED event."""
        self.applications.append(app)
        if delay <= 0.0:
            return self.rm.submit_application(app)
        finished_proxy = self.sim.event()

        def _later():
            self.rm.submit_application(app).callbacks.append(
                lambda ev: finished_proxy.succeed(ev.value)
            )

        self.sim.call_at(self.sim.now + delay, _later)
        return finished_proxy

    def run_until_all_finished(self, limit: float = 1e7) -> float:
        """Advance the clock until every submitted app is FINISHED.

        Daemon heartbeat loops run forever, so the heap never drains;
        we step until the last application's FINISHED event fires.
        ``limit`` (simulated seconds) guards against deadlocked
        scenarios.  Returns the finish time of the last application.
        """
        if not self.applications:
            return self.sim.now

        def all_done() -> bool:
            # Wait for *processed*, not merely triggered: callbacks on
            # the FINISHED events (delayed-submission proxies, user
            # hooks) must have run before we stop stepping.
            return all(
                a.finished is not None and a.finished.processed
                for a in self.applications
            )

        while not all_done():
            if self.sim.peek() > limit:
                unfinished = [
                    str(a) for a in self.applications
                    if a.finished is None or not a.finished.triggered
                ]
                raise SimulationError(
                    f"simulated time limit {limit}s exceeded; unfinished: "
                    f"{unfinished[:5]} (+{max(0, len(unfinished) - 5)} more)"
                )
            self.sim.step()
        return self.sim.now

    def run(self, until: float) -> None:
        """Advance the clock to ``until`` regardless of app completion."""
        self.sim.run(until=until)

    # -- cluster membership changes (failure / autoscaling scenarios) --------
    def fail_node(self, hostname: str, reason: str = "node failure") -> int:
        """Abruptly lose a node mid-run.

        The node goes inactive (no further placements), its heartbeats
        stop, and every killable container on it is forcibly torn down
        — applications recover via their ``container_killed`` hooks.
        Returns the number of containers killed.
        """
        node = self.cluster.node(hostname)
        nm = self.rm.nm_for(node)
        nm.deactivate()
        self.rm.logger.info(
            "org.apache.hadoop.yarn.server.resourcemanager.rmnode.RMNodeImpl",
            f"Deactivating Node {hostname}:8041 as it is now LOST",
        )
        return nm.kill_active_containers(reason)

    def decommission_node(self, hostname: str) -> None:
        """Gracefully retire a node: no new placements, running work
        drains naturally (no kills)."""
        node = self.cluster.node(hostname)
        self.rm.nm_for(node).deactivate()
        self.rm.logger.info(
            "org.apache.hadoop.yarn.server.resourcemanager.rmnode.RMNodeImpl",
            f"Deactivating Node {hostname}:8041 as it is now DECOMMISSIONED",
        )

    def add_node(self, profile: Optional[HardwareProfile] = None) -> str:
        """Join a new worker mid-run (autoscaling); returns its hostname."""
        node = self.cluster.add_node(profile)
        self.rm.register_node_manager(NodeManager(self.rm, node))
        self.rm.logger.info(
            "org.apache.hadoop.yarn.server.resourcemanager.ResourceTrackerService",
            f"NodeManager from node {node.hostname}(cmPort: 8041 httpPort: 8042) "
            f"registered with capability: <memory:{node.memory_mb}, "
            f"vCores:{node.cores}>",
        )
        return node.hostname

    # -- log output --------------------------------------------------------------
    def dump_logs(self, directory: str | Path) -> List[Path]:
        """Write all daemon logs as ``.log`` files for offline mining."""
        return self.log_store.dump(directory)
