"""Miner throughput: streaming single-pass dispatch vs the pre-PR miner.

Generates a synthetic multi-application log corpus (RM + NM + one
stream per container, with realistic executor chatter as noise),
measures lines/sec for

* the **legacy** miner (the pre-streaming implementation: list
  materialization plus a cascade of up to five regex attempts per
  container-log line), kept here verbatim as the comparison baseline;
* the current **serial** miner (prefix-gated single alternation);
* the current **parallel** miner (``mine_parallel``, process pool);

asserts the three agree event-for-event, and appends a trajectory
point to ``benchmarks/results/BENCH_miner.json``.

Corpus size: ~500k lines under ``REPRO_SCALE=paper`` (the acceptance
corpus), ~120k under the default ``small`` scale, and ~4k when
``REPRO_BENCH_SMOKE=1`` (the CI smoke job, which only checks equality
and a non-zero throughput).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterable, List

from repro.core import messages as msg
from repro.core.events import EventKind, SchedulingEvent
from repro.core.parser import LogMiner
from repro.logsys.record import LogRecord
from repro.logsys.store import LogStore

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_FILE = RESULTS_DIR / "BENCH_miner.json"

_EXECUTORS_PER_APP = 4
#: Noise lines per executor stream — the corpus knob.  Application logs
#: dominate real collections, so throughput is decided by how fast the
#: miner rejects chatter lines.
_NOISE_LINES = {"smoke": 8, "small": 140, "paper": 600}

_EXEC_CHATTER = (
    "Starting executor heartbeat thread",
    "Finished task 3.0 in stage 1.0 (TID 7) in 23 ms on node02 (1/4)",
    "Running task 1.0 in stage 2.0 (TID 11)",
    "Block broadcast_3_piece0 stored as bytes in memory",
    "Told master about block broadcast_3_piece0",
    "Reading broadcast variable 3 took 2 ms",
    # Near misses: share a literal prefix with a real message but fail
    # its body, so the alternation (not just the gate) gets exercised.
    "Got assigned task slot on host node02",
    "Task attempt finished cleanly",
)


def corpus_apps(mode: str) -> int:
    return {"smoke": 2, "small": 35, "paper": 165}[mode]


def build_corpus(mode: str) -> LogStore:
    """A deterministic multi-app log collection of the requested scale."""
    store = LogStore()
    noise = _NOISE_LINES[mode]
    clock = [0.0]

    def tick() -> float:
        clock[0] += 0.001
        return clock[0]

    def emit(daemon: str, cls: str, message: str) -> None:
        store.append(daemon, LogRecord(tick(), cls, message))

    for i in range(1, corpus_apps(mode) + 1):
        app = f"application_1515715200000_{i:04d}"
        containers = [
            f"container_1515715200000_{i:04d}_01_{c:06d}"
            for c in range(1, _EXECUTORS_PER_APP + 2)
        ]
        am, executors = containers[0], containers[1:]
        rm = "hadoop-resourcemanager"
        emit(rm, "x.RMAppImpl", f"{app} State change from NEW to SUBMITTED on event = START")
        emit(rm, "x.RMAppImpl", f"{app} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED")
        for c_idx, cid in enumerate(containers):
            emit(rm, "x.RMContainerImpl", f"{cid} Container Transitioned from NEW to ALLOCATED")
            emit(rm, "x.RMContainerImpl", f"{cid} Container Transitioned from ALLOCATED to ACQUIRED")
            emit(rm, "x.ClientRMService", f"Allocated new applicationId: {i}")
            nm = f"hadoop-nodemanager-node{(i + c_idx) % 7 + 1:02d}"
            emit(nm, "x.ContainerImpl", f"Container {cid} transitioned from NEW to LOCALIZING")
            emit(nm, "x.ContainerImpl", f"Container {cid} transitioned from LOCALIZING to SCHEDULED")
            emit(nm, "x.ContainerImpl", f"Container {cid} transitioned from SCHEDULED to RUNNING")
            emit(nm, "x.ContainersMonitorImpl", f"Memory usage of ProcessTree for {cid}: 180MB")
        emit(rm, "x.RMAppImpl", f"{app} State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED")
        emit(am, "org.apache.spark.deploy.yarn.ApplicationMaster", "Preparing Local resources")
        emit(am, "org.apache.spark.deploy.yarn.ApplicationMaster", f"Registered ApplicationMaster for {app}")
        emit(am, "org.apache.spark.deploy.yarn.YarnAllocator", f"SDCHECKER START_ALLO Will request {_EXECUTORS_PER_APP} executor container(s) for {app}")
        emit(am, "org.apache.spark.deploy.yarn.YarnAllocator", f"SDCHECKER END_ALLO All requested containers allocated for {app} ({_EXECUTORS_PER_APP} granted)")
        for j, cid in enumerate(executors):
            cls = "org.apache.spark.executor.CoarseGrainedExecutorBackend"
            emit(cid, cls, f"Started daemon with process name: {j + 2}@node02 for container {cid}")
            for k in range(noise):
                emit(cid, "org.apache.spark.executor.Executor", _EXEC_CHATTER[k % len(_EXEC_CHATTER)])
            emit(cid, "org.apache.spark.executor.Executor", f"Got assigned task {j}")
            for k in range(noise // 4):
                emit(cid, "org.apache.spark.executor.Executor", _EXEC_CHATTER[k % len(_EXEC_CHATTER)])
        emit(rm, "x.RMAppImpl", f"{app} State change from RUNNING to FINISHED on event = ATTEMPT_FINISHED")
    return store


class LegacyLogMiner:
    """The pre-streaming miner, verbatim: the benchmark baseline.

    Materializes every stream, then classifies container-log lines with
    the cascaded ``classify_first_task_line`` →
    ``classify_mr_task_done_line`` → ``classify_driver_line`` battery
    (up to five regex attempts per line).
    """

    def mine(self, store: LogStore) -> List[SchedulingEvent]:
        events: List[SchedulingEvent] = []
        for daemon in store.daemons:
            records = list(store.records(daemon))
            if not records:
                continue
            if msg.CONTAINER_ID_RE.match(daemon):
                events.extend(self._mine_container_stream(daemon, records))
            elif daemon.startswith("hadoop-resourcemanager"):
                events.extend(self._mine_rm_stream(daemon, records))
            elif daemon.startswith("hadoop-nodemanager"):
                events.extend(self._mine_nm_stream(daemon, records))
        return events

    def _mine_rm_stream(self, daemon, records) -> List[SchedulingEvent]:
        events: List[SchedulingEvent] = []
        for record in records:
            if record.cls.endswith("RMAppImpl"):
                hit = msg.classify_rm_app_line(record.message)
                if hit is not None:
                    kind, app_id = hit
                    events.append(
                        SchedulingEvent(kind, record.timestamp, app_id, None, daemon)
                    )
            elif record.cls.endswith("RMContainerImpl"):
                hit = msg.classify_rm_container_line(record.message)
                if hit is not None:
                    kind, container_id = hit
                    events.append(
                        SchedulingEvent(
                            kind,
                            record.timestamp,
                            msg.app_id_of_container(container_id),
                            container_id,
                            daemon,
                        )
                    )
        return events

    def _mine_nm_stream(self, daemon, records) -> List[SchedulingEvent]:
        events: List[SchedulingEvent] = []
        for record in records:
            if not record.cls.endswith("ContainerImpl"):
                continue
            hit = msg.classify_nm_container_line(record.message)
            if hit is None:
                continue
            kind, container_id = hit
            events.append(
                SchedulingEvent(
                    kind,
                    record.timestamp,
                    msg.app_id_of_container(container_id),
                    container_id,
                    daemon,
                )
            )
        return events

    def _mine_container_stream(self, daemon, records) -> List[SchedulingEvent]:
        container_id = daemon
        app_id = msg.app_id_of_container(container_id)
        events: List[SchedulingEvent] = []
        first = records[0]
        events.append(
            SchedulingEvent(
                EventKind.INSTANCE_FIRST_LOG,
                first.timestamp,
                app_id,
                container_id,
                daemon,
                source_class=first.cls,
                detail=first.message,
            )
        )
        saw_task = False
        saw_mr_done = False
        for record in records:
            if not saw_task and msg.classify_first_task_line(record.message):
                saw_task = True
                events.append(
                    SchedulingEvent(
                        EventKind.FIRST_TASK,
                        record.timestamp,
                        app_id,
                        container_id,
                        daemon,
                        source_class=record.cls,
                    )
                )
                continue
            if not saw_mr_done and msg.classify_mr_task_done_line(record.message):
                saw_mr_done = True
                events.append(
                    SchedulingEvent(
                        EventKind.MR_TASK_DONE,
                        record.timestamp,
                        app_id,
                        container_id,
                        daemon,
                        source_class=record.cls,
                    )
                )
                continue
            hit = msg.classify_driver_line(record.message)
            if hit is not None:
                kind, line_app_id = hit
                events.append(
                    SchedulingEvent(
                        kind,
                        record.timestamp,
                        line_app_id,
                        container_id,
                        daemon,
                        source_class=record.cls,
                    )
                )
        return events


def _time(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def _record_point(point: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    history = []
    if BENCH_FILE.exists():
        history = json.loads(BENCH_FILE.read_text(encoding="utf-8"))
    history.append(point)
    BENCH_FILE.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def test_miner_throughput(benchmark, scale, tmp_path):
    mode = "smoke" if os.environ.get("REPRO_BENCH_SMOKE") else scale
    store = build_corpus(mode)
    lines = len(store)
    logdir = tmp_path / "corpus"
    store.dump(logdir)

    miner = LogMiner()
    legacy_events, legacy_s = _time(LegacyLogMiner().mine, store)
    serial_events, serial_s = _time(miner.mine, store)
    serial_dir_events, serial_dir_s = _time(miner.mine, str(logdir))
    parallel_events, parallel_s = _time(miner.mine_parallel, str(logdir), 4)
    benchmark.pedantic(miner.mine, args=(store,), rounds=1, iterations=1)

    # Equivalence: the optimized and parallel pipelines must reproduce
    # the legacy miner event-for-event.
    assert serial_events == legacy_events
    assert parallel_events == serial_dir_events
    assert [
        (e.kind, e.app_id, e.container_id, e.daemon) for e in serial_dir_events
    ] == [(e.kind, e.app_id, e.container_id, e.daemon) for e in serial_events]

    speedup = legacy_s / serial_s if serial_s > 0 else float("inf")
    point = {
        "mode": mode,
        "corpus_lines": lines,
        "apps": corpus_apps(mode),
        "legacy_store_lps": round(lines / legacy_s),
        "serial_store_lps": round(lines / serial_s),
        "serial_dir_lps": round(lines / serial_dir_s),
        "parallel_dir_lps": round(lines / parallel_s),
        "parallel_jobs": 4,
        "speedup_vs_legacy": round(speedup, 2),
    }
    _record_point(point)
    print()
    print(json.dumps(point))

    assert lines / serial_s > 0
    if mode != "smoke":
        # The acceptance bar: >= 3x the pre-PR miner on the same corpus.
        assert speedup >= 3.0, f"only {speedup:.2f}x over the legacy miner"
