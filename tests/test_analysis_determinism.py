"""Tests for sdlint pass 3: the determinism lint (SD301-SD303)."""

from pathlib import Path

from repro.analysis import determinism

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"


def rules_of(source: str, path: str = "repro/fake.py"):
    return [f.rule for f in determinism.scan_source(source, path)]


class TestUnseededRandom:
    def test_stdlib_random_call(self):
        assert rules_of("import random\nx = random.random()\n") == ["SD301"]

    def test_numpy_random_via_alias(self):
        assert rules_of("import numpy as np\nx = np.random.rand(3)\n") == ["SD301"]

    def test_from_import(self):
        assert rules_of("from random import shuffle\nshuffle([1, 2])\n") == ["SD301"]

    def test_distributions_module_is_exempt(self):
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert rules_of(source, "repro/simul/distributions.py") == []
        assert rules_of(source) == ["SD301"]

    def test_unrelated_module_attribute_ok(self):
        assert rules_of("import math\nx = math.sqrt(2)\n") == []


class TestWallClock:
    def test_time_time(self):
        assert rules_of("import time\nt = time.time()\n") == ["SD302"]

    def test_perf_counter(self):
        assert rules_of("import time\nt = time.perf_counter()\n") == ["SD302"]

    def test_datetime_now_from_import(self):
        source = "from datetime import datetime\nt = datetime.now()\n"
        assert rules_of(source) == ["SD302"]

    def test_datetime_module_form(self):
        source = "import datetime\nt = datetime.datetime.utcnow()\n"
        assert rules_of(source) == ["SD302"]


class TestUnorderedIteration:
    def test_for_over_set_literal(self):
        assert rules_of("for x in {1, 2, 3}:\n    print(x)\n") == ["SD303"]

    def test_for_over_set_call(self):
        assert rules_of("for x in set(items):\n    print(x)\n") == ["SD303"]

    def test_comprehension_over_set(self):
        assert rules_of("out = [x for x in set(items)]\n") == ["SD303"]

    def test_sorted_set_is_fine(self):
        assert rules_of("for x in sorted(set(items)):\n    print(x)\n") == []

    def test_list_iteration_is_fine(self):
        assert rules_of("for x in [1, 2]:\n    print(x)\n") == []


class TestCompletionOrderMerge:
    def test_as_completed_from_import(self):
        source = (
            "from concurrent.futures import as_completed\n"
            "for f in as_completed(futures):\n    f.result()\n"
        )
        assert rules_of(source) == ["SD304"]

    def test_as_completed_module_form(self):
        source = (
            "import concurrent.futures\n"
            "for f in concurrent.futures.as_completed(futures):\n    pass\n"
        )
        assert rules_of(source) == ["SD304"]

    def test_asyncio_as_completed(self):
        source = "import asyncio\nfor f in asyncio.as_completed(tasks):\n    pass\n"
        assert rules_of(source) == ["SD304"]

    def test_executor_map_is_sanctioned(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "with ProcessPoolExecutor() as pool:\n"
            "    results = list(pool.map(work, tasks))\n"
        )
        assert rules_of(source) == []


class TestWallClockLocaltimeFamily:
    """SD302 also covers the struct_time readers the live tailer could
    be tempted to stamp chunks with."""

    def test_time_localtime(self):
        assert rules_of("import time\nt = time.localtime()\n") == ["SD302"]

    def test_time_gmtime(self):
        assert rules_of("import time\nt = time.gmtime()\n") == ["SD302"]

    def test_time_ctime(self):
        assert rules_of("import time\ns = time.ctime()\n") == ["SD302"]

    def test_time_sleep_is_sanctioned(self):
        # Pacing a poll loop does not *read* the clock.
        assert rules_of("import time\ntime.sleep(0.1)\n") == []

    def test_asyncio_sleep_is_sanctioned(self):
        source = "import asyncio\nasync def f():\n    await asyncio.sleep(0.1)\n"
        assert rules_of(source) == []


class TestWallClockExtendedSet:
    """The SD302 audit additions: process clocks, os.times, and the
    fromtimestamp converters."""

    def test_os_times(self):
        assert rules_of("import os\nt = os.times()\n") == ["SD302"]

    def test_process_time(self):
        assert rules_of("import time\nt = time.process_time()\n") == ["SD302"]

    def test_clock_gettime_ns(self):
        source = "import time\nt = time.clock_gettime_ns(time.CLOCK_REALTIME)\n"
        assert rules_of(source) == ["SD302"]

    def test_fromtimestamp_with_log_derived_value_is_fine(self):
        source = (
            "import datetime\n"
            "def stamp(ts):\n"
            "    return datetime.datetime.fromtimestamp(ts)\n"
        )
        assert rules_of(source) == []

    def test_fromtimestamp_of_a_call_manufactures_a_timestamp(self):
        source = (
            "import time\nimport datetime\n"
            "t = datetime.datetime.fromtimestamp(time.time())\n"
        )
        # Both the converter and the inner clock read are flagged.
        assert rules_of(source) == ["SD302", "SD302"]

    def test_sanitizer_module_is_exempt(self):
        source = "import time\nt = time.perf_counter()\n"
        assert rules_of(source, "repro/analysis/sanitizer.py") == []
        assert rules_of(source) == ["SD302"]


class TestRelativeImports:
    """Regression: ``node.level > 0`` imports used to be dropped, so
    in-package aliases could launder banned calls."""

    def _tree(self, tmp_path, mod_source, compat_source=None):
        pkg = tmp_path / "repro" / "pkg"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        if compat_source is not None:
            (pkg / "compat.py").write_text(compat_source)
        (pkg / "mod.py").write_text(mod_source)
        return tmp_path

    def test_sd301_fires_through_a_relative_reexport(self, tmp_path):
        root = self._tree(
            tmp_path,
            "from .compat import roll\n\n\ndef jitter():\n    return roll()\n",
            "from random import random as roll\n",
        )
        findings = determinism.scan_tree(root)
        assert [(f.rule, f.path) for f in findings] == [
            ("SD301", "repro/pkg/mod.py")
        ]

    def test_sd302_fires_through_a_relative_reexport(self, tmp_path):
        root = self._tree(
            tmp_path,
            "from .compat import now\n\n\ndef stamp():\n    return now()\n",
            "from time import time as now\n",
        )
        findings = determinism.scan_tree(root)
        assert [(f.rule, f.path) for f in findings] == [
            ("SD302", "repro/pkg/mod.py")
        ]

    def test_sd303_fires_in_a_module_using_relative_imports(self, tmp_path):
        root = self._tree(
            tmp_path,
            "from .compat import ITEMS\n\n\n"
            "def order():\n    return [x for x in set(ITEMS)]\n",
            "ITEMS = (1, 2, 3)\n",
        )
        findings = determinism.scan_tree(root)
        assert [(f.rule, f.path) for f in findings] == [
            ("SD303", "repro/pkg/mod.py")
        ]

    def test_single_file_scan_resolves_relative_stdlib_alias(self):
        # Per-file scans now know their own module name, so a relative
        # alias chain inside the *same* package still needs the tree
        # scan; but a direct relative import no longer hides the name.
        source = "from . import compat\n"
        assert determinism.scan_source(source, "repro/pkg/mod.py") == []

    def test_clean_relative_imports_stay_clean(self, tmp_path):
        root = self._tree(
            tmp_path,
            "from .compat import helper\n\n\ndef f():\n    return helper()\n",
            "def helper():\n    return 42\n",
        )
        assert determinism.scan_tree(root) == []


class TestPristineTree:
    def test_simulator_source_is_deterministic(self):
        assert determinism.run(SRC_ROOT) == []

    def test_live_tree_is_scanned_and_clean(self):
        # The incremental miner/server promise replay byte-identity, so
        # the determinism lint must both reach them and find nothing.
        live_root = SRC_ROOT / "repro" / "live"
        scanned = {f.path for f in determinism.run(SRC_ROOT)}
        assert determinism.scan_tree(live_root) == []
        assert not any(p.startswith("repro/live/") for p in scanned)

    def test_calibrate_tree_is_scanned_and_clean(self):
        # The fit driver promises byte-identical artifacts at any
        # --jobs, so wall-clock reads or unseeded randomness anywhere
        # in repro.calibrate would be a contract violation.
        calibrate_root = SRC_ROOT / "repro" / "calibrate"
        scanned = {f.path for f in determinism.run(SRC_ROOT)}
        assert determinism.scan_tree(calibrate_root) == []
        assert not any(p.startswith("repro/calibrate/") for p in scanned)

    def test_syntax_errors_are_skipped(self):
        assert determinism.scan_source("def broken(:\n", "x.py") == []
