"""Mining diagnostics: the ledger of everything the pipeline tolerated.

SDchecker's degradation contract is *skip, count, and keep going*:
corrupted input never makes :meth:`~repro.core.checker.SDChecker.analyze`
raise, and it never silently lies either.  Every tolerated imperfection
— a dropped line, an ignored stream, an event bound to no ID, a delay
component whose endpoints are missing, a negative span betraying clock
skew — lands in a :class:`MiningDiagnostics` attached to the
:class:`~repro.core.report.AnalysisReport`, so a user (or ``--strict``)
can tell a pristine measurement from a best-effort one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.logsys.diagnostics import StreamDiagnostics

__all__ = ["AppDiagnostics", "MiningDiagnostics", "StreamDiagnostics"]


@dataclass
class AppDiagnostics:
    """Component completeness and sanity of one application's decomposition."""

    app_id: str
    #: Headline delay components that could not be measured because one
    #: of their endpoint events is missing from the logs.
    missing_components: List[str] = field(default_factory=list)
    #: Negative spans: evidence of clock skew between daemons (or of a
    #: reordered/corrupted stream).  Reported verbatim, never clamped.
    skew_warnings: List[str] = field(default_factory=list)

    def degraded(self) -> bool:
        return bool(self.missing_components or self.skew_warnings)

    def to_dict(self) -> Dict[str, object]:
        return {
            "app_id": self.app_id,
            "missing_components": list(self.missing_components),
            "skew_warnings": list(self.skew_warnings),
        }


@dataclass
class MiningDiagnostics:
    """Everything one analysis run tolerated, per stream and per app."""

    streams: Dict[str, StreamDiagnostics] = field(default_factory=dict)
    apps: Dict[str, AppDiagnostics] = field(default_factory=dict)
    #: Mined events that could not be bound to any application ID
    #: (e.g. a container ID garbled beyond the app-ID derivation).
    orphan_events: int = 0

    # -- aggregates ------------------------------------------------------
    @property
    def unknown_streams(self) -> List[str]:
        """Daemon names no miner dispatch rule recognized, sorted."""
        return sorted(d for d, s in self.streams.items() if not s.recognized)

    @property
    def lines_dropped(self) -> int:
        return sum(s.lines_dropped for s in self.streams.values())

    @property
    def encoding_replacements(self) -> int:
        return sum(s.encoding_replacements for s in self.streams.values())

    @property
    def duplicate_records(self) -> int:
        return sum(s.duplicate_records for s in self.streams.values())

    @property
    def out_of_order_records(self) -> int:
        return sum(s.out_of_order for s in self.streams.values())

    @property
    def incomplete_apps(self) -> List[str]:
        """App IDs with at least one unmeasurable component, sorted."""
        return sorted(a for a, d in self.apps.items() if d.missing_components)

    def degraded(self) -> bool:
        """True when this run is anything less than a pristine measurement.

        ``--strict`` gates on exactly this: dropped or garbled lines,
        unrecognized streams, unbindable events, duplicate or reordered
        records, missing delay components, or skew warnings.
        """
        return bool(
            self.lines_dropped
            or self.encoding_replacements
            or self.duplicate_records
            or self.out_of_order_records
            or self.unknown_streams
            or self.orphan_events
            or any(a.degraded() for a in self.apps.values())
        )

    # -- rendering -------------------------------------------------------
    def summary(self) -> str:
        """The human-readable diagnostics section (``--diagnostics``)."""
        lines = [
            f"Mining diagnostics: {'DEGRADED' if self.degraded() else 'clean'} "
            f"({len(self.streams)} stream(s), {len(self.apps)} application(s))"
        ]
        totals = (
            f"  lines dropped: {self.lines_dropped}, invalid UTF-8 lines: "
            f"{self.encoding_replacements}, duplicate records: "
            f"{self.duplicate_records}, out-of-order records: "
            f"{self.out_of_order_records}, orphan events: {self.orphan_events}"
        )
        lines.append(totals)
        for daemon in sorted(self.streams):
            notes = self.streams[daemon].notes()
            if notes:
                lines.append(f"  stream {daemon}: " + "; ".join(notes))
        for app_id in sorted(self.apps):
            app = self.apps[app_id]
            if app.missing_components:
                lines.append(
                    f"  app {app_id}: missing "
                    + ", ".join(app.missing_components)
                )
            for warning in app.skew_warnings:
                lines.append(f"  app {app_id}: skew {warning}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "degraded": self.degraded(),
            "orphan_events": self.orphan_events,
            "lines_dropped": self.lines_dropped,
            "encoding_replacements": self.encoding_replacements,
            "duplicate_records": self.duplicate_records,
            "out_of_order_records": self.out_of_order_records,
            "unknown_streams": self.unknown_streams,
            "streams": {
                daemon: self.streams[daemon].to_dict()
                for daemon in sorted(self.streams)
            },
            "apps": {
                app_id: self.apps[app_id].to_dict()
                for app_id in sorted(self.apps)
            },
        }
