"""Tests for the two schedulers and the allocation/acquisition path."""

import pytest

from repro.core.checker import SDChecker
from repro.core.events import EventKind
from repro.mapreduce.application import MapReduceApplication
from repro.params import SimulationParams
from repro.testbed import Testbed
from tests.conftest import make_query_app


class TestCapacityScheduler:
    def test_all_guaranteed_containers_reserve_memory(self, bed):
        app = make_query_app("q", query=1)
        bed.submit(app)
        bed.run(until=20.0)
        # AM + 4 executors reserved somewhere.
        used = bed.cluster.used_memory_mb()
        params = bed.params
        assert used >= params.am_memory_mb + 4 * params.executor_memory_mb

    def test_memory_is_returned_at_completion(self, bed):
        app = make_query_app("q", query=6)
        bed.submit(app)
        bed.run_until_all_finished(limit=5000)
        # The AM container's NM-side cleanup completes just after the
        # app reaches FINISHED (as in YARN); give it a beat.
        bed.run(until=bed.sim.now + 5.0)
        assert bed.cluster.used_memory_mb() == 0

    def test_allocation_throughput_is_batch(self):
        """A big MR burst allocates hundreds of containers per second.

        Node updates drive batching, so the paper-sized 25-node cluster
        is used (25 scheduling opportunities per second).
        """
        bed = Testbed(seed=3)
        bed.submit(MapReduceApplication("burst", num_maps=600))
        bed.run(until=30.0)
        times = bed.rm.allocation_times
        assert len(times) >= 600
        span = max(times) - min(times)
        assert (len(times) - 1) / span > 100.0

    def test_fairness_prefers_smaller_app(self):
        """A late-arriving small app is not starved behind a huge one."""
        bed = Testbed(params=SimulationParams(num_nodes=5), seed=3)
        big = MapReduceApplication("big", num_maps=500)
        bed.submit(big)
        small = make_query_app("small", query=6)
        bed.submit(small, delay=5.0)
        bed.run_until_all_finished(limit=5000)
        # The small app must have all containers allocated well before
        # the big job's tail.
        assert small.milestones["allocation_complete"] < big.milestones["job_done"]

    def test_pending_containers_counter(self, bed):
        app = make_query_app("q", query=1)
        bed.submit(app)
        bed.run(until=0.2)
        # AM request registered with the scheduler at admission.
        assert bed.rm.scheduler.pending_containers() >= 0


class TestOpportunisticScheduler:
    def test_grants_inside_the_allocate_rpc(self):
        bed = Testbed(
            params=SimulationParams(num_nodes=5), seed=5, distributed_scheduling=True
        )
        app = make_query_app("q", query=1, opportunistic=True)
        bed.submit(app)
        bed.run_until_all_finished(limit=5000)
        # Aggregated allocation delay (START_ALLO..END_ALLO) is tens of
        # milliseconds — no node-update or heartbeat wait.
        report = SDChecker().analyze(bed.log_store)
        alloc = report.sample("allocation_delay")
        assert alloc.p95 < 0.3

    def test_requires_distributed_scheduling_enabled(self, bed):
        app = make_query_app("q", query=1, opportunistic=True)
        bed.submit(app)
        with pytest.raises(Exception, match="opportunistic"):
            bed.run_until_all_finished(limit=5000)

    def test_overrequest_bug_containers_released(self):
        bed = Testbed(
            params=SimulationParams(num_nodes=5), seed=5, distributed_scheduling=True
        )
        app = make_query_app("q", query=1, opportunistic=True)
        bed.submit(app)
        bed.run_until_all_finished(limit=5000)
        extra = bed.params.spark_overrequest_bug_extra
        released = [
            g for g in app.grants if g.rm_container.state == "RELEASED"
        ]
        assert len(released) == extra

    def test_queueing_when_nodes_busy(self):
        """Opportunistic containers queue at a busy NM (Fig 7b)."""
        params = SimulationParams(num_nodes=3)
        bed = Testbed(params=params, seed=5, distributed_scheduling=True)
        # Pin nearly all memory with long maps.
        capacity = bed.cluster.total_memory_mb() // params.map_container_memory_mb

        def long_map(app, ctx, index):
            yield ctx.sim.timeout(60.0)

        bed.submit(
            MapReduceApplication("hog", num_maps=int(capacity * 0.99), map_body=long_map)
        )
        app = make_query_app("q", query=6, opportunistic=True)
        bed.submit(app, delay=20.0)
        bed.run_until_all_finished(limit=5000)
        report = SDChecker().analyze(bed.log_store)
        launching = report.container_sample("launching")
        # At least one executor container waited tens of seconds in the
        # NM queue (SCHEDULED state) behind the hog maps.
        assert launching.max() > 10.0


class TestAcquisitionDelay:
    def test_mapreduce_acquisition_capped_by_heartbeat(self):
        """Fig 7c: ALLOCATED -> ACQUIRED bounded by the 1 s MR beat."""
        bed = Testbed(params=SimulationParams(num_nodes=5), seed=9)
        bed.submit(MapReduceApplication("wc", num_maps=60))
        bed.run_until_all_finished(limit=5000)
        report = SDChecker().analyze(bed.log_store)
        acq = report.container_sample("acquisition")
        assert len(acq) >= 60
        assert acq.max() <= bed.params.mr_am_heartbeat_s + 0.1
        assert acq.std() > 0.05  # "very high variances"

    def test_spark_acquisition_bounded_by_backoff(self, single_app_run):
        """Spark pulls back off 0.2 -> 3 s while waiting; acquisition is
        bounded by the largest pull gap."""
        _bed, _app, report = single_app_run
        acq = report.container_sample("acquisition")
        assert acq.max() <= 3.0 + 0.1
