"""Reproduction of *Characterizing Scheduling Delay for Low-latency
Data Analytics Workloads* (IPDPS 2018).

Two halves:

* :mod:`repro.core` — **SDchecker**, the paper's contribution: an
  offline log-mining tool that decomposes job scheduling delay from
  YARN + Spark log files.
* Everything else — the simulated Spark-on-YARN testbed the paper ran
  on (discrete-event cluster, YARN RM/NM/schedulers, HDFS, Spark,
  MapReduce, workloads), which emits the log files SDchecker mines.

Quick start::

    from repro import Testbed, SparkApplication, SDChecker
    from repro.workloads import TPCHDataset, TPCHQueryWorkload

    bed = Testbed(seed=1)
    data = TPCHDataset(2 << 30)
    bed.submit(SparkApplication("q1", TPCHQueryWorkload(data, query=1)))
    bed.run_until_all_finished()
    report = SDChecker().analyze(bed.log_store)
    print(report.summary())
"""

from repro.params import SimulationParams, MB, GB
from repro.testbed import Testbed
from repro.spark.application import SparkApplication
from repro.mapreduce.application import MapReduceApplication
from repro.core.checker import SDChecker

__version__ = "1.0.0"

__all__ = [
    "GB",
    "MB",
    "MapReduceApplication",
    "SDChecker",
    "SimulationParams",
    "SparkApplication",
    "Testbed",
    "__version__",
]
