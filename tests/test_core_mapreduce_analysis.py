"""SDchecker applied to MapReduce applications.

The paper's tool is framework-agnostic on the YARN side: MR apps have
no Spark driver/executor markers, so the Spark-specific metrics are
None while the container-level components remain fully measurable.
"""

import pytest

from repro.core.checker import SDChecker
from repro.core.events import EventKind
from repro.core.timeline import render_timeline
from repro.mapreduce.application import MapReduceApplication
from repro.params import SimulationParams
from repro.testbed import Testbed


@pytest.fixture(scope="module")
def mr_analysis():
    bed = Testbed(params=SimulationParams(num_nodes=5), seed=95)
    app = MapReduceApplication("wc", num_maps=5, num_reduces=1)
    bed.submit(app)
    bed.run_until_all_finished(limit=5000)
    checker = SDChecker()
    return bed, app, checker, checker.group(bed.log_store)


class TestMapReduceDecomposition:
    def test_spark_metrics_absent(self, mr_analysis):
        bed, app, checker, _traces = mr_analysis
        report = checker.analyze(bed.log_store)
        delays = report.apps[0]
        assert delays.driver_delay is None  # no Spark REGISTER line
        assert delays.allocation_delay is None  # no SDCHECKER markers
        assert delays.total_delay is None  # no "Got assigned task"

    def test_yarn_metrics_present(self, mr_analysis):
        bed, _app, checker, _traces = mr_analysis
        report = checker.analyze(bed.log_store)
        delays = report.apps[0]
        assert delays.am_delay is not None and delays.am_delay > 0
        assert delays.job_runtime is not None
        for c in delays.containers:
            assert c.localization_delay is not None
            assert c.launching_delay is not None

    def test_graph_has_no_first_task_path(self, mr_analysis):
        _bed, _app, checker, traces = mr_analysis
        graph = checker.graph(next(iter(traces.values())))
        assert graph.is_dag()
        assert graph.critical_path() == []  # no FIRST_TASK target

    def test_timeline_renders_without_task_markers(self, mr_analysis):
        _bed, _app, _checker, traces = mr_analysis
        text = render_timeline(next(iter(traces.values())))
        assert "driver" in text
        assert text.count("executor-") == 6  # 5 maps + 1 reduce lifelines

    def test_no_bug_findings_for_mr(self, mr_analysis):
        """MR children log 'Task attempt_... is done' instead of Spark's
        'Got assigned task'; the detector recognizes both as work."""
        bed, _app, checker, _traces = mr_analysis
        report = checker.analyze(bed.log_store)
        assert report.bug_findings == []
