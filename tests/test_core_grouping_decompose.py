"""Tests for grouping and delay decomposition on hand-built events.

The store built here has exact, hand-computable timestamps so every
decomposition formula of section III-C is checked against a known
answer.
"""

import pytest

from repro.core.decompose import decompose
from repro.core.events import EventKind
from repro.core.grouping import group_events
from repro.core.parser import LogMiner
from tests.test_core_parser import AM, APP, EXEC, build_store


@pytest.fixture(scope="module")
def trace():
    traces = group_events(LogMiner().mine(build_store()))
    assert list(traces) == [APP]
    return traces[APP]


@pytest.fixture(scope="module")
def delays(trace):
    return decompose(trace)


class TestGrouping:
    def test_containers_grouped_under_app(self, trace):
        assert set(trace.containers) == {AM, EXEC}

    def test_am_container_identified(self, trace):
        assert trace.am_container.container_id == AM

    def test_worker_containers(self, trace):
        assert [c.container_id for c in trace.worker_containers] == [EXEC]

    def test_app_level_events_sorted(self, trace):
        times = [e.timestamp for e in trace.events]
        assert times == sorted(times)

    def test_instance_types(self, trace):
        assert trace.containers[AM].instance_type == "spm"
        assert trace.containers[EXEC].instance_type == "spe"

    def test_container_trace_first(self, trace):
        exec_trace = trace.containers[EXEC]
        assert exec_trace.first(EventKind.FIRST_TASK).timestamp == pytest.approx(9.5)
        assert exec_trace.time_of(EventKind.CONTAINER_RELEASED) is None

    def test_events_without_app_id_dropped(self):
        from repro.core.events import SchedulingEvent

        orphan = SchedulingEvent(
            EventKind.CONTAINER_ALLOCATED, 1.0, None, "container_x", "rm"
        )
        assert group_events([orphan]) == {}


class TestInstanceTypeDetailGuard:
    """A YarnChild first-log with missing detail must not crash (#2)."""

    def _mr_trace(self, detail):
        from repro.core.events import SchedulingEvent
        from repro.core.grouping import ContainerTrace

        trace = ContainerTrace(EXEC)
        trace.add(
            SchedulingEvent(
                EventKind.INSTANCE_FIRST_LOG,
                1.0,
                APP,
                EXEC,
                EXEC,
                source_class="org.apache.hadoop.mapred.YarnChild",
                detail=detail,
            )
        )
        return trace

    def test_none_detail_returns_unrefined_mrs(self):
        assert self._mr_trace(None).instance_type == "mrs"

    def test_empty_detail_defaults_to_map_child(self):
        assert self._mr_trace("").instance_type == "mrsm"

    def test_reduce_marker_still_refines(self):
        attempt = "attempt_1515715200000_0001_r_000000_0"
        assert self._mr_trace(f"Starting task {attempt}").instance_type == "mrsr"


class TestDecomposition:
    """Hand-checked against the timestamps in build_store():

    submitted 0.1, registered 5.0, AM first-log 2.0, driver-register
    5.0, START 5.1, END 6.7, exec ALLOCATED 6.0, ACQUIRED 6.5,
    LOCALIZING 6.6, SCHEDULED 7.1, NM RUNNING 7.9, exec first-log 7.9,
    first task 9.5.
    """

    def test_total_delay(self, delays):
        assert delays.total_delay == pytest.approx(9.5 - 0.1)

    def test_am_delay(self, delays):
        assert delays.am_delay == pytest.approx(5.0 - 0.1)

    def test_driver_delay(self, delays):
        assert delays.driver_delay == pytest.approx(5.0 - 2.0)

    def test_executor_delay(self, delays):
        assert delays.executor_delay == pytest.approx(9.5 - 7.9)

    def test_in_out_split(self, delays):
        assert delays.in_app_delay == pytest.approx(3.0 + 1.6)
        assert delays.out_app_delay == pytest.approx(delays.total_delay - 4.6)

    def test_allocation_delay(self, delays):
        assert delays.allocation_delay == pytest.approx(6.7 - 5.1)

    def test_cf_cl(self, delays):
        assert delays.cf_delay == pytest.approx(7.9 - 0.1)
        assert delays.cl_delay == pytest.approx(7.9 - 0.1)
        assert delays.cl_cf_delay == pytest.approx(0.0)

    def test_container_components(self, delays):
        exec_delays = next(c for c in delays.containers if c.container_id == EXEC)
        assert exec_delays.acquisition_delay == pytest.approx(0.5)
        assert exec_delays.localization_delay == pytest.approx(0.5)
        assert exec_delays.launching_delay == pytest.approx(0.8)

    def test_job_runtime_none_without_finish(self, delays):
        assert delays.job_runtime is None  # no FINISHED line in the store
        assert delays.normalized_total is None

    def test_complete_flag(self, delays):
        assert delays.complete()


class TestMissingEvents:
    def test_partial_workflow_yields_none_metrics(self):
        from repro.logsys.store import LogStore

        store = LogStore.from_lines(
            [
                (
                    "hadoop-resourcemanager",
                    f"2018-01-12 00:00:00,100 INFO x.RMAppImpl: {APP} State "
                    "change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED",
                ),
                (
                    "hadoop-resourcemanager",
                    f"2018-01-12 00:00:00,300 INFO x.RMContainerImpl: {EXEC} "
                    "Container Transitioned from NEW to ALLOCATED",
                ),
            ]
        )
        traces = group_events(LogMiner().mine(store))
        delays = decompose(traces[APP])
        assert delays.total_delay is None
        assert delays.am_delay is None
        assert delays.driver_delay is None
        assert not delays.complete()
        container = delays.containers[0]
        assert container.acquisition_delay is None
