"""YARN global identifiers.

Application and container IDs are the *global IDs* SDchecker uses to
bind log events from different daemons to the same scheduling entity
(section III-C).  The textual formats follow Hadoop exactly::

    application_1515744000000_0042
    appattempt_1515744000000_0042_000001
    container_1515744000000_0042_01_000007

A container ID embeds its application's cluster timestamp and sequence
number, which is what lets SDchecker group container events under the
owning application without any side channel.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["ApplicationId", "ApplicationAttemptId", "ContainerId", "CLUSTER_TIMESTAMP"]

#: RM start timestamp baked into every ID (2018-01-12 00:00:00 UTC in ms).
CLUSTER_TIMESTAMP = 1515715200000

_APP_RE = re.compile(r"^application_(\d+)_(\d{4,})$")
#: Attempt ids render %02d but widen past 99 (recurring apps), so the
#: segment is "two or more digits" — kept in sync with CONTAINER_ID_RE
#: in repro.core.messages.
_CONTAINER_RE = re.compile(r"^container_(?:e\d+_)?(\d+)_(\d{4,})_(\d{2,})_(\d{6})$")


@dataclass(frozen=True, slots=True, order=True)
class ApplicationId:
    """One submitted application."""

    cluster_timestamp: int
    app_seq: int

    def __str__(self) -> str:
        return f"application_{self.cluster_timestamp}_{self.app_seq:04d}"

    @classmethod
    def parse(cls, text: str) -> "ApplicationId":
        m = _APP_RE.match(text)
        if m is None:
            raise ValueError(f"not an application id: {text!r}")
        return cls(int(m.group(1)), int(m.group(2)))

    def attempt(self, attempt_seq: int = 1) -> "ApplicationAttemptId":
        return ApplicationAttemptId(self, attempt_seq)

    def container(self, container_seq: int, attempt_seq: int = 1) -> "ContainerId":
        return ContainerId(self, attempt_seq, container_seq)


@dataclass(frozen=True, slots=True, order=True)
class ApplicationAttemptId:
    """One attempt of an application (we never simulate AM retries)."""

    app_id: ApplicationId
    attempt_seq: int

    def __str__(self) -> str:
        return (
            f"appattempt_{self.app_id.cluster_timestamp}_"
            f"{self.app_id.app_seq:04d}_{self.attempt_seq:06d}"
        )


@dataclass(frozen=True, slots=True, order=True)
class ContainerId:
    """One container; ``container_seq`` 1 is the ApplicationMaster."""

    app_id: ApplicationId
    attempt_seq: int
    container_seq: int

    def __str__(self) -> str:
        return (
            f"container_{self.app_id.cluster_timestamp}_{self.app_id.app_seq:04d}_"
            f"{self.attempt_seq:02d}_{self.container_seq:06d}"
        )

    @classmethod
    def parse(cls, text: str) -> "ContainerId":
        m = _CONTAINER_RE.match(text)
        if m is None:
            raise ValueError(f"not a container id: {text!r}")
        app = ApplicationId(int(m.group(1)), int(m.group(2)))
        return cls(app, int(m.group(3)), int(m.group(4)))

    @property
    def is_application_master(self) -> bool:
        """YARN convention: the AM is always container #000001."""
        return self.container_seq == 1
