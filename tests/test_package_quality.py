"""Package-level quality gates: imports, exports, docstrings."""

import importlib
import pkgutil

import pytest

import repro

ALL_MODULES = sorted(
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
)


class TestImports:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_imports(self, module_name):
        importlib.import_module(module_name)

    def test_module_inventory_is_complete(self):
        """The package has the subsystems DESIGN.md promises."""
        packages = {name.split(".")[1] for name in ALL_MODULES}
        assert {
            "simul",
            "logsys",
            "cluster",
            "hdfs",
            "yarn",
            "spark",
            "mapreduce",
            "hive",
            "workloads",
            "core",
            "experiments",
        } <= packages


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize(
        "module_name",
        [m for m in ALL_MODULES if not m.rsplit(".", 1)[-1].startswith("_")],
    )
    def test_module_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"


class TestDocstrings:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, module_name

    def test_public_api_documented(self):
        from repro.core.checker import SDChecker
        from repro.testbed import Testbed

        for obj in (SDChecker, SDChecker.analyze, Testbed, Testbed.submit):
            assert obj.__doc__ and obj.__doc__.strip()


class TestVersioning:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_py_typed_marker_shipped(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()
