"""A MapReduce application: AM + map/reduce task containers.

Task behaviour is pluggable through ``map_body``/``reduce_body`` so the
same application class covers the wordcount load generator (tasks hold
resources and burn CPU) and dfsIO (tasks stream writes into HDFS, the
Fig 12 interference source).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.simul.engine import Event
from repro.yarn.app import ContainerContext, YarnApplication
from repro.yarn.records import ExecutionType, LaunchSpec, ResourceRequest, ResourceSpec

__all__ = ["MapReduceApplication"]

_AM_CLS = "org.apache.hadoop.mapreduce.v2.app.MRAppMaster"
_CHILD_CLS = "org.apache.hadoop.mapred.YarnChild"
_TASK_CLS = "org.apache.hadoop.mapred.Task"

#: Body signature: (app, ctx, task_index) -> process generator.
TaskBody = Callable[["MapReduceApplication", ContainerContext, int], Any]


def default_map_body(
    app: "MapReduceApplication", ctx: ContainerContext, index: int
) -> Generator[Event, Any, None]:
    """Wordcount-style map: scan + CPU for a lognormal duration."""
    params = ctx.services.params
    rng = ctx.services.rng.child(f"map.{ctx.container_id}")
    duration = rng.lognormal_median(
        params.map_task_duration_median_s, params.map_task_duration_sigma
    )
    cpu_part = duration * 0.6
    yield ctx.node.cpu.submit(cpu_part, demand=1.0)
    yield ctx.sim.timeout(duration - cpu_part)


class MapReduceApplication(YarnApplication):
    """One MapReduce job (wordcount by default)."""

    AM_INSTANCE_TYPE = "mrm"

    def __init__(
        self,
        name: str,
        num_maps: int,
        num_reduces: int = 0,
        map_body: Optional[TaskBody] = None,
        reduce_body: Optional[TaskBody] = None,
        opportunistic: bool = False,
        docker: bool = False,
        user: str = "ubuntu",
    ):
        super().__init__(name, user=user)
        if num_maps < 1:
            raise ValueError("num_maps must be >= 1")
        self.num_maps = num_maps
        self.num_reduces = num_reduces
        self.map_body = map_body or default_map_body
        self.reduce_body = reduce_body or default_map_body
        self.opportunistic = opportunistic
        self.docker = docker
        self.milestones: dict = {}

    def am_heartbeat_intervals(self, params):
        # The flat 1 s MapReduce default — Fig 7c's acquisition cap.
        return (params.mr_am_heartbeat_s, params.mr_am_heartbeat_s)

    def task_spec(self, params) -> ResourceSpec:
        return ResourceSpec(params.map_container_memory_mb, params.map_container_vcores)

    def run_application_master(
        self, ctx: ContainerContext
    ) -> Generator[Event, Any, None]:
        sim = ctx.sim
        params = ctx.services.params
        rng = ctx.services.rng.child(f"mr.{self.app_id}")
        ctx.logger.info(_AM_CLS, f"Created MRAppMaster for application {self.app_id}")
        self.milestones["am_first_log"] = sim.now

        # Job init (split computation, committer setup).
        init = rng.lognormal_median(0.9, 0.3)
        cpu_part = init * 0.7
        yield ctx.node.cpu.submit(cpu_part, demand=1.0)
        yield sim.timeout(init - cpu_part)
        yield from ctx.am_client.register()
        ctx.logger.info(_AM_CLS, f"Registered MRAppMaster for {self.app_id}")
        self.milestones["am_registered"] = sim.now

        execution_type = (
            ExecutionType.OPPORTUNISTIC if self.opportunistic else ExecutionType.GUARANTEED
        )
        yield from self._run_phase(
            ctx, "map", self.num_maps, "mrsm", self.map_body, execution_type
        )
        if self.num_reduces > 0:
            yield from self._run_phase(
                ctx, "reduce", self.num_reduces, "mrsr", self.reduce_body, execution_type
            )
        self.milestones["job_done"] = sim.now
        yield from ctx.am_client.unregister()

    def _run_phase(
        self,
        ctx: ContainerContext,
        phase: str,
        count: int,
        instance_type: str,
        body: TaskBody,
        execution_type: ExecutionType,
    ) -> Generator[Event, Any, None]:
        """Request ``count`` containers, run all tasks, wait for them."""
        sim = ctx.sim
        params = ctx.services.params
        ctx.am_client.request_containers(
            ResourceRequest(self.task_spec(params), count, execution_type)
        )
        task_procs: List = []
        for index in range(count):
            grant = yield ctx.am_client.allocated.get()
            spec = LaunchSpec(
                instance_type=instance_type,
                run=self._task_runner(body, index, phase),
                files=list(self.payload_files),
                docker=self.docker,
            )
            # Container launches go through the AM's ContainerLauncher
            # thread pool: concurrent, not serialized on the AM loop.
            container_proc = ctx.services.rm.nm_for(grant.node).start_container(
                grant, spec, self
            )
            task_procs.append(container_proc)
        yield sim.all_of(task_procs)
        self.milestones[f"{phase}_done"] = sim.now

    def _task_runner(self, body: TaskBody, index: int, phase: str = "map"):
        def run(task_ctx: ContainerContext):
            return self._task_body(task_ctx, body, index, phase)

        return run

    def _task_body(
        self, task_ctx: ContainerContext, body: TaskBody, index: int, phase: str
    ) -> Generator[Event, Any, None]:
        # The attempt ID carries the m/r marker — how SDchecker tells
        # map children from reduce children in Fig 9a.
        kind = "m" if phase == "map" else "r"
        attempt = (
            f"attempt_{self.app_id.cluster_timestamp}_{self.app_id.app_seq:04d}"
            f"_{kind}_{index:06d}_0"
        )
        task_ctx.logger.info(
            _CHILD_CLS,
            f"Executing with tokens for {attempt} in container "
            f"{task_ctx.container_id}",
        )
        yield from body(self, task_ctx, index)
        task_ctx.logger.info(_TASK_CLS, f"Task {attempt} is done")
