"""A worker node: CPU run-queue, disk array, NIC, and memory ledger.

CPU, disk and NIC are :class:`~repro.simul.resources.FairShareResource`
instances so every activity placed on the node (JVM start-up, task
compute, localization downloads, dfsIO streams) contends naturally: the
interference results of Figs 12 and 13 emerge from this sharing rather
than from injected slowdown factors.

Memory is a simple ledger — YARN admission control needs the count, but
memory bandwidth contention is not part of the paper's analysis.
"""

from __future__ import annotations

from typing import Dict

from repro.simul.engine import SimulationError, Simulator
from repro.simul.resources import FairShareResource

__all__ = ["Node"]


class Node:
    """One worker machine in the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        index: int,
        cores: int,
        memory_mb: int,
        disk_bandwidth: float,
        network_bandwidth: float,
        page_cache_bytes: float,
        memory_only_fit: bool = True,
    ):
        if cores < 1 or memory_mb < 1:
            raise SimulationError(f"invalid node shape: {cores} cores / {memory_mb} MB")
        self.sim = sim
        self.index = index
        self.hostname = f"node{index + 1:02d}"
        self.cores = cores
        self.memory_mb = memory_mb
        #: CPU run-queue: capacity in cores, work in core-seconds.
        self.cpu = FairShareResource(sim, float(cores), name=f"{self.hostname}.cpu")
        #: Local disk array: capacity in bytes/s.
        self.disk = FairShareResource(sim, disk_bandwidth, name=f"{self.hostname}.disk")
        #: NIC: capacity in bytes/s.
        self.nic = FairShareResource(sim, network_bandwidth, name=f"{self.hostname}.nic")
        #: Bytes of HDFS data recently written/read that the OS page
        #: cache can serve without touching the disk array.
        self.page_cache_bytes = page_cache_bytes
        #: YARN's DefaultResourceCalculator considers memory only; vcores
        #: are tracked but not enforced (the CPU-oversubscription
        #: behaviour the Kmeans interference experiment relies on).
        self.memory_only_fit = memory_only_fit
        #: False once the node failed or was decommissioned; inactive
        #: nodes are invisible to schedulers and placement queries.
        self.active = True
        self._memory_used_mb = 0
        self._vcores_used = 0
        #: Aggregate demand (bytes/s) of write streams currently hitting
        #: this node's disks.  Writes dirty and evict the page cache;
        #: reads do not (recently-written localization packages stay hot
        #: under scan pressure — the Fig 5 vs Fig 12 asymmetry).
        self.write_demand: float = 0.0
        #: Per-tag counters for introspection in tests/experiments.
        self.allocations: Dict[str, int] = {}

    # -- YARN-visible resource accounting ---------------------------------
    @property
    def memory_available_mb(self) -> int:
        return self.memory_mb - self._memory_used_mb

    @property
    def vcores_available(self) -> int:
        return self.cores - self._vcores_used

    def fits(self, memory_mb: int, vcores: int) -> bool:
        """Whether a container of this shape fits right now."""
        if memory_mb > self.memory_available_mb:
            return False
        return self.memory_only_fit or vcores <= self.vcores_available

    def reserve(self, memory_mb: int, vcores: int, tag: str = "container") -> None:
        """Claim YARN resources for a container placed here."""
        if not self.fits(memory_mb, vcores):
            raise SimulationError(
                f"{self.hostname}: cannot reserve {memory_mb}MB/{vcores}vc "
                f"(free {self.memory_available_mb}MB/{self.vcores_available}vc)"
            )
        self._memory_used_mb += memory_mb
        self._vcores_used += vcores
        self.allocations[tag] = self.allocations.get(tag, 0) + 1

    def free(self, memory_mb: int, vcores: int, tag: str = "container") -> None:
        """Return YARN resources when a container finishes."""
        self._memory_used_mb -= memory_mb
        self._vcores_used -= vcores
        if self._memory_used_mb < 0:
            raise SimulationError(f"{self.hostname}: released more than reserved")
        self.allocations[tag] = self.allocations.get(tag, 0) - 1

    # -- write-pressure tracking ---------------------------------------------
    def begin_write(self, demand: float) -> None:
        """A write stream of ``demand`` bytes/s starts hitting the disk."""
        self.write_demand += demand

    def end_write(self, demand: float) -> None:
        self.write_demand -= demand
        # FP slop accumulates over thousands of begin/end pairs of
        # ~1e8-magnitude demands; only a materially negative balance is
        # a bookkeeping bug.
        if self.write_demand < -1e-3 * (abs(demand) + 1.0):
            raise SimulationError(f"{self.hostname}: write pressure went negative")
        self.write_demand = max(0.0, self.write_demand)

    def write_pressure(self) -> float:
        """Write demand relative to disk capacity (0 = no writes)."""
        return self.write_demand / self.disk.capacity

    # -- convenience -------------------------------------------------------
    def cpu_slowdown(self) -> float:
        """Current CPU contention factor (1.0 = uncontended)."""
        return self.cpu.slowdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Node {self.hostname} free={self.memory_available_mb}MB/"
            f"{self.vcores_available}vc cpu_jobs={self.cpu.active_jobs}>"
        )
