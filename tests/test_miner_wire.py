"""Memory-path contracts: wire round-trips and mmap/read(2) identity.

Two invariants introduced by the zero-copy mining path live here:

* :mod:`repro.core.wire` — ``decode_scan(encode_scan(scan))`` must be
  an identity on every scan a worker can produce, including non-ASCII
  strings (log lines are UTF-8, and boundary-key messages carry them
  verbatim);
* :func:`repro.logsys.store.chunk_window` — the mmap window of any
  ``(start, end)`` range must be byte-identical to what the seeking
  ``read_chunk`` path returns, on every file shape (empty, missing
  trailing newline, chunk boundaries landing mid-line), because the
  fast miner treats the two as interchangeable (``REPRO_MMAP=0``).
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import EventKind
from repro.core.parser import LogMiner
from repro.core.wire import WIRE_VERSION, decode_scan, encode_scan
from repro.logsys.store import (
    MMAP_ENV_VAR,
    chunk_window,
    map_readonly,
    mmap_enabled,
    partition_file,
    read_chunk,
    read_chunk_fast,
)

pytest.importorskip("mmap")  # fallback platforms only have read_chunk

_KINDS = tuple(EventKind)

#: Timestamps round-trip through an IEEE-754 double on the wire, so any
#: finite float must survive exactly (NaN is excluded only because it
#: breaks tuple equality, not the codec).
_TS = st.floats(allow_nan=False, allow_infinity=False, width=64)

#: App/container/class strings, deliberately including non-ASCII — log
#: messages are UTF-8 and boundary keys quote them verbatim.
_NAME = st.one_of(
    st.none(),
    st.text(min_size=0, max_size=40),
    st.sampled_from(
        [
            "application_1515715200000_0001",
            "container_1515715200000_0001_01_000002",
            "café ünïcode Ω",
            "ステージ 1.0",
            "x.RMAppImpl",
        ]
    ),
)

_EVENT = st.tuples(
    st.sampled_from([k.value for k in _KINDS]), _TS, _NAME, _NAME, _NAME
)

_KEY = st.one_of(st.none(), st.tuples(_TS, _NAME, _NAME, _NAME))

_COUNTERS = st.tuples(*([st.integers(0, 2**40)] * 7))

_SCAN = st.tuples(st.lists(_EVENT, max_size=30), _COUNTERS, _KEY, _KEY)


class TestWireRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(scan=_SCAN)
    def test_decode_inverts_encode(self, scan):
        events, counters, first_key, last_key = decode_scan(encode_scan(scan))
        assert (list(events), counters, first_key, last_key) == (
            list(scan[0]),
            tuple(scan[1]),
            scan[2],
            scan[3],
        )

    def test_decoded_strings_are_shared(self):
        app = "application_1515715200000_0001"
        scan = (
            [
                (EventKind.APP_SUBMITTED.value, 1.0, app, None, "rm"),
                (EventKind.APP_ACCEPTED.value, 2.0, app, None, "rm"),
            ],
            (2, 2, 0, 0, 0, 0, 0),
            None,
            None,
        )
        events, _, _, _ = decode_scan(encode_scan(scan))
        # One str object per table entry: the parent-side merge dedups
        # for free instead of re-interning pickle's fresh copies.
        assert events[0][2] is events[1][2]
        assert events[0][4] is events[1][4]

    def test_version_skew_is_refused(self):
        blob = bytearray(encode_scan(([], (0,) * 7, None, None)))
        blob[0] = WIRE_VERSION + 1
        with pytest.raises(ValueError, match="wire version"):
            decode_scan(bytes(blob))


def _window_bytes(path, start, end):
    mm = map_readonly(path)
    if mm is None:  # empty file: mmap(fd, 0) is invalid, fast path falls back
        assert Path(path).stat().st_size == 0
        return bytes(read_chunk_fast(path, start, end))
    return bytes(chunk_window(mm, start, end))


class TestWindowIdentity:
    """chunk_window == read_chunk on every (content, range) pair."""

    @settings(max_examples=120, deadline=None)
    @given(
        lines=st.lists(st.binary(max_size=12).filter(lambda b: b"\n" not in b), max_size=12),
        terminated=st.booleans(),
        start=st.integers(0, 160),
        span=st.integers(1, 160),
    )
    def test_any_range_matches_read_chunk(
        self, tmp_path_factory, lines, terminated, start, span
    ):
        tmp_path = tmp_path_factory.mktemp("win")
        path = tmp_path / "d.log"
        body = b"\n".join(lines) + (b"\n" if terminated and lines else b"")
        path.write_bytes(body)
        assert _window_bytes(path, start, start + span) == read_chunk(
            path, start, start + span
        )

    def test_empty_file(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_bytes(b"")
        assert _window_bytes(path, 0, 10) == read_chunk(path, 0, 10) == b""
        assert read_chunk_fast(path, 0, 10) == b""

    def test_no_trailing_newline(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_bytes(b"alpha\nbeta")
        for start, end in ((0, 4), (0, 10), (3, 10), (6, 10)):
            assert _window_bytes(path, start, end) == read_chunk(path, start, end)

    def test_partition_points_reconstruct_file(self, tmp_path):
        """Every partition chunk, mmap vs read, over a mid-line boundary."""
        path = tmp_path / "d.log"
        # Lines of 37 bytes: no chunk boundary of the 48-byte target
        # ever lands on a newline, so both sides must exercise their
        # lookbehind/extend logic on every chunk.
        path.write_bytes(b"".join(b"%035d\n" % i for i in range(40)))
        chunks = partition_file(path, threshold=64, target=48)
        assert len(chunks) > 1
        windows = [_window_bytes(path, s, e) for s, e in chunks]
        reads = [read_chunk(path, s, e) for s, e in chunks]
        assert windows == reads
        assert b"".join(windows) == path.read_bytes()

    def test_default_threshold_straddle(self, tmp_path):
        """A real ~9 MiB file: the 4 MiB boundary lands mid-line."""
        path = tmp_path / "d.log"
        line = b"x" * 4093 + b"\n"  # 4094 B: prime-ish vs 4 MiB target
        with open(path, "wb") as handle:
            for _ in range(2400):  # ~9.4 MiB, over FAST_SPLIT_THRESHOLD
                handle.write(line)
        chunks = partition_file(path)
        assert len(chunks) >= 2
        for start, end in chunks:
            assert _window_bytes(path, start, end) == read_chunk(path, start, end)


RM = "hadoop-resourcemanager"
_RM_LINES = [
    "2018-01-12 00:00:01,000 INFO x.RMAppImpl: application_1515715200000_0001 State change from NEW to SUBMITTED on event = START",
    "2018-01-12 00:00:02,000 INFO x.RMAppImpl: application_1515715200000_0001 State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED",
    "2018-01-12 00:00:03,000 INFO x.RMAppImpl: application_1515715200000_0001 State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED",
]


class TestMinerMmapToggle:
    """LogMiner output is invariant under REPRO_MMAP, incl. rotation."""

    def _mine_both(self, directory, monkeypatch):
        miner = LogMiner(fast=True, split_threshold=64, chunk_target=48)
        monkeypatch.setenv(MMAP_ENV_VAR, "1")
        assert mmap_enabled()
        with_mmap = miner.mine_with_diagnostics(str(directory))
        with_mmap_par = miner.mine_parallel(str(directory), jobs=2)
        monkeypatch.setenv(MMAP_ENV_VAR, "0")
        assert not mmap_enabled()
        without = miner.mine_with_diagnostics(str(directory))
        assert with_mmap[0] == without[0]
        assert with_mmap_par == without[0]
        return with_mmap

    def test_rotation_segments(self, tmp_path, monkeypatch):
        (tmp_path / f"{RM}.log.2").write_text(_RM_LINES[0] + "\n", encoding="utf-8")
        (tmp_path / f"{RM}.log.1").write_text(_RM_LINES[1] + "\n", encoding="utf-8")
        # Live segment without a trailing newline.
        (tmp_path / f"{RM}.log").write_text(_RM_LINES[2], encoding="utf-8")
        events, _ = self._mine_both(tmp_path, monkeypatch)
        assert [e.kind for e in events] == [
            EventKind.APP_SUBMITTED,
            EventKind.APP_ACCEPTED,
            EventKind.APP_ATTEMPT_REGISTERED,
        ]

    def test_empty_and_garbled_files(self, tmp_path, monkeypatch):
        (tmp_path / f"{RM}.log").write_text(
            "\n".join(_RM_LINES + ["stack trace noise", ""]) + "\n",
            encoding="utf-8",
        )
        (tmp_path / "hadoop-nodemanager-node01.log").write_bytes(b"")
        events, diagnostics = self._mine_both(tmp_path, monkeypatch)
        assert len(events) == 3
        assert diagnostics.streams[RM].dropped_garbled >= 1

    def test_kill_switch_reaches_read_path(self, tmp_path, monkeypatch):
        path = tmp_path / "d.log"
        path.write_bytes(b"a\nb\n")
        monkeypatch.setenv(MMAP_ENV_VAR, "0")
        out = read_chunk_fast(path, 0, 4)
        assert isinstance(out, bytes) and out == b"a\nb\n"
        monkeypatch.setenv(MMAP_ENV_VAR, "1")
        out = read_chunk_fast(path, 0, 4)
        assert bytes(out) == b"a\nb\n"
