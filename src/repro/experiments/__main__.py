"""``python -m repro.experiments`` — the scenario-pack CLI.

Runs named production-scale scenario presets end to end: build the
seeded testbed, simulate, mine the logs with SDchecker, and print the
report.  Errors (unknown subcommand, unknown preset) list what exists
on stderr and exit non-zero — never a traceback.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from repro.workloads.scenarios import SCENARIO_PRESETS, list_scenarios

USAGE = """\
usage: python -m repro.experiments scenario <name> [--seed N] [--jobs N|auto]
                                                   [--dump DIR] [--json]
       python -m repro.experiments scenario --list

Run a named production-scale scenario preset: generate its logs on the
simulated testbed, mine them with SDchecker, and print the report.

options:
  --seed N     override the preset's pinned seed
  --jobs N     mine with N worker processes ('auto' = one per core)
  --dump DIR   also write the generated log files under DIR
  --json       print the mined report as JSON instead of the summary
"""


def _fail(message: str) -> int:
    print(message, file=sys.stderr)
    print(f"available scenario presets: {', '.join(list_scenarios())}", file=sys.stderr)
    return 2


def _print_presets() -> int:
    width = max(len(name) for name in SCENARIO_PRESETS)
    for name, scenario in SCENARIO_PRESETS.items():
        print(f"{name:{width}s}  seed={scenario.default_seed:<3d} {scenario.description}")
    return 0


def _run_scenario(argv: List[str]) -> int:
    if "--list" in argv:
        return _print_presets()
    seed: Optional[int] = None
    jobs = 1
    dump: Optional[str] = None
    as_json = False
    name: Optional[str] = None
    it = iter(argv)
    for arg in it:
        if arg == "--seed":
            try:
                seed = int(next(it))
            except (StopIteration, ValueError):
                return _fail("error: --seed needs an integer")
        elif arg == "--jobs":
            try:
                raw = next(it)
            except StopIteration:
                return _fail("error: --jobs needs an integer or 'auto'")
            if raw == "auto":
                jobs = raw
            else:
                try:
                    jobs = int(raw)
                except ValueError:
                    return _fail("error: --jobs needs an integer or 'auto'")
        elif arg == "--dump":
            try:
                dump = next(it)
            except StopIteration:
                return _fail("error: --dump needs a directory")
        elif arg == "--json":
            as_json = True
        elif arg.startswith("-"):
            return _fail(f"error: unknown option {arg!r}")
        elif name is None:
            name = arg
        else:
            return _fail(f"error: unexpected argument {arg!r}")
    if name is None:
        return _fail("error: scenario needs a preset name (or --list)")
    if name not in SCENARIO_PRESETS:
        return _fail(f"error: unknown scenario preset {name!r}")
    scenario = SCENARIO_PRESETS[name]
    run = scenario.run(seed=seed, jobs=jobs)
    if dump is not None:
        run.testbed.dump_logs(dump)
    if as_json:
        print(json.dumps(run.report.to_dict(), indent=2, sort_keys=True))
    else:
        print(run.report.summary())
        print(
            f"  scenario: {scenario.name} seed="
            f"{scenario.default_seed if seed is None else seed} "
            f"makespan={run.makespan:.1f}s preemptions={run.preemptions} "
            f"failure_kills={run.failure_kills}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        stream = sys.stderr if not argv else sys.stdout
        print(USAGE, file=stream, end="")
        return 2 if not argv else 0
    command, rest = argv[0], argv[1:]
    if command == "scenario":
        return _run_scenario(rest)
    return _fail(f"error: unknown command {command!r} (commands: scenario)")


if __name__ == "__main__":
    sys.exit(main())
