"""Tests for the opt-in runtime sanitizer (SD601-SD603)."""

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.analysis import sanitizer


@pytest.fixture()
def fresh_sanitizer():
    """An installed-from-scratch sanitizer, restored afterwards.

    Under ``REPRO_SANITIZE=1`` the session fixture already holds the
    loop monitor with the default threshold; these tests need their own
    threshold and must not leak findings into the session's sink.
    """
    was_installed = sanitizer._orig_handle_run is not None
    sanitizer.uninstall_loop_monitor()
    sanitizer.reset()
    yield sanitizer
    sanitizer.uninstall_loop_monitor()
    sanitizer.reset()
    if was_installed:
        sanitizer.install_loop_monitor()


def _burn(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


# Module-level so worker processes can unpickle them.
def _double(task: int) -> int:
    return task * 2


def _nondeterministic(task: int) -> int:
    return time.perf_counter_ns() + task


class TestLoopMonitor:
    def test_stall_is_recorded_and_attributed(self, fresh_sanitizer):
        fresh_sanitizer.install_loop_monitor(threshold=0.05)

        async def main():
            loop = asyncio.get_running_loop()
            loop.call_soon(_burn, 0.1)
            await asyncio.sleep(0.01)

        asyncio.run(main())
        findings = fresh_sanitizer.report()
        assert [f.rule for f in findings] == ["SD601"]
        assert "_burn" in findings[0].message
        assert "held the loop" in findings[0].message

    def test_fast_callbacks_stay_silent(self, fresh_sanitizer):
        fresh_sanitizer.install_loop_monitor(threshold=0.25)

        async def main():
            loop = asyncio.get_running_loop()
            loop.call_soon(_burn, 0.0)
            await asyncio.sleep(0.01)

        asyncio.run(main())
        assert fresh_sanitizer.report() == []

    def test_install_is_idempotent_and_uninstall_restores(self, fresh_sanitizer):
        original = asyncio.events.Handle._run
        fresh_sanitizer.install_loop_monitor(threshold=0.05)
        patched = asyncio.events.Handle._run
        assert patched is not original
        fresh_sanitizer.install_loop_monitor(threshold=99.0)
        assert asyncio.events.Handle._run is patched
        fresh_sanitizer.uninstall_loop_monitor()
        assert asyncio.events.Handle._run is original


class TestCheckedMap:
    def test_clean_worker_preserves_submission_order(self, fresh_sanitizer):
        with ProcessPoolExecutor(max_workers=2) as pool:
            results = list(
                fresh_sanitizer.checked_map(pool, _double, [3, 1, 2], stride=1)
            )
        assert results == [6, 2, 4]
        assert fresh_sanitizer.report() == []

    def test_unpicklable_payload_is_a_finding_not_a_traceback(
        self, fresh_sanitizer
    ):
        class _NeverUsedPool:
            pass

        with pytest.raises(TypeError, match="unpicklable submission"):
            fresh_sanitizer.checked_map(
                _NeverUsedPool(), _double, [lambda: 1], stride=1
            )
        findings = fresh_sanitizer.report()
        assert [f.rule for f in findings] == ["SD602"]
        assert "_double" in findings[0].message

    def test_nondeterministic_worker_is_caught_by_double_submit(
        self, fresh_sanitizer
    ):
        with ProcessPoolExecutor(max_workers=1) as pool:
            fresh_sanitizer.checked_map(pool, _nondeterministic, [1], stride=1)
        findings = fresh_sanitizer.report()
        assert [f.rule for f in findings] == ["SD603"]
        assert "_nondeterministic" in findings[0].message

    def test_sampling_stride_limits_double_submits(self, fresh_sanitizer):
        # stride=4 over 4 tasks double-submits only index 0; the
        # nondeterministic worker therefore yields exactly one finding.
        with ProcessPoolExecutor(max_workers=1) as pool:
            fresh_sanitizer.checked_map(
                pool, _nondeterministic, [1, 2, 3, 4], stride=4
            )
        assert len(fresh_sanitizer.report()) == 1


class TestMinerIntegration:
    def test_pool_map_routes_through_checked_map(
        self, fresh_sanitizer, monkeypatch, tmp_path
    ):
        """REPRO_SANITIZE=1 makes the miner's fan-out sanitizer-checked
        end to end, and the deterministic workers stay violation-free."""
        from repro.core.parser import LogMiner
        from repro.logsys.record import LogRecord
        from repro.logsys.store import LogStore

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        store = LogStore()
        for i in range(4):
            store.append(f"daemon-{i}", LogRecord(float(i), "x.Noise", "noise"))
        miner = LogMiner()
        events = miner.mine_parallel(store, jobs=2)
        assert events == miner.mine(store)
        assert fresh_sanitizer.report() == []
