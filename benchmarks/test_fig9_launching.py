"""Figure 9: launching delay by instance type and container type.

Shape claims: Spark drivers/executors launch in under a second at the
median (paper ~700 ms) with MapReduce instances a bit slower; Docker
adds a few hundred milliseconds at the median and more at the tail
(paper: +350 ms median, +658 ms p95, long tail).
"""

from repro.experiments.fig9 import INSTANCE_TYPES, run_fig9


def test_fig9_launching_delays(benchmark, scale, seed, record_rows):
    result = benchmark.pedantic(run_fig9, args=(scale, seed), rounds=1, iterations=1)
    record_rows("fig9", result.rows())

    by_type = result.by_instance_type
    # All five instance types observed.
    for code in INSTANCE_TYPES:
        assert code in by_type and by_type[code], f"no {code} samples"

    # Spark launches are sub-second-ish at the median; MR a bit longer.
    assert 0.3 < by_type["spe"].p50 < 1.5
    assert by_type["mrm"].p50 > by_type["spe"].p50

    # Docker overhead: positive at the median, larger at the tail.
    med_overhead = result.docker_overhead_median()
    p95_overhead = result.docker_overhead_p95()
    assert 0.1 < med_overhead < 1.5  # paper: 350 ms
    assert p95_overhead > med_overhead  # long-tail effect
