"""Figure 7: centralized vs distributed scheduler comparison.

Shape claims: the distributed scheduler allocates an order of magnitude
faster (paper ~80x median; p95 108 ms vs 3709 ms); under high load its
random placement queues tasks at NMs for tens of seconds (paper: up to
53 s vs ~100 ms centralized); acquisition delay is capped at the 1 s
MapReduce heartbeat at every load level.
"""

from repro.experiments.fig7 import run_fig7


def test_fig7_scheduler_comparison(benchmark, scale, seed, record_rows):
    result = benchmark.pedantic(run_fig7, args=(scale, seed), rounds=1, iterations=1)
    record_rows("fig7", result.rows())

    # (a) distributed wins by at least an order of magnitude.
    ce, de = result.allocation["ce"], result.allocation["de"]
    assert ce.p50 / de.p50 > 10.0
    assert de.p95 < 0.3  # paper: 108 ms
    assert ce.p95 > 1.0  # paper: 3709 ms

    # (b) distributed queues behind busy nodes; centralized doesn't.
    qce, qde = result.queueing["ce"], result.queueing["de"]
    assert qde.max() > 20.0  # paper: up to ~53 s
    assert qce.p50 < 1.0  # paper: ~100 ms

    # (c) acquisition capped by the 1 s AM heartbeat at every load.
    for load, sample in result.acquisition.items():
        assert sample.max() <= 1.05, f"load {load}: cap violated"
        assert sample.std() > 0.05, f"load {load}: variance collapsed"
