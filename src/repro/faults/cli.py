"""Command-line interface: ``python -m repro.faults {corrupt,sweep}``.

``corrupt`` writes a corrupted copy of a log directory (for by-hand
inspection or as a test fixture); ``sweep`` runs the certification
sweep over the whole catalog and exits non-zero on any contract
violation.  ``REPRO_BENCH_SMOKE=1`` shrinks the default sweep to a
CI-smoke size.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.faults.catalog import CATALOG
from repro.faults.inject import corrupt_copy, sweep

__all__ = ["main", "build_arg_parser"]

#: Seeds per corruption in a full sweep vs. the CI smoke run.
FULL_SEEDS = 25
SMOKE_SEEDS = 5


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.faults",
        description="Seeded log-corruption fault injection for SDchecker.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    corrupt = sub.add_parser(
        "corrupt", help="write a corrupted copy of a log directory"
    )
    corrupt.add_argument("logdir", help="clean log directory to copy")
    corrupt.add_argument("out", help="destination for the corrupted copy")
    corrupt.add_argument(
        "--corruption",
        action="append",
        choices=sorted(CATALOG),
        required=True,
        help="catalog entry to apply (repeatable, applied in order)",
    )
    corrupt.add_argument("--seed", type=int, default=0)

    sweep_parser = sub.add_parser(
        "sweep", help="certify the miner against the corruption catalog"
    )
    sweep_parser.add_argument("logdir", help="clean log directory to sweep over")
    sweep_parser.add_argument(
        "--corruption",
        action="append",
        choices=sorted(CATALOG),
        help="restrict the sweep to these catalog entries (default: all)",
    )
    sweep_parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help=(
            f"seeds per corruption (default {FULL_SEEDS}, "
            f"or {SMOKE_SEEDS} when REPRO_BENCH_SMOKE is set)"
        ),
    )
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="mining worker processes for the analyzed corpora",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    logdir = Path(args.logdir)
    if not logdir.is_dir():
        print(f"repro.faults: {logdir} is not a directory", file=sys.stderr)
        return 2

    if args.command == "corrupt":
        receipts = corrupt_copy(logdir, args.out, args.corruption, seed=args.seed)
        for receipt in receipts:
            for detail in receipt.details:
                print(f"{receipt.corruption}: {detail}")
            if not receipt.details:
                print(f"{receipt.corruption}: no-op at this seed")
        return 0

    n_seeds = args.seeds
    if n_seeds is None:
        n_seeds = SMOKE_SEEDS if os.environ.get("REPRO_BENCH_SMOKE") else FULL_SEEDS
    results = sweep(
        logdir, seeds=range(n_seeds), names=args.corruption, jobs=args.jobs
    )
    failures = 0
    for result in results:
        print(result.describe())
        if not result.passed:
            failures += 1
    print(
        f"sweep: {len(results)} cell(s), {failures} failure(s), "
        f"{sum(1 for r in results if r.degraded)} degraded-but-accounted"
    )
    return 0 if not failures else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
