"""The Hive metastore: database/table metadata over HDFS files."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hdfs.filesystem import HdfsFile
from repro.simul.engine import SimulationError

__all__ = ["HiveTable", "HiveMetastore"]


@dataclass(slots=True)
class HiveTable:
    """One managed table: schema metadata plus its HDFS backing file."""

    database: str
    name: str
    #: (column, type) pairs.
    schema: Tuple[Tuple[str, str], ...]
    file: HdfsFile

    @property
    def qualified_name(self) -> str:
        return f"{self.database}.{self.name}"

    @property
    def size_bytes(self) -> float:
        return self.file.size_bytes


class HiveMetastore:
    """In-memory metastore (the paper's Hive service, minus Thrift)."""

    def __init__(self) -> None:
        self._databases: Dict[str, Dict[str, HiveTable]] = {}

    def create_database(self, name: str) -> None:
        if name in self._databases:
            raise SimulationError(f"database already exists: {name!r}")
        self._databases[name] = {}

    def database_exists(self, name: str) -> bool:
        return name in self._databases

    def register_table(self, table: HiveTable) -> None:
        try:
            tables = self._databases[table.database]
        except KeyError:
            raise SimulationError(f"no such database: {table.database!r}") from None
        if table.name in tables:
            raise SimulationError(f"table already exists: {table.qualified_name}")
        tables[table.name] = table

    def table(self, database: str, name: str) -> HiveTable:
        try:
            return self._databases[database][name]
        except KeyError:
            raise SimulationError(f"no such table: {database}.{name}") from None

    def tables(self, database: str) -> List[HiveTable]:
        try:
            return list(self._databases[database].values())
        except KeyError:
            raise SimulationError(f"no such database: {database!r}") from None

    def total_bytes(self, database: str) -> float:
        return sum(t.size_bytes for t in self.tables(database))
