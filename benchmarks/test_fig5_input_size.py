"""Figure 5: scheduling delay vs input data size.

Shape claims: absolute total delay *grows* with input size (the paper's
200 GB p95 is ~4x the 20 MB p95, from IO self-interference), while the
*normalized* delay shrinks (tiny 20 MB jobs spend most of their runtime
on scheduling).
"""

from repro.experiments.fig5 import run_fig5


def test_fig5_input_size_sweep(benchmark, scale, seed, record_rows):
    result = benchmark.pedantic(run_fig5, args=(scale, seed), rounds=1, iterations=1)
    record_rows("fig5", result.rows())

    labels = list(result.series)
    smallest, largest = labels[0], labels[-1]

    # Absolute delay grows with input size.
    assert result.ratio_p95_largest_vs_smallest() > 1.5

    # Normalized delay shrinks: tiny jobs are scheduling-dominated.
    norm_small = result.series[smallest]["normalized"]
    norm_large = result.series[largest]["normalized"]
    assert norm_small.mean() > 0.5  # paper: >65% for 20 MB
    assert norm_large.mean() < norm_small.mean() / 2

    # Both in and out deteriorate at huge inputs; `in` at least as hard
    # (paper: in x5.7 vs out x1.5).
    in_ratio = result.series[largest]["in"].p95 / result.series[smallest]["in"].p95
    out_ratio = result.series[largest]["out"].p95 / result.series[smallest]["out"].p95
    assert in_ratio > 1.2 and out_ratio > 1.0
