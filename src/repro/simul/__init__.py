"""Discrete-event simulation engine.

A small, dependency-free, generator-based DES kernel in the style of
SimPy, plus the shared-resource models (fair-share bandwidth, CPU
run-queues) that the cluster substrate is built on, and seeded random
distribution helpers for reproducible experiments.
"""

from repro.simul.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.simul.resources import FairShareResource, Resource, Store
from repro.simul.distributions import RandomSource

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FairShareResource",
    "Interrupt",
    "Process",
    "RandomSource",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
