"""Logging state machines for YARN scheduling entities.

Hadoop models every scheduling entity as a state machine and logs every
transition (section III-A) — that is the hook SDchecker exploits.  The
three machines below reproduce the classes, state names, transition
events and message wording of Hadoop 3.0.0-alpha3 closely enough that
SDchecker's regexes (Table I) apply verbatim.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.logsys.store import DaemonLogger
from repro.simul.engine import SimulationError

__all__ = [
    "LoggingStateMachine",
    "RMAppStateMachine",
    "RMContainerStateMachine",
    "NMContainerStateMachine",
]


class LoggingStateMachine:
    """A state machine that logs each transition in Hadoop's wording.

    Subclasses define ``CLS`` (the emitting log4j class name), the
    transition table ``TRANSITIONS`` mapping ``(state, event)`` to the
    next state, and a message template.
    """

    #: log4j class name the transition messages are attributed to.
    CLS: str = ""
    #: (current_state, event) -> next_state
    TRANSITIONS: Dict[Tuple[str, str], str] = {}
    #: initial state
    INITIAL: str = ""
    #: python %-format with keys: entity, old, new, event
    TEMPLATE: str = "%(entity)s State change from %(old)s to %(new)s on event = %(event)s"

    def __init__(self, entity_id: str, logger: DaemonLogger):
        if not self.INITIAL:
            raise SimulationError(f"{type(self).__name__} has no initial state")
        self.entity_id = entity_id
        self.logger = logger
        self.state = self.INITIAL
        #: state name -> time of first entry (simulated seconds).
        self.entered_at: Dict[str, float] = {}

    def handle(self, event: str) -> str:
        """Apply ``event``; log and return the new state."""
        key = (self.state, event)
        try:
            new = self.TRANSITIONS[key]
        except KeyError:
            raise SimulationError(
                f"{type(self).__name__} {self.entity_id}: invalid event "
                f"{event!r} in state {self.state!r}"
            ) from None
        old, self.state = self.state, new
        record = self.logger.info(
            self.CLS,
            self.TEMPLATE % {"entity": self.entity_id, "old": old, "new": new, "event": event},
        )
        self.entered_at.setdefault(new, record.timestamp)
        return new

    def time_in(self, state: str) -> Optional[float]:
        """First entry time of ``state``, if reached."""
        return self.entered_at.get(state)


class RMAppStateMachine(LoggingStateMachine):
    """``RMAppImpl``: the RM's view of one application.

    The paper's reference flow (section III-A)::

        NEW_SAVING -> SUBMITTED -> ACCEPTED -> RUNNING
                   -> FINAL_SAVING -> FINISHED

    where ACCEPTED -> RUNNING fires on ``ATTEMPT_REGISTERED`` — the
    AppMaster's first heartbeat — giving Table I messages 1-3.
    """

    CLS = "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl"
    INITIAL = "NEW"
    TRANSITIONS = {
        ("NEW", "START"): "NEW_SAVING",
        ("NEW_SAVING", "APP_NEW_SAVED"): "SUBMITTED",
        ("SUBMITTED", "APP_ACCEPTED"): "ACCEPTED",
        ("ACCEPTED", "ATTEMPT_REGISTERED"): "RUNNING",
        ("RUNNING", "ATTEMPT_UNREGISTERED"): "FINAL_SAVING",
        ("FINAL_SAVING", "APP_UPDATE_SAVED"): "FINISHED",
    }


class RMContainerStateMachine(LoggingStateMachine):
    """``RMContainerImpl``: the RM's view of one container.

    Table I messages 4 (ALLOCATED) and 5 (ACQUIRED) come from here; the
    interval between them is the *container acquisition delay* bounded
    by the AM-RM heartbeat (Fig 7c).
    """

    CLS = "org.apache.hadoop.yarn.server.resourcemanager.rmcontainer.RMContainerImpl"
    INITIAL = "NEW"
    TEMPLATE = "%(entity)s Container Transitioned from %(old)s to %(new)s"
    TRANSITIONS = {
        ("NEW", "START"): "ALLOCATED",
        ("ALLOCATED", "ACQUIRED"): "ACQUIRED",
        ("ACQUIRED", "LAUNCHED"): "RUNNING",
        ("RUNNING", "FINISHED"): "COMPLETED",
        # Containers the AM never picks up / never launches (the
        # SPARK-21562 over-request bug leaves some here).
        ("ALLOCATED", "RELEASED"): "RELEASED",
        ("ACQUIRED", "RELEASED"): "RELEASED",
        # Forced kills: scheduler preemption or node loss takes the
        # container away from the application (Table I′ extension).
        ("ALLOCATED", "KILL"): "KILLED",
        ("ACQUIRED", "KILL"): "KILLED",
        ("RUNNING", "KILL"): "KILLED",
    }


class NMContainerStateMachine(LoggingStateMachine):
    """``ContainerImpl``: the NodeManager's view of one container.

    Table I messages 6-8: LOCALIZING -> SCHEDULED measures localization
    (Fig 8); SCHEDULED -> RUNNING measures launching (Fig 9) and, for
    opportunistic containers queued at the NM, the queueing delay
    (Fig 7b).  Hadoop 3 renamed LOCALIZED to SCHEDULED to model exactly
    that NM-side queue — which is why the paper reads the queueing delay
    off the same transition.
    """

    CLS = "org.apache.hadoop.yarn.server.nodemanager.containermanager.container.ContainerImpl"
    INITIAL = "NEW"
    TEMPLATE = "Container %(entity)s transitioned from %(old)s to %(new)s"
    TRANSITIONS = {
        ("NEW", "INIT_CONTAINER"): "LOCALIZING",
        ("LOCALIZING", "RESOURCE_LOCALIZED"): "SCHEDULED",
        ("SCHEDULED", "CONTAINER_LAUNCHED"): "RUNNING",
        ("RUNNING", "CONTAINER_EXITED_WITH_SUCCESS"): "EXITED_WITH_SUCCESS",
        ("EXITED_WITH_SUCCESS", "CONTAINER_RESOURCES_CLEANEDUP"): "DONE",
        ("LOCALIZING", "KILL_CONTAINER"): "KILLING",
        ("SCHEDULED", "KILL_CONTAINER"): "KILLING",
        ("RUNNING", "KILL_CONTAINER"): "KILLING",
        ("KILLING", "CONTAINER_RESOURCES_CLEANEDUP"): "DONE",
    }
