"""TPC-H on Spark-SQL.

The paper populates the eight TPC-H tables into HDFS with Hive and runs
query jobs against them (section IV-A).  What matters for scheduling
delay is structural: eight tables are opened during user initialization
(eight RDD + broadcast creations on the critical path — section IV-D),
scan stages read table bytes through HDFS, and per-query compute weight
varies across the 22 templates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.spark.tasks import StageSpec
from repro.spark.workload import SparkWorkload

__all__ = ["TPCH_TABLES", "TPCH_QUERIES", "TPCHDataset", "TPCHQueryWorkload"]

#: Fraction of the scale-factor bytes in each table (dbgen proportions).
TPCH_TABLES: Dict[str, float] = {
    "lineitem": 0.6951,
    "orders": 0.1552,
    "partsupp": 0.1085,
    "part": 0.0218,
    "customer": 0.0220,
    "supplier": 0.0013,
    "nation": 0.00002,
    "region": 0.00001,
}


@dataclass(frozen=True, slots=True)
class QueryTemplate:
    """Cost profile of one TPC-H query template."""

    number: int
    #: Relative compute weight (q1 scan-heavy = 1.0 reference).
    weight: float
    #: Number of stages (joins/aggregations add shuffle stages).
    stages: int
    #: Tables whose bytes the scan stage reads.
    scan_tables: tuple


#: The 22 templates with rough relative costs on Spark-SQL (shape only:
#: join-heavy queries like q9/q21 are the heaviest, selective ones like
#: q6/q14 the lightest).
TPCH_QUERIES: Dict[int, QueryTemplate] = {
    q.number: q
    for q in [
        QueryTemplate(1, 1.00, 2, ("lineitem",)),
        QueryTemplate(2, 0.45, 4, ("part", "supplier", "partsupp")),
        QueryTemplate(3, 0.90, 3, ("customer", "orders", "lineitem")),
        QueryTemplate(4, 0.70, 3, ("orders", "lineitem")),
        QueryTemplate(5, 1.10, 4, ("customer", "orders", "lineitem", "supplier")),
        QueryTemplate(6, 0.35, 2, ("lineitem",)),
        QueryTemplate(7, 1.15, 4, ("supplier", "lineitem", "orders", "customer")),
        QueryTemplate(8, 1.25, 4, ("part", "lineitem", "orders", "customer")),
        QueryTemplate(9, 1.90, 5, ("part", "supplier", "lineitem", "partsupp", "orders")),
        QueryTemplate(10, 0.85, 3, ("customer", "orders", "lineitem")),
        QueryTemplate(11, 0.40, 3, ("partsupp", "supplier")),
        QueryTemplate(12, 0.60, 3, ("orders", "lineitem")),
        QueryTemplate(13, 0.75, 3, ("customer", "orders")),
        QueryTemplate(14, 0.40, 2, ("lineitem", "part")),
        QueryTemplate(15, 0.55, 3, ("lineitem", "supplier")),
        QueryTemplate(16, 0.45, 3, ("partsupp", "part", "supplier")),
        QueryTemplate(17, 1.30, 3, ("lineitem", "part")),
        QueryTemplate(18, 1.50, 4, ("customer", "orders", "lineitem")),
        QueryTemplate(19, 0.65, 2, ("lineitem", "part")),
        QueryTemplate(20, 0.95, 4, ("supplier", "nation", "partsupp", "lineitem")),
        QueryTemplate(21, 1.80, 5, ("supplier", "lineitem", "orders", "nation")),
        QueryTemplate(22, 0.50, 3, ("customer", "orders")),
    ]
}


class TPCHDataset:
    """One Hive-populated TPC-H database in HDFS, shared by all queries."""

    def __init__(self, total_bytes: float, name: Optional[str] = None):
        if total_bytes <= 0:
            raise ValueError("dataset size must be positive")
        self.total_bytes = float(total_bytes)
        # Auto-naming is deferred to prepare(): the sequence counter
        # lives on the testbed, not the module, so constructing
        # datasets inside pool workers cannot diverge process state.
        self.name = name
        self.tables: Dict[str, object] = {}

    def prepare(self, services) -> None:
        """Register the eight table files (idempotent)."""
        if self.tables:
            return
        if self.name is None:
            seq = getattr(services, "_tpch_dataset_seq", 0) + 1
            services._tpch_dataset_seq = seq
            self.name = f"tpch{seq}"
        for table, fraction in TPCH_TABLES.items():
            self.tables[table] = services.hdfs.register_file(
                f"/user/hive/warehouse/{self.name}.db/{table}",
                max(1.0, self.total_bytes * fraction),
            )

    def table(self, name: str):
        return self.tables[name]


class TPCHQueryWorkload(SparkWorkload):
    """One TPC-H query job against a shared dataset."""

    is_sql = True

    def __init__(
        self,
        dataset: TPCHDataset,
        query: int = 1,
        opened_files_multiplier: int = 1,
    ):
        if query not in TPCH_QUERIES:
            raise ValueError(f"unknown TPC-H query q{query}")
        if opened_files_multiplier < 1:
            raise ValueError("opened_files_multiplier must be >= 1")
        self.dataset = dataset
        self.template = TPCH_QUERIES[query]
        #: Fig 11b sweep: x2 doubles the files opened during user init.
        self.opened_files_multiplier = opened_files_multiplier

    def prepare(self, services) -> None:
        self.dataset.prepare(services)

    @property
    def input_files(self) -> List:
        """All eight tables (TPC-H-on-Spark initializes every table)."""
        base = [self.dataset.tables[t] for t in TPCH_TABLES]
        return base * self.opened_files_multiplier

    def build_stages(self, services, app) -> List[StageSpec]:
        params = services.params
        block = params.hdfs_block_bytes
        scan_bytes = sum(
            self.dataset.table(t).size_bytes for t in self.template.scan_tables
        )
        # Spark splits small tables per file, so scans never collapse to
        # a single task even for a tiny dataset.
        n_scan = max(params.min_scan_tasks, math.ceil(scan_bytes / block))
        per_task = scan_bytes / n_scan
        cpu_per_task = (per_task / params.task_scan_rate) * self.template.weight
        # The scan stage reads the dominant table through HDFS.
        biggest = max(
            self.template.scan_tables, key=lambda t: self.dataset.table(t).size_bytes
        )
        stages = [
            StageSpec(
                name=f"q{self.template.number}-scan",
                n_tasks=n_scan,
                cpu_seconds_per_task=cpu_per_task,
                bytes_per_task=per_task,
                input_file=self.dataset.table(biggest),
            )
        ]
        # Shuffle stages use spark.sql.shuffle.partitions tasks, which
        # spreads work over every executor (and is why, outside the
        # SPARK-21562 bug, every healthy container logs a task line).
        for s in range(1, self.template.stages):
            stages.append(
                StageSpec(
                    name=f"q{self.template.number}-shuffle{s}",
                    n_tasks=params.sql_shuffle_partitions,
                    cpu_seconds_per_task=params.shuffle_task_cpu_s
                    * self.template.weight,
                )
            )
        return stages
