"""Figure 7: centralized vs distributed scheduling.

* (a) aggregated container allocation delay (messages 11 -> 12): the
  distributed scheduler is ~80x faster at the median; p95 de = 108 ms
  vs ce = 3709 ms.
* (b) NM queueing delay in a highly loaded cluster: tasks placed by the
  distributed scheduler's random sampling queue behind running work for
  up to ~53 s; the centralized scheduler (which only allocates on free
  capacity) queues ~100 ms.
* (c) container acquisition delay vs cluster load: capped at 1 s — the
  MapReduce AM-RM heartbeat interval — with high variance, across all
  load levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Tuple

from repro.core.checker import SDChecker
from repro.core.stats import DelaySample
from repro.experiments.common import resolve_scale
from repro.experiments.harness import TraceScenario
from repro.mapreduce.application import MapReduceApplication
from repro.params import SimulationParams
from repro.simul.engine import Event
from repro.testbed import Testbed
from repro.yarn.app import ContainerContext

__all__ = [
    "Fig7Result",
    "run_fig7",
    "run_fig7a",
    "run_fig7b",
    "run_fig7c",
    "run_mr_load",
    "FIG7C_LOADS",
]

#: Cluster load levels of Fig 7c / Table II.
FIG7C_LOADS = (0.1, 0.4, 0.7, 1.0)


# ---------------------------------------------------------------------------
# (a) allocation delay: Capacity Scheduler vs distributed scheduler
# ---------------------------------------------------------------------------
def run_fig7a(
    scale: str = "small", seed: int = 0
) -> Dict[str, DelaySample]:
    """{'ce': ..., 'de': ...} aggregated allocation-delay samples."""
    n_queries = resolve_scale(scale, small=80, paper=200)
    base = TraceScenario(n_queries=n_queries, seed=seed)
    ce = base.run().report.sample("allocation_delay")
    de = base.variant(opportunistic=True).run().report.sample("allocation_delay")
    return {"ce": ce, "de": de}


# ---------------------------------------------------------------------------
# (b) queueing delay in a highly loaded cluster
# ---------------------------------------------------------------------------
def _holding_map_body(duration_median: float):
    """A map task that mostly just occupies its container."""

    def body(
        app: MapReduceApplication, ctx: ContainerContext, index: int
    ) -> Generator[Event, Any, None]:
        rng = ctx.services.rng.child(f"hold.{ctx.container_id}")
        duration = rng.lognormal_median(duration_median, 0.15)
        yield ctx.node.cpu.submit(duration * 0.1, demand=1.0)
        yield ctx.sim.timeout(duration * 0.9)

    return body


def _submit_memory_load(
    bed: Testbed, hold_fraction: float, duration_median: float
) -> None:
    """One MR job whose maps pin ``hold_fraction`` of cluster memory."""
    capacity = bed.cluster.total_memory_mb() // bed.params.map_container_memory_mb
    num_maps = max(1, int(capacity * hold_fraction))
    bed.submit(
        MapReduceApplication(
            "memory-load",
            num_maps=num_maps,
            map_body=_holding_map_body(duration_median),
        )
    )


def run_fig7b(scale: str = "small", seed: int = 0) -> Dict[str, DelaySample]:
    """{'ce': ..., 'de': ...} NM queueing-delay samples under load.

    The queueing delay is read off the SCHEDULED -> RUNNING transition
    (the Hadoop-3 queued state) with the unloaded launch median
    subtracted, isolating the waiting component.
    """
    n_queries = resolve_scale(scale, small=12, paper=40)
    hold = 0.98
    duration = 55.0

    def interference(bed: Testbed) -> None:
        _submit_memory_load(bed, hold, duration)

    samples: Dict[str, DelaySample] = {}
    # Unloaded reference: the intrinsic launch time to subtract.
    reference = (
        TraceScenario(n_queries=10, seed=seed + 1)
        .run()
        .report.container_sample("launching")
        .p50
    )
    for key, opportunistic in (("ce", False), ("de", True)):
        scenario = TraceScenario(
            n_queries=n_queries,
            seed=seed,
            opportunistic=opportunistic,
            interference=interference,
            warmup_s=25.0,
            mean_interarrival_s=4.0,
        )
        launching = scenario.run().report.container_sample("launching")
        samples[key] = DelaySample(
            [max(0.0, v - reference) for v in launching.values],
            name=f"queueing({key})",
        )
    return samples


# ---------------------------------------------------------------------------
# (c) acquisition delay vs cluster load  (+ Table II's load generator)
# ---------------------------------------------------------------------------
def run_mr_load(
    load_fraction: float, seed: int = 0, duration_median: float = 12.0
) -> Tuple[Any, Testbed]:
    """Run one MR wordcount sized to occupy ``load_fraction`` of memory.

    Returns (AnalysisReport, testbed) — the testbed exposes the RM's
    allocation timestamps for the Table II throughput computation.
    """
    bed = Testbed(seed=seed)
    capacity = bed.cluster.total_memory_mb() // bed.params.map_container_memory_mb
    num_maps = max(1, int(capacity * load_fraction))
    bed.submit(
        MapReduceApplication(
            f"wordcount-load-{int(load_fraction * 100)}",
            num_maps=num_maps,
            map_body=_holding_map_body(duration_median),
        )
    )
    bed.run_until_all_finished(limit=50_000)
    report = SDChecker().analyze(bed.log_store)
    return report, bed


def run_fig7c(scale: str = "small", seed: int = 0) -> Dict[float, DelaySample]:
    """load fraction -> acquisition-delay sample."""
    loads = FIG7C_LOADS if scale == "paper" else FIG7C_LOADS[:3] + (1.0,)
    out: Dict[float, DelaySample] = {}
    for load in loads:
        report, _bed = run_mr_load(load, seed=seed)
        out[load] = report.container_sample("acquisition")
    return out


@dataclass
class Fig7Result:
    allocation: Dict[str, DelaySample]
    queueing: Dict[str, DelaySample]
    acquisition: Dict[float, DelaySample]

    def rows(self) -> List[str]:
        ce, de = self.allocation["ce"], self.allocation["de"]
        lines = ["Figure 7 — centralized (ce) vs distributed (de) scheduling"]
        lines.append(
            f"(a) allocation delay: ce med={ce.p50 * 1000:7.0f}ms p95={ce.p95 * 1000:7.0f}ms | "
            f"de med={de.p50 * 1000:6.1f}ms p95={de.p95 * 1000:6.1f}ms | "
            f"speedup med={ce.p50 / de.p50:5.1f}x"
        )
        qce, qde = self.queueing["ce"], self.queueing["de"]
        lines.append(
            f"(b) queueing delay under load: ce med={qce.p50:6.2f}s p95={qce.p95:6.2f}s | "
            f"de med={qde.p50:6.2f}s p95={qde.p95:6.2f}s max={qde.max():6.2f}s"
        )
        lines.append("(c) acquisition delay vs cluster load (heartbeat-capped):")
        for load, sample in sorted(self.acquisition.items()):
            lines.append(
                f"    load={load:4.0%}: med={sample.p50:5.3f}s p95={sample.p95:5.3f}s "
                f"max={sample.max():5.3f}s std={sample.std():5.3f}s"
            )
        return lines


def run_fig7(scale: str = "small", seed: int = 0) -> Fig7Result:
    return Fig7Result(
        allocation=run_fig7a(scale, seed),
        queueing=run_fig7b(scale, seed),
        acquisition=run_fig7c(scale, seed),
    )
