"""Figure 8: impact of the localized file size on the localization delay.

Paper sweep via ``spark-submit --files``: the default ~500 MB package
localizes in ~500 ms; an 8 GB upload takes ~23 s, severely inflating
the total scheduling delay.  Sub-second entries persist at 8 GB — those
are the *driver* localizations, which only fetch the default package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.stats import DelaySample
from repro.experiments.common import resolve_scale
from repro.experiments.harness import TraceScenario
from repro.params import GB

__all__ = ["Fig8Result", "run_fig8", "FIG8_EXTRA_SIZES"]

#: Extra "--files" payload sweep (0 = the default package only).
FIG8_EXTRA_SIZES = (0.0, 1 * GB, 2 * GB, 4 * GB, 8 * GB)


def _label(size: float) -> str:
    return "default" if size == 0 else f"+{size / GB:.0f}GB"


@dataclass
class Fig8Result:
    #: label -> {"localization", "driver_localization", "total"}.
    series: Dict[str, Dict[str, DelaySample]]

    def executor_localization(self, label: str) -> DelaySample:
        return self.series[label]["localization"]

    def rows(self) -> List[str]:
        lines = ["Figure 8 — localization delay vs localized file size"]
        for label, metrics in self.series.items():
            loc = metrics["localization"]
            drv = metrics["driver_localization"]
            lines.append(
                f"  {label:>8s}: executor-loc med={loc.p50:6.2f}s p95={loc.p95:6.2f}s | "
                f"driver-loc med={drv.p50:5.2f}s | total p95={metrics['total'].p95:6.2f}s"
            )
        lines.append(
            "  (sub-second rows at large sizes are driver localizations — "
            "the bimodality the paper calls out)"
        )
        return lines


def run_fig8(scale: str = "small", seed: int = 0) -> Fig8Result:
    n_queries = resolve_scale(scale, small=15, paper=40)
    series: Dict[str, Dict[str, DelaySample]] = {}
    for size in FIG8_EXTRA_SIZES:
        scenario = TraceScenario(
            n_queries=n_queries,
            seed=seed,
            extra_localized_bytes=size,
            # Per-component study: spaced submissions so one job's
            # localization is measured, not a pile-up.
            mean_interarrival_s=45.0,
        )
        report = scenario.run().report
        driver_loc = DelaySample(
            [
                c.localization_delay
                for app in report.apps
                for c in app.containers
                if c.is_application_master
            ],
            name="driver-localization",
        )
        series[_label(size)] = {
            "localization": report.container_sample("localization"),
            "driver_localization": driver_loc,
            "total": report.sample("total_delay"),
        }
    return Fig8Result(series=series)
