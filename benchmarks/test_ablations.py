"""Ablations: remove one mechanism, watch the paper result break.

These benches document *why* the simulator reproduces the paper —
each headline effect is carried by an explicit mechanism, not by tuned
noise.
"""

from repro.experiments.ablations import run_ablation_study


def test_mechanism_ablations(benchmark, scale, seed, record_rows):
    result = benchmark.pedantic(
        run_ablation_study, args=(scale, seed), rounds=1, iterations=1
    )
    record_rows("ablations", result.rows())

    # Fig 12's localization collapse is carried by write-pressure cache
    # eviction: without it, dfsIO costs bandwidth sharing only.
    assert result.eviction["with_eviction"] > 2.5
    assert (
        result.eviction["no_eviction"] < 0.55 * result.eviction["with_eviction"]
    )

    # The executor delay of wide fleets is carried by the 80% gate.
    assert (
        result.gate["gate_off"].p50 < result.gate["gate_80"].p50
    )

    # The NM localized-resource cache prevents the localization storm.
    assert (
        result.localization_cache["cache_off"]
        > 1.5 * result.localization_cache["cache_on"]
    )
