#!/usr/bin/env python
"""Centralized vs distributed scheduling — and the SPARK-21562 bug.

Replays a short TPC-H query trace twice: once on the Capacity Scheduler
(centralized, guaranteed containers) and once on the Hadoop-3
distributed scheduler (opportunistic containers).  Compares the
aggregated container-allocation delays (the paper's Fig 7a) and runs
SDchecker's bug detector, which flags the containers Spark
over-requests in opportunistic mode but never uses (section V-A).

Usage::

    python examples/scheduler_comparison.py [--queries N] [--seed N]
"""

import argparse

from repro.experiments.harness import TraceScenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=40)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    base = TraceScenario(n_queries=args.queries, seed=args.seed)

    print(f"Replaying {args.queries} TPC-H queries per scheduler...\n")
    results = {}
    for label, opportunistic in (("centralized", False), ("distributed", True)):
        report = base.variant(opportunistic=opportunistic).run().report
        results[label] = report
        alloc = report.sample("allocation_delay")
        total = report.sample("total_delay")
        print(
            f"{label:12s}: allocation med={alloc.p50 * 1000:7.1f}ms "
            f"p95={alloc.p95 * 1000:7.1f}ms | total p95={total.p95:5.1f}s | "
            f"bug findings: {len(report.bug_findings)}"
        )

    ce = results["centralized"].sample("allocation_delay")
    de = results["distributed"].sample("allocation_delay")
    print(f"\nDistributed scheduler is {ce.p50 / de.p50:.0f}x faster at the median")
    print("(the paper measured ~80x on its testbed, p95 108ms vs 3709ms)")

    findings = results["distributed"].bug_findings
    print(
        f"\nSPARK-21562 check: {len(findings)} allocated-but-unused container(s) "
        f"in opportunistic mode:"
    )
    for finding in findings[:6]:
        print(f"  {finding.app_id}: {finding.describe()}")
    if len(findings) > 6:
        print(f"  ... and {len(findings) - 6} more")
    print(
        "\nThese containers log RM-side states only (ALLOCATED/ACQUIRED/"
        "RELEASED) — exactly the incomplete workflows that led the paper's "
        "authors to report the bug."
    )


if __name__ == "__main__":
    main()
