"""Byte-oriented fast-path tests: chunk partitioning, two-phase
scanning, and byte-identity against the legacy record-stream miner.

The contract under test is exactness: for any directory corpus —
including garbled bytes, drifted timestamps, duplicates, rotation
segments, and adversarial chunk boundaries — ``LogMiner(fast=True)``
must produce the same events *and the same diagnostics ledger* as
``LogMiner(fast=False)``, serially and at any job count, for any chunk
size.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import EventKind, SchedulingEvent
from repro.core.parser import (
    AUTO_JOBS,
    AUTO_SERIAL_THRESHOLD_LINES,
    JOBS_ENV_VAR,
    LogMiner,
    _gate_kind,
    resolve_jobs,
)
from repro.logsys.diagnostics import StreamDiagnostics
from repro.logsys.record import LogRecord
from repro.logsys.store import LogStore, iter_file_lines, partition_file, read_chunk

RM = "hadoop-resourcemanager"
NM = "hadoop-nodemanager-node01"
EXEC = "container_1515715200000_0001_01_000002"

#: A tiny-chunk miner: every file is split into ~48-byte chunks, so a
#: handful of log lines already exercises lines straddling partition
#: points, chunks with no parsed record, and multi-chunk merges.
TINY = dict(split_threshold=64, chunk_target=48)


def _diag_dict(diagnostics):
    return json.dumps(
        {d: s.to_dict() for d, s in diagnostics.streams.items()}, sort_keys=True
    )


def _assert_identical(directory):
    """Fast path == legacy, at jobs 1 and 4, whole-file and tiny chunks."""
    legacy_events, legacy_diag = LogMiner(fast=False).mine_with_diagnostics(directory)
    configs = (
        (LogMiner(fast=True), 1),
        (LogMiner(fast=True), 4),
        (LogMiner(fast=True, **TINY), 1),
        (LogMiner(fast=True, **TINY), 4),
    )
    for miner, jobs in configs:
        if jobs == 1:
            events, diag = miner.mine_with_diagnostics(directory)
        else:
            events, diag = miner.mine_parallel_with_diagnostics(directory, jobs=jobs)
        assert events == legacy_events, f"events differ (jobs={jobs})"
        assert _diag_dict(diag) == _diag_dict(legacy_diag), f"diag differ (jobs={jobs})"
    return legacy_events


def _write(tmp_path, name, lines, newline=True):
    body = "\n".join(lines) + ("\n" if newline and lines else "")
    (tmp_path / name).write_text(body, encoding="utf-8")


class TestChunkReader:
    """partition_file + read_chunk reconstruct every file exactly."""

    def test_small_file_is_one_chunk(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_bytes(b"a\nb\n")
        assert partition_file(path) == [(0, 4)]

    def test_partition_covers_file_contiguously(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_bytes(b"x" * 1000)
        ranges = partition_file(path, threshold=100, target=64)
        assert ranges[0][0] == 0 and ranges[-1][1] == 1000
        for (_, a_end), (b_start, _) in zip(ranges, ranges[1:]):
            assert a_end == b_start

    def test_chunks_reassemble_lines_exactly_once(self, tmp_path):
        lines = [f"2018-01-12 00:00:{i:02d},000 INFO C: line {i}" for i in range(40)]
        lines.insert(7, "noise without timestamp")
        lines.insert(20, "")  # empty line
        path = tmp_path / "d.log"
        _write(tmp_path, "d.log", lines)
        for target in (16, 48, 130, 4096):
            ranges = partition_file(path, threshold=1, target=target)
            buf = b"".join(read_chunk(path, s, e) for s, e in ranges)
            assert buf == path.read_bytes()
            # Every line is owned by exactly one range.
            owned = [
                ln
                for s, e in ranges
                for ln in read_chunk(path, s, e).split(b"\n")[:-1]
            ]
            assert owned == [ln.encode() for ln in lines]

    def test_unterminated_tail_line_is_kept(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_bytes(b"first line\nsecond without newline")
        ranges = partition_file(path, threshold=4, target=8)
        buf = b"".join(read_chunk(path, s, e) for s, e in ranges)
        assert buf == path.read_bytes()

    def test_byte_lines_match_text_reader(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_bytes(b"a\nbb\n\nccc\nd")
        text_lines = list(iter_file_lines(path))
        size = path.stat().st_size
        buf = read_chunk(path, 0, size)
        byte_lines = buf.split(b"\n")
        if byte_lines and byte_lines[-1] == b"":
            byte_lines.pop()
        assert [b.decode() for b in byte_lines] == text_lines


class TestFastPathIdentity:
    def test_clean_multi_stream_corpus(self, tmp_path):
        app = "application_1515715200000_0001"
        _write(
            tmp_path,
            f"{RM}.log",
            [
                f"2018-01-12 00:00:01,000 INFO x.RMAppImpl: {app} State change from NEW to SUBMITTED on event = START",
                f"2018-01-12 00:00:02,000 INFO x.RMContainerImpl: {EXEC} Container Transitioned from NEW to ALLOCATED",
                "2018-01-12 00:00:02,500 INFO x.Other: chatter line",
            ],
        )
        _write(
            tmp_path,
            f"{NM}.log",
            [
                f"2018-01-12 00:00:03,000 INFO x.ContainerImpl: Container {EXEC} transitioned from NEW to LOCALIZING",
            ],
        )
        _write(
            tmp_path,
            f"{EXEC}.log",
            [
                "2018-01-12 00:00:04,000 INFO org.apache.spark.executor.CoarseGrainedExecutorBackend: Started daemon",
                "2018-01-12 00:00:05,000 INFO org.apache.spark.executor.Executor: Got assigned task 1",
                "2018-01-12 00:00:06,000 INFO org.apache.spark.executor.Executor: Got assigned task 2",
            ],
        )
        events = _assert_identical(tmp_path)
        kinds = [e.kind for e in events]
        assert EventKind.INSTANCE_FIRST_LOG in kinds
        assert kinds.count(EventKind.FIRST_TASK) == 1  # first occurrence only

    def test_line_spanning_partition_point(self, tmp_path):
        # One long line crosses several 48-byte chunk boundaries; the
        # ownership protocol must mine it exactly once.
        long_msg = "Got assigned task 7" + " pad" * 40
        _write(
            tmp_path,
            f"{EXEC}.log",
            [
                f"2018-01-12 00:00:01,000 INFO x.Exec: {long_msg}",
                "2018-01-12 00:00:02,000 INFO x.Exec: Got assigned task 8",
            ],
        )
        _assert_identical(tmp_path)

    def test_rotation_segment_smaller_than_one_chunk(self, tmp_path):
        # Rotated stream: the old segment is far below the split
        # threshold while the live file is split — both orderings of
        # segment size vs chunk size must merge chronologically.
        _write(
            tmp_path,
            f"{EXEC}.log.1",
            ["2018-01-12 00:00:01,000 INFO x.Exec: Got assigned task 1"],
        )
        _write(
            tmp_path,
            f"{EXEC}.log",
            [
                f"2018-01-12 00:00:0{i},000 INFO x.Exec: chatter number {i}"
                for i in range(2, 9)
            ],
        )
        events = _assert_identical(tmp_path)
        first_log = [e for e in events if e.kind is EventKind.INSTANCE_FIRST_LOG]
        assert first_log[0].timestamp == 1.0  # from the rotated segment

    def test_first_log_when_first_chunk_is_all_noise(self, tmp_path):
        # The stream's first *parsed* record sits in a later chunk; the
        # merge must still synthesize FIRST_LOG from it.
        _write(
            tmp_path,
            f"{EXEC}.log",
            [
                "garbled noise line one with no timestamp at all........",
                "garbled noise line two with no timestamp at all........",
                "2018-01-12 00:00:05,000 INFO x.Exec: real first record",
            ],
        )
        events = _assert_identical(tmp_path)
        assert events[0].kind is EventKind.INSTANCE_FIRST_LOG
        assert events[0].timestamp == 5.0

    def test_duplicates_and_reorder_across_boundaries(self, tmp_path):
        line = "2018-01-12 00:00:05,000 INFO x.Exec: repeated message padpad"
        early = "2018-01-12 00:00:01,000 INFO x.Exec: backwards jump padpad"
        _write(tmp_path, f"{EXEC}.log", [line, line, line, early, line, line])
        legacy_events, legacy_diag = LogMiner(fast=False).mine_with_diagnostics(
            tmp_path
        )
        stream = legacy_diag.streams[EXEC]
        assert stream.duplicate_records == 3 and stream.out_of_order == 1
        _assert_identical(tmp_path)

    def test_duplicate_straddling_rotation_segments(self, tmp_path):
        line = "2018-01-12 00:00:05,000 INFO x.Exec: spans the rotation"
        _write(tmp_path, f"{EXEC}.log.1", [line])
        _write(tmp_path, f"{EXEC}.log", [line])
        _, diag = LogMiner(fast=True).mine_with_diagnostics(tmp_path)
        assert diag.streams[EXEC].duplicate_records == 1
        _assert_identical(tmp_path)

    def test_garbled_drifted_and_invalid_utf8(self, tmp_path):
        (tmp_path / f"{RM}.log").write_bytes(
            b"2018-01-12 00:00:01,000 INFO x.RMAppImpl: application_1_1000 State change from NEW to SUBMITTED on event = START\n"
            b"2018-02-12 00:00:02,000 INFO x.Cls: drifted month\n"
            b"not a log line at all\n"
            b"2018-01-12 00:00:03,000 INFO x.Cls: bad \xff bytes\n"
            b"2018-01-12 25:00:00,000 INFO x.Cls: hour alias of next day 01:00\n"
        )
        _assert_identical(tmp_path)

    def test_empty_and_noise_only_files(self, tmp_path):
        (tmp_path / f"{EXEC}.log").write_bytes(b"")
        _write(tmp_path, f"{RM}.log", ["pure noise", "more noise"])
        _write(tmp_path, "unknown-daemon.log", ["2018-01-12 00:00:01,000 INFO C: x"])
        events = _assert_identical(tmp_path)
        assert events == []
        _, diag = LogMiner(fast=True).mine_with_diagnostics(tmp_path)
        assert not diag.streams["unknown-daemon"].recognized
        assert diag.streams[EXEC].lines_total == 0

    LINE_POOL = (
        "2018-01-12 00:00:01,000 INFO x.RMAppImpl: application_1_1000 State change from NEW to SUBMITTED on event = START",
        "2018-01-12 00:00:02,000 INFO x.Exec: Got assigned task 3",
        "2018-01-12 00:00:02,000 INFO x.Exec: Got assigned task 3",  # dup fodder
        "2018-01-12 00:00:01,500 INFO x.Exec: chatter",
        "2018-02-01 00:00:00,000 INFO x.Cls: drifted",
        "2018-01-12 25:00:00,000 INFO x.Cls: hour alias",
        "stack trace noise",
        "",
        "2018-01-12 00:00:03,000 INFO x.Cls: café ünïcode",
        "2018-01-12 00:00:0٣,000 INFO x.Cls: unicode digit",
    )

    @settings(max_examples=60, deadline=None)
    @given(
        picks=st.lists(st.integers(0, len(LINE_POOL) - 1), max_size=25),
        daemon=st.sampled_from([RM, NM, EXEC, "weird-daemon"]),
        terminated=st.booleans(),
    )
    def test_metamorphic_identity_on_line_soup(
        self, tmp_path_factory, picks, daemon, terminated
    ):
        tmp_path = tmp_path_factory.mktemp("soup")
        lines = [self.LINE_POOL[i] for i in picks]
        _write(tmp_path, f"{daemon}.log", lines, newline=terminated)
        _assert_identical(tmp_path)


class TestFirstEventIndexEquivalence:
    """Traces built from fast-path events index identically to legacy."""

    def test_first_event_index_fast_vs_legacy(self, tmp_path):
        from repro.core.grouping import group_events

        app = "application_1515715200000_0001"
        _write(
            tmp_path,
            f"{RM}.log",
            [
                f"2018-01-12 00:00:01,000 INFO x.RMAppImpl: {app} State change from NEW to SUBMITTED on event = START",
                f"2018-01-12 00:00:02,000 INFO x.RMAppImpl: {app} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED",
                f"2018-01-12 00:00:03,000 INFO x.RMContainerImpl: {EXEC} Container Transitioned from NEW to ALLOCATED",
            ],
        )
        _write(
            tmp_path,
            f"{EXEC}.log",
            [
                "2018-01-12 00:00:04,000 INFO x.Exec: started",
                "2018-01-12 00:00:05,000 INFO x.Exec: Got assigned task 0",
            ],
        )
        fast_traces = group_events(LogMiner(fast=True, **TINY).mine(tmp_path))
        legacy_traces = group_events(LogMiner(fast=False).mine(tmp_path))
        assert fast_traces.keys() == legacy_traces.keys()
        for app_id in fast_traces:
            fast_trace, legacy_trace = fast_traces[app_id], legacy_traces[app_id]
            for kind in EventKind:
                assert fast_trace.first(kind) == legacy_trace.first(kind)


class TestGateKind:
    """Phase-1 gating must mirror the legacy per-daemon dispatch."""

    @pytest.mark.parametrize(
        "daemon,expected",
        [
            (RM, "rm"),
            ("hadoop-resourcemanager-host2", "rm"),
            (NM, "nm"),
            (EXEC, "container"),
            ("container_e17_1515715200000_0001_01_000002", "container"),
            ("weird-daemon", None),
            ("resourcemanager", None),
        ],
    )
    def test_gate_kind(self, daemon, expected):
        assert _gate_kind(daemon) == expected


class TestSlotsAndPickling:
    """Workers ship these across the process boundary: slots must not
    break pickling (frozen dataclasses with slots need no __dict__)."""

    def test_hot_classes_have_slots(self):
        for cls in (LogRecord, SchedulingEvent, StreamDiagnostics):
            assert not hasattr(cls(**_ctor_args(cls)), "__dict__"), cls

    @pytest.mark.parametrize("cls", [LogRecord, SchedulingEvent, StreamDiagnostics])
    def test_pickle_round_trip(self, cls):
        instance = cls(**_ctor_args(cls))
        clone = pickle.loads(pickle.dumps(instance))
        assert clone == instance


def _ctor_args(cls):
    if cls is LogRecord:
        return dict(timestamp=1.5, cls="x.Cls", message="m", level="WARN")
    if cls is SchedulingEvent:
        return dict(
            kind=EventKind.FIRST_TASK,
            timestamp=2.0,
            app_id="application_1_1000",
            container_id="container_1_1000_01_000001",
            daemon="container_1_1000_01_000001",
            source_class="x.Exec",
        )
    return dict(daemon="d", lines_total=3, records_parsed=2, dropped_garbled=1)


class TestResolveJobs:
    def test_explicit_counts_pass_through(self, tmp_path):
        assert resolve_jobs(1, tmp_path) == 1
        assert resolve_jobs(7, tmp_path) == 7

    def test_auto_is_serial_on_one_cpu(self, tmp_path, monkeypatch):
        import repro.core.parser as parser_mod

        monkeypatch.setattr(parser_mod, "available_cpus", lambda: 1)
        big = tmp_path / "big.log"
        big.write_bytes(b"x" * (AUTO_SERIAL_THRESHOLD_LINES * 200))
        assert resolve_jobs(AUTO_JOBS, tmp_path) == 1

    def test_auto_is_serial_below_line_threshold(self, tmp_path, monkeypatch):
        import repro.core.parser as parser_mod

        monkeypatch.setattr(parser_mod, "available_cpus", lambda: 8)
        (tmp_path / "small.log").write_bytes(b"short corpus\n")
        assert resolve_jobs(AUTO_JOBS, tmp_path) == 1
        assert resolve_jobs(AUTO_JOBS, LogStore()) == 1

    def test_auto_parallelizes_large_directories(self, tmp_path, monkeypatch):
        import repro.core.parser as parser_mod

        monkeypatch.setattr(parser_mod, "available_cpus", lambda: 8)
        big = tmp_path / "big.log"
        big.write_bytes(b"x" * (AUTO_SERIAL_THRESHOLD_LINES * 200))
        assert resolve_jobs(AUTO_JOBS, tmp_path) > 1


class TestJobsEnvOverride:
    """REPRO_JOBS tunes auto resolution; explicit counts still win."""

    def _big_corpus(self, tmp_path, monkeypatch):
        import repro.core.parser as parser_mod

        monkeypatch.setattr(parser_mod, "available_cpus", lambda: 8)
        (tmp_path / "big.log").write_bytes(
            b"x" * (AUTO_SERIAL_THRESHOLD_LINES * 200)
        )
        return tmp_path

    def test_env_serial_forces_one_worker(self, tmp_path, monkeypatch):
        corpus = self._big_corpus(tmp_path, monkeypatch)
        monkeypatch.setenv(JOBS_ENV_VAR, "serial")
        assert resolve_jobs(AUTO_JOBS, corpus) == 1

    def test_env_count_is_used(self, tmp_path, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs(AUTO_JOBS, tmp_path) == 5

    def test_env_auto_keeps_the_heuristic(self, tmp_path, monkeypatch):
        corpus = self._big_corpus(tmp_path, monkeypatch)
        monkeypatch.setenv(JOBS_ENV_VAR, "auto")
        assert resolve_jobs(AUTO_JOBS, corpus) > 1

    def test_explicit_count_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "serial")
        assert resolve_jobs(3, tmp_path) == 3

    def test_env_is_case_and_whitespace_tolerant(self, tmp_path, monkeypatch):
        corpus = self._big_corpus(tmp_path, monkeypatch)
        monkeypatch.setenv(JOBS_ENV_VAR, "  SERIAL ")
        assert resolve_jobs(AUTO_JOBS, corpus) == 1

    @pytest.mark.parametrize("bad", ["0", "-2", "many", "1.5", ""])
    def test_invalid_values_raise(self, tmp_path, monkeypatch, bad):
        monkeypatch.setenv(JOBS_ENV_VAR, bad)
        with pytest.raises(ValueError, match=JOBS_ENV_VAR):
            resolve_jobs(AUTO_JOBS, tmp_path)

    def test_unset_env_is_ignored(self, tmp_path, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        (tmp_path / "small.log").write_bytes(b"short corpus\n")
        assert resolve_jobs(AUTO_JOBS, tmp_path) == 1
