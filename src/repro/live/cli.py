"""Command-line interface: ``python -m repro.live {watch,serve,query}``.

* ``watch``  — tail a growing log directory in the foreground, report
  progress as applications arrive, and emit the final (batch-identical)
  analysis once the directory goes quiet.
* ``serve``  — same tailing, plus the JSON-lines query/metrics server.
  With ``--shards N`` the directories are partitioned across N worker
  processes behind a merging router (same wire protocol), and
  ``--metrics-http-port`` adds a ``GET /metrics`` HTTP endpoint
  exposing the aggregated Prometheus text.
* ``query``  — one request against a running server, result to stdout.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import List, Optional

from repro.live.client import LiveClient, QueryError
from repro.live.incremental import LiveSession
from repro.live.server import LiveServer

__all__ = ["main", "build_arg_parser"]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.live",
        description=(
            "Incrementally mine scheduling delay from a growing log "
            "directory, and serve the running decomposition."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    watch = sub.add_parser(
        "watch", help="tail a directory until it goes quiet, then report"
    )
    watch.add_argument("logdir", help="directory of growing <daemon>.log files")
    watch.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="delay between directory polls (default 0.5)",
    )
    watch.add_argument(
        "--idle-polls",
        type=int,
        default=3,
        metavar="N",
        help=(
            "drain after N consecutive polls with no new events and no "
            "tail lag (default 3)"
        ),
    )
    watch.add_argument(
        "--max-polls",
        type=int,
        default=0,
        metavar="N",
        help="hard stop after N polls; 0 means no limit (default)",
    )
    watch.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="persist cursors + mining state to PATH after every poll",
    )
    watch.add_argument(
        "--resume",
        metavar="PATH",
        help="restore a previous session from a checkpoint file",
    )
    watch.add_argument(
        "--checkpoint-every-polls",
        type=int,
        default=8,
        metavar="N",
        help=(
            "write the checkpoint every N polls instead of every poll; "
            "a crash loses at most N-1 polls of cursor progress "
            "(default 8)"
        ),
    )
    watch.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    serve = sub.add_parser(
        "serve", help="tail directories and serve queries over JSON lines"
    )
    serve.add_argument(
        "logdir",
        nargs="+",
        help=(
            "one or more directories of growing <daemon>.log files "
            "(daemon names must be disjoint across directories)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7461)
    serve.add_argument(
        "--poll-interval", type=float, default=0.25, metavar="SECONDS"
    )
    serve.add_argument("--checkpoint", metavar="PATH")
    serve.add_argument("--resume", metavar="PATH")
    serve.add_argument(
        "--checkpoint-every-polls", type=int, default=8, metavar="N"
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "partition the directories across N worker processes behind "
            "a merging router (default 1: a single in-process server)"
        ),
    )
    serve.add_argument(
        "--metrics-http-port",
        type=int,
        metavar="PORT",
        help=(
            "also serve GET /metrics over HTTP with the deployment's "
            "aggregated Prometheus metrics (sharded mode only)"
        ),
    )
    serve.add_argument(
        "--evict-after-polls",
        type=int,
        metavar="N",
        help=(
            "evict an application N polls after it finishes, keeping "
            "resident state bounded (default: keep everything)"
        ),
    )

    query = sub.add_parser("query", help="one request against a running server")
    query.add_argument(
        "op",
        choices=(
            "apps",
            "decomposition",
            "diagnostics",
            "metrics",
            "metrics_state",
            "state",
            "drain",
            "shutdown",
        ),
    )
    query.add_argument(
        "app_id", nargs="?", help="application ID (decomposition only)"
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7461)
    query.add_argument("--timeout", type=float, default=10.0)
    return parser


def _build_session(args: argparse.Namespace) -> LiveSession:
    evict = getattr(args, "evict_after_polls", None)
    every = getattr(args, "checkpoint_every_polls", 1)
    if every < 1:
        raise SystemExit("error: --checkpoint-every-polls must be >= 1")
    if args.resume:
        return LiveSession.from_checkpoint(
            args.resume,
            directory=args.logdir,
            checkpoint_path=args.checkpoint or args.resume,
            evict_after_polls=evict,
            checkpoint_every_polls=every,
        )
    return LiveSession(
        args.logdir,
        checkpoint_path=args.checkpoint,
        evict_after_polls=evict,
        checkpoint_every_polls=every,
    )


def _run_watch(args: argparse.Namespace) -> int:
    session = _build_session(args)
    idle = 0
    polls = 0
    while True:
        new_events = session.poll()
        polls += 1
        if new_events:
            idle = 0
            report = session.report()
            final = sum(
                1 for app in report.apps if session.app_status(app.app_id) == "final"
            )
            print(
                f"poll {polls}: +{new_events} events, "
                f"{len(report.apps)} apps ({final} final), "
                f"lag {session.tail_lag_bytes}B",
                file=sys.stderr,
            )
        elif session.tail_lag_bytes == 0:
            idle += 1
        if idle >= args.idle_polls:
            break
        if args.max_polls and polls >= args.max_polls:
            break
        time.sleep(args.poll_interval)
    report = session.drain()
    if args.json:
        json.dump(report.to_dict(include_diagnostics=True), sys.stdout, indent=2)
        print()
    else:
        print(report.summary())
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1 or args.metrics_http_port is not None:
        return _run_serve_sharded(args)
    session = _build_session(args)

    async def _serve() -> None:
        server = LiveServer(
            session,
            host=args.host,
            port=args.port,
            poll_interval=args.poll_interval,
        )
        await server.start()
        print(
            f"repro.live serving {', '.join(args.logdir)} on "
            f"{args.host}:{server.bound_port}",
            file=sys.stderr,
        )
        await server.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _run_serve_sharded(args: argparse.Namespace) -> int:
    from repro.live.sharded import ShardedLiveService

    if args.checkpoint or args.resume:
        print(
            "error: --checkpoint/--resume are not supported in sharded "
            "mode yet",
            file=sys.stderr,
        )
        return 2
    service = ShardedLiveService(
        args.logdir,
        shards=args.shards,
        host=args.host,
        router_port=args.port,
        http_port=args.metrics_http_port,
        poll_interval=args.poll_interval,
        evict_after_polls=args.evict_after_polls,
    )
    try:
        with service:
            host, port = service.router_address
            print(
                f"repro.live serving {', '.join(args.logdir)} on "
                f"{host}:{port} across {len(service.partitions)} shard(s)",
                file=sys.stderr,
            )
            if service.http_address is not None:
                http_host, http_port = service.http_address
                print(
                    f"aggregated metrics at "
                    f"http://{http_host}:{http_port}/metrics",
                    file=sys.stderr,
                )
            service.wait()
    except KeyboardInterrupt:
        pass
    return 0


def _run_query(args: argparse.Namespace) -> int:
    if args.op == "decomposition" and not args.app_id:
        print("error: decomposition requires an app_id", file=sys.stderr)
        return 2
    try:
        with LiveClient(args.host, args.port, timeout=args.timeout) as client:
            if args.op == "metrics":
                sys.stdout.write(client.metrics())
            elif args.op == "decomposition":
                json.dump(client.decomposition(args.app_id), sys.stdout, indent=2)
                print()
            else:
                call = {
                    "apps": client.apps,
                    "diagnostics": client.diagnostics,
                    "metrics_state": client.metrics_state,
                    "state": client.state,
                    "drain": client.drain,
                    "shutdown": client.shutdown,
                }[args.op]
                json.dump(call(), sys.stdout, indent=2)
                print()
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.command == "watch":
        return _run_watch(args)
    if args.command == "serve":
        return _run_serve(args)
    return _run_query(args)
