"""Log-consistency validation.

SDchecker trusts logs to reflect the schedulers' state machines; this
module checks that trust.  For every entity it verifies that the mined
states appear in a legal order (per the Hadoop state machines of
section III-A) and that timestamps are monotone within an entity —
violations indicate clock skew, log loss, or genuine scheduler bugs,
and are exactly what an operator should look at before believing any
delay numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.events import EventKind
from repro.core.grouping import ApplicationTrace, ContainerTrace

__all__ = ["Violation", "validate_traces", "validate_trace"]

#: Legal orderings, expressed as rank maps: a state may only be
#: preceded by states of strictly lower rank.
_APP_ORDER: Dict[EventKind, int] = {
    EventKind.APP_SUBMITTED: 0,
    EventKind.APP_ACCEPTED: 1,
    EventKind.APP_ATTEMPT_REGISTERED: 2,
    EventKind.APP_FINISHED: 3,
}

_RM_CONTAINER_ORDER: Dict[EventKind, int] = {
    EventKind.CONTAINER_ALLOCATED: 0,
    EventKind.CONTAINER_ACQUIRED: 1,
    EventKind.CONTAINER_RM_RUNNING: 2,
    EventKind.CONTAINER_RM_COMPLETED: 3,
}

_NM_CONTAINER_ORDER: Dict[EventKind, int] = {
    EventKind.CONTAINER_LOCALIZING: 0,
    EventKind.CONTAINER_SCHEDULED: 1,
    EventKind.CONTAINER_NM_RUNNING: 2,
}

#: Cross-daemon causality: (earlier kind, later kind, description).
_CAUSAL_PAIRS: Tuple[Tuple[EventKind, EventKind, str], ...] = (
    (
        EventKind.CONTAINER_ACQUIRED,
        EventKind.CONTAINER_LOCALIZING,
        "container localizing before it was acquired",
    ),
    (
        EventKind.CONTAINER_NM_RUNNING,
        EventKind.FIRST_TASK,
        "task assigned before the container was running",
    ),
)


@dataclass(frozen=True, slots=True)
class Violation:
    """One inconsistency found in the logs."""

    entity: str
    kind: str  # "order" | "monotonicity" | "causality"
    detail: str

    def describe(self) -> str:
        return f"{self.entity} [{self.kind}]: {self.detail}"


def _check_order(
    entity: str,
    events: Iterable,
    order: Dict[EventKind, int],
    out: List[Violation],
) -> None:
    """States must appear in non-decreasing rank and monotone time."""
    last_rank: Optional[int] = None
    last_kind: Optional[EventKind] = None
    seen = set()
    ranked = sorted(
        (e for e in events if e.kind in order), key=lambda e: e.timestamp
    )
    for event in ranked:
        rank = order[event.kind]
        if event.kind in seen:
            out.append(
                Violation(entity, "order", f"duplicate state {event.kind.value}")
            )
            continue
        seen.add(event.kind)
        if last_rank is not None and rank < last_rank:
            out.append(
                Violation(
                    entity,
                    "order",
                    f"{event.kind.value} after {last_kind.value}",
                )
            )
        last_rank, last_kind = rank, event.kind


def _check_causality(trace: ContainerTrace, out: List[Violation]) -> None:
    for earlier, later, description in _CAUSAL_PAIRS:
        t_earlier = trace.time_of(earlier)
        t_later = trace.time_of(later)
        if t_earlier is not None and t_later is not None and t_later < t_earlier:
            out.append(
                Violation(
                    trace.container_id,
                    "causality",
                    f"{description} ({t_later:.3f}s < {t_earlier:.3f}s)",
                )
            )


def validate_trace(trace: ApplicationTrace) -> List[Violation]:
    """All consistency violations for one application."""
    out: List[Violation] = []
    _check_order(trace.app_id, trace.events, _APP_ORDER, out)
    for container in trace.containers.values():
        _check_order(container.container_id, container.events, _RM_CONTAINER_ORDER, out)
        _check_order(container.container_id, container.events, _NM_CONTAINER_ORDER, out)
        _check_causality(container, out)
    return out


def validate_traces(
    traces: Dict[str, ApplicationTrace] | Iterable[ApplicationTrace],
) -> List[Violation]:
    """Validate every application in a grouped log collection."""
    if isinstance(traces, dict):
        traces = traces.values()
    out: List[Violation] = []
    for trace in traces:
        out.extend(validate_trace(trace))
    return out
