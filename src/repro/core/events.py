"""Scheduling events extracted from log lines.

Each :class:`SchedulingEvent` corresponds to one of the identified log
messages of Table I (plus completion events used for job runtime).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["EventKind", "SchedulingEvent"]


class EventKind(enum.Enum):
    """The mined message types (numbers refer to Table I)."""

    # ResourceManager log — RMAppImpl
    APP_SUBMITTED = "APP_SUBMITTED"  # 1
    APP_ACCEPTED = "APP_ACCEPTED"  # 2
    APP_ATTEMPT_REGISTERED = "APP_ATTEMPT_REGISTERED"  # 3
    APP_FINISHED = "APP_FINISHED"  # (job runtime endpoint)
    # ResourceManager log — RMContainerImpl
    CONTAINER_ALLOCATED = "CONTAINER_ALLOCATED"  # 4
    CONTAINER_ACQUIRED = "CONTAINER_ACQUIRED"  # 5
    CONTAINER_RM_RUNNING = "CONTAINER_RM_RUNNING"
    CONTAINER_RM_COMPLETED = "CONTAINER_RM_COMPLETED"
    CONTAINER_RELEASED = "CONTAINER_RELEASED"
    #: RM-side forced kill (scheduler preemption or node loss): capacity
    #: the application had acquired was taken away.  Table I′ extension;
    #: the anchor of the preemption-delay component.
    CONTAINER_PREEMPTED = "CONTAINER_PREEMPTED"
    # NodeManager log — ContainerImpl
    CONTAINER_LOCALIZING = "CONTAINER_LOCALIZING"  # 6
    CONTAINER_SCHEDULED = "CONTAINER_SCHEDULED"  # 7
    CONTAINER_NM_RUNNING = "CONTAINER_NM_RUNNING"  # 8
    #: NM-side kill acknowledgement (ContainerImpl entering KILLING);
    #: corroborates CONTAINER_PREEMPTED from the other daemon's log.
    CONTAINER_NM_KILLED = "CONTAINER_NM_KILLED"
    # Application logs (driver / executor / MR task)
    INSTANCE_FIRST_LOG = "INSTANCE_FIRST_LOG"  # 9 / 13
    DRIVER_REGISTERED = "DRIVER_REGISTERED"  # 10
    START_ALLO = "START_ALLO"  # 11
    END_ALLO = "END_ALLO"  # 12
    FIRST_TASK = "FIRST_TASK"  # 14
    #: MapReduce child's "Task attempt_... is done" — the MR analogue
    #: of message 14, so the bug detector knows the container did work.
    MR_TASK_DONE = "MR_TASK_DONE"


#: EventKind -> Table I message number (None for auxiliary kinds).
TABLE_I_NUMBER = {
    EventKind.APP_SUBMITTED: 1,
    EventKind.APP_ACCEPTED: 2,
    EventKind.APP_ATTEMPT_REGISTERED: 3,
    EventKind.CONTAINER_ALLOCATED: 4,
    EventKind.CONTAINER_ACQUIRED: 5,
    EventKind.CONTAINER_LOCALIZING: 6,
    EventKind.CONTAINER_SCHEDULED: 7,
    EventKind.CONTAINER_NM_RUNNING: 8,
    EventKind.INSTANCE_FIRST_LOG: 9,  # 9 for drivers, 13 for executors
    EventKind.DRIVER_REGISTERED: 10,
    EventKind.START_ALLO: 11,
    EventKind.END_ALLO: 12,
    EventKind.FIRST_TASK: 14,
}


@dataclass(frozen=True, slots=True)
class SchedulingEvent:
    """One mined scheduling-relevant log message."""

    kind: EventKind
    timestamp: float
    #: Global application ID string, when determinable.
    app_id: Optional[str]
    #: Global container ID string, for container-scoped events.
    container_id: Optional[str]
    #: Which log stream the line came from.
    daemon: str
    #: For INSTANCE_FIRST_LOG: the emitting class, used to classify the
    #: instance type (Spark driver vs executor vs MR task).
    source_class: str = ""
    #: For INSTANCE_FIRST_LOG: the message text (refines MR map vs
    #: reduce children via the attempt-ID m/r marker).
    detail: str = ""

    def __post_init__(self) -> None:
        if self.app_id is None and self.container_id is None:
            raise ValueError(f"{self.kind} event bound to no global ID")
