"""Tests for sdlint pass 2: state-machine analysis (SD201-SD204)."""

from pathlib import Path

from repro.analysis import statemachines
from repro.analysis.extract import StateMachineSpec

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"

RMAPP_CLS = "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl"


def make_spec(transitions, initial="NEW", cls=RMAPP_CLS, name="TestMachine"):
    return StateMachineSpec(
        name=name,
        cls=cls,
        initial=initial,
        template="%(entity)s State change from %(old)s to %(new)s on event = %(event)s",
        transitions=transitions,
        path="x.py",
        line=1,
    )


class TestReachability:
    def test_unreachable_state_and_dead_transition(self):
        spec = make_spec(
            {
                ("NEW", "GO"): "A",
                ("A", "BACK"): "NEW",
                ("ORPHAN", "X"): "B",
            }
        )
        findings = statemachines.analyze_machine(spec)
        rules = sorted(f.rule for f in findings)
        # ORPHAN and B unreachable, the ORPHAN->B transition dead, and
        # the NEW<->A cycle has no terminal state.
        assert rules.count("SD201") == 2
        assert rules.count("SD202") == 1
        assert rules.count("SD203") == 1
        text = " ".join(f.message for f in findings)
        assert "ORPHAN" in text and "terminal" in text

    def test_reachable_terminal_machine_is_clean(self):
        spec = make_spec(
            {
                ("NEW", "START"): "SUBMITTED",
                ("SUBMITTED", "APP_ACCEPTED"): "ACCEPTED",
            }
        )
        findings = statemachines.analyze_machine(spec)
        # SUBMITTED/ACCEPTED are catalog states; only NEW->SUBMITTED...
        # everything reachable, ACCEPTED terminal, all states visible.
        assert [f for f in findings if f.rule != "SD204"] == []

    def test_reachable_states_helper(self):
        reachable = statemachines.reachable_states(
            {("A", "x"): "B", ("B", "y"): "C", ("D", "z"): "E"}, "A"
        )
        assert reachable == {"A", "B", "C"}


class TestVisibility:
    def test_unknown_machine_class_flagged_once(self):
        spec = make_spec(
            {("NEW", "GO"): "DONE"},
            cls="org.example.SomeOtherMachine",
            name="Mystery",
        )
        findings = statemachines.analyze_machine(spec)
        sd204 = [f for f in findings if f.rule == "SD204"]
        assert len(sd204) == 1
        assert "no Table I classifier" in sd204[0].message

    def test_invisible_transitions_are_info_severity(self):
        spec = make_spec({("NEW", "START"): "NEW_SAVING"})
        findings = statemachines.analyze_machine(spec)
        sd204 = [f for f in findings if f.rule == "SD204"]
        assert sd204 and all(f.severity == "info" for f in sd204)


class TestPristineTree:
    def test_only_known_invisible_transitions(self):
        findings = statemachines.run(SRC_ROOT)
        assert findings and {f.rule for f in findings} == {"SD204"}
        assert all(f.severity == "info" for f in findings)

    def test_the_five_accepted_invisible_transitions(self):
        # Was six before the Table I′ taxonomy extension: KILLING became
        # a mined catalog state, so the SCHEDULED -> KILLING transition
        # is now SDchecker-visible and no longer flagged.
        messages = sorted(f.message for f in statemachines.run(SRC_ROOT))
        assert len(messages) == 5
        assert sum("NMContainerStateMachine" in m for m in messages) == 3
        assert sum("RMAppStateMachine" in m for m in messages) == 2
