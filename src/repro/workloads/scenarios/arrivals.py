"""Production-shaped arrival processes for scenario packs.

The paper replays google-trace subsets whose salient property is
burstiness (:mod:`repro.workloads.google_trace`).  Production clusters
additionally show *regime structure*: diurnal load cycles and
flash-crowd bursts.  The three samplers here cover that space:

* :func:`poisson_arrivals` — homogeneous Poisson, the memoryless
  baseline every queueing model starts from;
* :func:`mmpp_arrivals` — a Markov-modulated Poisson process
  alternating between calm and burst regimes with exponential dwell
  times (the standard flash-crowd model);
* :func:`diurnal_arrivals` — an inhomogeneous Poisson process with a
  sinusoidal rate profile, sampled by thinning (Lewis & Shedler).

All samplers are keyed by :class:`~repro.simul.distributions.
RandomSource` substreams, so the same seed always yields the same
submission times regardless of what else consumed randomness, and all
are vectorized over numpy — a million submissions sample in well under
a second, which is what lets property tests sweep production-scale
traces without simulating them.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.simul.distributions import RandomSource

__all__ = ["poisson_arrivals", "mmpp_arrivals", "diurnal_arrivals"]


def _finalize(times: np.ndarray, n: int) -> List[float]:
    """First ``n`` arrival times as plain floats, starting at zero."""
    out = times[:n]
    if len(out) != n:
        raise AssertionError(f"sampler produced {len(out)} < {n} arrivals")
    return [float(t) for t in out]


def poisson_arrivals(n: int, rate_per_s: float, rng: RandomSource) -> List[float]:
    """``n`` homogeneous-Poisson submission times at ``rate_per_s``."""
    if n < 1:
        raise ValueError("need at least one arrival")
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    gaps = rng.rng.exponential(scale=1.0 / rate_per_s, size=n)
    gaps[0] = 0.0  # first submission defines t=0
    return _finalize(np.cumsum(gaps), n)


def mmpp_arrivals(
    n: int,
    rates_per_s: Sequence[float],
    mean_dwell_s: float,
    rng: RandomSource,
) -> List[float]:
    """``n`` Markov-modulated Poisson arrivals.

    The process cycles through ``rates_per_s`` regimes (e.g. ``[calm,
    burst]``); each dwell is exponential with mean ``mean_dwell_s``.
    Within a dwell, arrivals are Poisson at that regime's rate —
    vectorized per dwell, so even calm/burst traces of millions of
    submissions generate quickly.
    """
    if n < 1:
        raise ValueError("need at least one arrival")
    if not rates_per_s or any(r <= 0 for r in rates_per_s):
        raise ValueError("rates_per_s must be non-empty and positive")
    if mean_dwell_s <= 0:
        raise ValueError("mean_dwell_s must be positive")
    chunks: List[np.ndarray] = []
    total = 0
    t = 0.0
    state = 0
    while total < n:
        rate = float(rates_per_s[state])
        dwell = float(rng.rng.exponential(scale=mean_dwell_s))
        # Oversample the dwell's expected count, then clip to the dwell
        # window: statistically identical to sequential draws, but one
        # numpy call per regime instead of one per arrival.
        budget = max(16, int(rate * dwell * 1.5) + 8)
        gaps = rng.rng.exponential(scale=1.0 / rate, size=budget)
        offsets = np.cumsum(gaps)
        inside = offsets[offsets < dwell]
        chunks.append(t + inside)
        total += len(inside)
        t += dwell
        state = (state + 1) % len(rates_per_s)
    times = np.concatenate(chunks)
    times -= times[0]  # first submission defines t=0
    return _finalize(times, n)


def diurnal_arrivals(
    n: int,
    base_rate_per_s: float,
    peak_rate_per_s: float,
    period_s: float,
    rng: RandomSource,
) -> List[float]:
    """``n`` inhomogeneous-Poisson arrivals on a sinusoidal day cycle.

    The instantaneous rate swings between ``base_rate_per_s`` (trough)
    and ``peak_rate_per_s`` (peak) over ``period_s``, starting at the
    mean and rising — i.e. submissions open mid-morning.  Sampled by
    thinning: candidates at the peak rate, accepted with probability
    rate(t)/peak, in vectorized batches.
    """
    if n < 1:
        raise ValueError("need at least one arrival")
    if base_rate_per_s <= 0 or peak_rate_per_s < base_rate_per_s:
        raise ValueError("need 0 < base_rate_per_s <= peak_rate_per_s")
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    mid = (peak_rate_per_s + base_rate_per_s) / 2.0
    amp = (peak_rate_per_s - base_rate_per_s) / 2.0
    omega = 2.0 * math.pi / period_s
    accepted: List[np.ndarray] = []
    total = 0
    t = 0.0
    # Enough candidates to cover n at the *mean* acceptance ratio, with
    # headroom; loop only mops up unlucky batches.
    batch = max(64, int(n * peak_rate_per_s / mid) + 32)
    while total < n:
        gaps = rng.rng.exponential(scale=1.0 / peak_rate_per_s, size=batch)
        candidates = t + np.cumsum(gaps)
        u = rng.rng.uniform(size=batch)
        rate = mid + amp * np.sin(omega * candidates)
        keep = candidates[u * peak_rate_per_s < rate]
        accepted.append(keep)
        total += len(keep)
        t = float(candidates[-1])
    times = np.concatenate(accepted)
    times -= times[0]  # first submission defines t=0
    return _finalize(times, n)
