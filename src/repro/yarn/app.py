"""Application-side YARN abstractions.

:class:`YarnApplication` is the base class every simulated framework
(Spark, MapReduce) derives from; it owns the application's identity,
its localization payload, and the AppMaster body.  :class:`AMRMClient`
is the AM's handle to the ResourceManager: registration, heartbeat-based
container requests, and the acquisition semantics whose heartbeat bound
produces Fig 7c.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, TYPE_CHECKING

from repro.hdfs.filesystem import HdfsFile
from repro.logsys.store import DaemonLogger
from repro.simul.engine import Event, Process, SimulationError
from repro.simul.resources import Store
from repro.yarn.ids import ApplicationId, ContainerId
from repro.yarn.records import ContainerGrant, ExecutionType, LaunchSpec, ResourceRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node
    from repro.yarn.resource_manager import ResourceManager

__all__ = ["YarnApplication", "AMRMClient", "ContainerContext"]


@dataclass(slots=True)
class ContainerContext:
    """Runtime handle given to a launched container instance."""

    services: Any  # the Testbed (sim, cluster, hdfs, params, rng, logs, rm)
    node: "Node"
    grant: ContainerGrant
    #: This container's own log stream (driver/executor stdout).
    logger: DaemonLogger
    app: "YarnApplication"
    #: Only set for the ApplicationMaster container.
    am_client: Optional["AMRMClient"] = None
    #: True when this container attached to a pooled warm JVM
    #: (section V-B JVM reuse) — frameworks discount their warm-up.
    warm_jvm: bool = False

    @property
    def sim(self):
        return self.services.sim

    @property
    def container_id(self) -> ContainerId:
        return self.grant.container_id


class YarnApplication:
    """Base class for a simulated YARN application.

    Subclasses implement :meth:`run_application_master` (the AppMaster
    process body) and :meth:`am_launch_spec`.  The RM drives the rest:
    admission, AM container allocation and launch, and final transition
    to FINISHED when the AM unregisters.
    """

    #: instance-type code of the AM container (Fig 9a), e.g. "spm"/"mrm".
    AM_INSTANCE_TYPE = "spm"

    #: Whether the framework recovers from forced container kills
    #: (scheduler preemption, node failure).  Opting in requires
    #: overriding :meth:`container_killed`; the preemption monitor and
    #: node-failure injection only ever target opted-in applications.
    supports_container_kill = False

    def __init__(self, name: str, user: str = "ubuntu", queue: str = "default"):
        self.name = name
        self.user = user
        self.queue = queue
        #: Assigned by the RM at submission.
        self.app_id: Optional[ApplicationId] = None
        self.submitted_at: Optional[float] = None
        #: Succeeds when the application reaches FINISHED.
        self.finished: Optional[Event] = None
        #: Localization payload files, registered at submission.
        self.payload_files: List[HdfsFile] = []
        #: All grants ever bound to this app (introspection for tests).
        self.grants: List[ContainerGrant] = []
        #: Use Docker containers for launching (Fig 9b).
        self.docker: bool = False

    # -- to be provided by frameworks ---------------------------------------
    def am_heartbeat_intervals(self, params) -> tuple:
        """(pending, idle) AM-RM heartbeat intervals for this framework.

        MapReduce's flat 1 s default is what caps acquisition delay in
        Fig 7c; Spark overrides this with its fast-while-allocating
        interval.
        """
        return (params.mr_am_heartbeat_s, params.mr_am_heartbeat_s)

    def am_resource(self, params) -> "ResourceRequest":
        """Shape of the AM container."""
        from repro.yarn.records import ResourceSpec

        return ResourceRequest(
            ResourceSpec(params.am_memory_mb, params.am_vcores), count=1
        )

    def prepare_payload(self, services) -> None:
        """Upload localization files to HDFS before submission."""
        params = services.params
        pkg = services.hdfs.register_file(
            f"/user/{self.user}/.sparkStaging/{self.name}/__spark_libs__.zip"
            if self.AM_INSTANCE_TYPE == "spm"
            else f"/user/{self.user}/.staging/{self.name}/job.jar",
            params.default_localized_bytes,
        )
        self.payload_files = [pkg]

    def am_launch_spec(self) -> LaunchSpec:
        """LaunchSpec for the AppMaster container."""
        return LaunchSpec(
            instance_type=self.AM_INSTANCE_TYPE,
            run=self.run_application_master,
            files=list(self.payload_files),
            docker=self.docker,
        )

    def run_application_master(
        self, ctx: ContainerContext
    ) -> Generator[Event, Any, Any]:
        """The AppMaster body; must be a simulation process generator."""
        raise NotImplementedError

    def container_killed(
        self, grant: ContainerGrant, instance: Optional[Process], reason: str
    ) -> None:
        """One of this app's containers was forcibly killed.

        Called by the NodeManager's kill path with the (possibly
        not-yet-started, hence Optional) instance process.  Frameworks
        that set ``supports_container_kill`` must reclaim the lost work
        and request a replacement here.
        """
        raise SimulationError(
            f"{self}: container {grant} was killed ({reason}) but "
            f"{type(self).__name__} does not support container kills"
        )

    def __str__(self) -> str:
        return str(self.app_id) if self.app_id is not None else f"<unsubmitted {self.name}>"


class AMRMClient:
    """The AppMaster's RPC client to the ResourceManager.

    Containers are requested asynchronously and granted containers are
    *pulled* on the AM-RM heartbeat — so a container allocated between
    two heartbeats sits in ALLOCATED until the next pull, which is the
    mechanism that caps the acquisition delay at the heartbeat interval
    (Fig 7c).  Frameworks configure their intervals: MapReduce beats at
    a flat 1 s; Spark beats fast (200 ms) while allocation is pending
    and slow (3 s) when idle.
    """

    def __init__(
        self,
        rm: "ResourceManager",
        app: YarnApplication,
        pending_interval: float,
        idle_interval: float,
    ):
        self.rm = rm
        self.app = app
        self.sim = rm.sim
        self.pending_interval = pending_interval
        self.idle_interval = idle_interval
        #: Grants delivered to the AM, in pull order.
        self.allocated: Store = Store(self.sim)
        self._new_requests: List[ResourceRequest] = []
        self._outstanding = 0
        self.granted_total = 0
        self.registered = False
        self._running = False
        self._wake: Optional[Event] = None
        self._loop: Optional[Process] = None
        self._rpc_rng = rm.rng.child(f"amrm.{app.name}")

    # -- lifecycle -----------------------------------------------------------
    def register(self) -> Generator[Event, Any, None]:
        """Register the AM with the RM and start the heartbeat loop."""
        if self.registered:
            raise SimulationError(f"{self.app}: AM already registered")
        yield self.sim.timeout(self._rpc())
        self.rm.register_am(self.app)
        self.registered = True
        self._running = True
        self._loop = self.sim.process(
            self._heartbeat_loop(), name=f"amrm-{self.app.app_id}"
        )

    def unregister(self) -> Generator[Event, Any, None]:
        """Tell the RM the application is done; stops the heartbeats."""
        self._running = False
        self.kick()
        yield self.sim.timeout(self._rpc())
        yield from self.rm.unregister_am(self.app)

    # -- container requests ----------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Containers requested but not yet granted."""
        return self._outstanding

    def request_containers(self, request: ResourceRequest) -> None:
        """Queue an ask; it rides out on the next heartbeat (kicked now)."""
        if not self.registered:
            raise SimulationError("request_containers before register()")
        self._new_requests.append(request)
        self._outstanding += request.count
        self.kick()

    def release_container(self, grant: ContainerGrant) -> None:
        """Give back a granted-but-unwanted container (bug cleanup path)."""
        self.rm.release_container(self.app, grant)

    def kick(self) -> None:
        """Wake the heartbeat loop immediately (initial-allocation path)."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)

    # -- internals ---------------------------------------------------------------
    def _rpc(self) -> float:
        p = self.rm.params
        return self._rpc_rng.lognormal_median(p.rpc_latency_median_s, p.rpc_latency_sigma)

    def _heartbeat_loop(self) -> Generator[Event, Any, None]:
        # Spark's allocation pull starts at the fast pending interval and
        # doubles on every empty response, up to the idle interval
        # (spark.yarn.scheduler.initial-allocation-interval behaviour).
        # MapReduce sets pending == idle, i.e. a flat 1 s beat.
        backoff = self.pending_interval
        while self._running:
            requests, self._new_requests = self._new_requests, []
            grants = yield from self.rm.allocate(self.app, requests)
            for grant in grants:
                self._outstanding -= 1
                self.granted_total += 1
                self.allocated.put(grant)
            if self._outstanding > 0:
                if grants:
                    backoff = self.pending_interval
                else:
                    backoff = min(backoff * 2.0, self.idle_interval)
                interval = backoff
            else:
                backoff = self.pending_interval
                interval = self.idle_interval
            self._wake = self.sim.event()
            yield self.sim.any_of([self.sim.timeout(interval), self._wake])
            self._wake = None
