"""Grouping mined events by global ID (section III-C).

SDchecker "binds each log event with its corresponding global ID
(application ID or container ID), then aggregates and groups state
transformations based on the IDs", sorting each group by timestamp.
The result is one :class:`ApplicationTrace` per application, holding
its app-level events and one :class:`ContainerTrace` per container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.diagnostics import MiningDiagnostics
from repro.core.events import EventKind, SchedulingEvent
from repro.core.messages import instance_type_of_class

__all__ = ["ContainerTrace", "ApplicationTrace", "group_events"]

_CONTAINER_KINDS = {
    EventKind.CONTAINER_ALLOCATED,
    EventKind.CONTAINER_ACQUIRED,
    EventKind.CONTAINER_RM_RUNNING,
    EventKind.CONTAINER_RM_COMPLETED,
    EventKind.CONTAINER_RELEASED,
    EventKind.CONTAINER_PREEMPTED,
    EventKind.CONTAINER_LOCALIZING,
    EventKind.CONTAINER_SCHEDULED,
    EventKind.CONTAINER_NM_RUNNING,
    EventKind.CONTAINER_NM_KILLED,
    EventKind.INSTANCE_FIRST_LOG,
    EventKind.FIRST_TASK,
    EventKind.MR_TASK_DONE,
}


@dataclass
class ContainerTrace:
    """All mined events of one container, by kind (first occurrence)."""

    container_id: str
    events: List[SchedulingEvent] = field(default_factory=list)
    #: First occurrence of each kind, maintained incrementally so
    #: :meth:`first` / :meth:`time_of` are O(1) instead of re-scanning
    #: the event list (the old quadratic hot path under decompose()).
    _first_by_kind: Dict[EventKind, SchedulingEvent] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for event in self.events:
            self._index(event)

    def _index(self, event: SchedulingEvent) -> None:
        held = self._first_by_kind.get(event.kind)
        # Strict '<' keeps the scan semantics: on a timestamp tie the
        # earliest-added event wins.
        if held is None or event.timestamp < held.timestamp:
            self._first_by_kind[event.kind] = event

    def add(self, event: SchedulingEvent) -> None:
        self.events.append(event)
        self._index(event)

    def sort(self) -> None:
        self.events.sort(key=lambda e: e.timestamp)

    def first(self, kind: EventKind) -> Optional[SchedulingEvent]:
        """Earliest event of ``kind``, or None."""
        return self._first_by_kind.get(kind)

    def time_of(self, kind: EventKind) -> Optional[float]:
        event = self._first_by_kind.get(kind)
        return None if event is None else event.timestamp

    @property
    def is_application_master(self) -> bool:
        """YARN convention: the AM is container #000001."""
        return self.container_id.endswith("_000001")

    @property
    def instance_type(self) -> Optional[str]:
        """Fig 9a code (spm/spe/mrm/mrsm/mrsr) from the first log line."""
        first_log = self.first(EventKind.INSTANCE_FIRST_LOG)
        if first_log is None:
            return None
        code = instance_type_of_class(first_log.source_class)
        if code == "mrs":
            # YarnChild logs the attempt ID, whose m/r marker tells map
            # children from reduce children.  A first-log event with no
            # captured detail (hand-built or from a truncated line)
            # cannot be refined — report the unrefined code.
            if first_log.detail is None:
                return "mrs"
            return "mrsr" if "_r_" in first_log.detail else "mrsm"
        return code

    @property
    def was_launched(self) -> bool:
        return self.time_of(EventKind.CONTAINER_NM_RUNNING) is not None or (
            self.time_of(EventKind.INSTANCE_FIRST_LOG) is not None
        )

    @property
    def ran_task(self) -> bool:
        return (
            self.time_of(EventKind.FIRST_TASK) is not None
            or self.time_of(EventKind.MR_TASK_DONE) is not None
        )


@dataclass
class ApplicationTrace:
    """All mined events of one application."""

    app_id: str
    events: List[SchedulingEvent] = field(default_factory=list)
    containers: Dict[str, ContainerTrace] = field(default_factory=dict)
    #: First occurrence by kind over the app-level event list (container
    #: events are indexed by their own ContainerTrace).
    _first_by_kind: Dict[EventKind, SchedulingEvent] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for event in self.events:
            self._index(event)

    def _index(self, event: SchedulingEvent) -> None:
        held = self._first_by_kind.get(event.kind)
        if held is None or event.timestamp < held.timestamp:
            self._first_by_kind[event.kind] = event

    def add(self, event: SchedulingEvent) -> None:
        if event.kind in _CONTAINER_KINDS and event.container_id is not None:
            self.containers.setdefault(
                event.container_id, ContainerTrace(event.container_id)
            ).add(event)
        else:
            self.events.append(event)
            self._index(event)

    def sort(self) -> None:
        self.events.sort(key=lambda e: e.timestamp)
        for trace in self.containers.values():
            trace.sort()

    def first(self, kind: EventKind) -> Optional[SchedulingEvent]:
        return self._first_by_kind.get(kind)

    def time_of(self, kind: EventKind) -> Optional[float]:
        event = self._first_by_kind.get(kind)
        return None if event is None else event.timestamp

    @property
    def am_container(self) -> Optional[ContainerTrace]:
        for trace in self.containers.values():
            if trace.is_application_master:
                return trace
        return None

    @property
    def worker_containers(self) -> List[ContainerTrace]:
        """Non-AM containers, in container-ID order."""
        return [
            self.containers[cid]
            for cid in sorted(self.containers)
            if not self.containers[cid].is_application_master
        ]


def group_events(
    events: Iterable[SchedulingEvent],
    diagnostics: Optional[MiningDiagnostics] = None,
) -> Dict[str, ApplicationTrace]:
    """Group mined events into per-application traces, sorted by time.

    Events that bind to no application ID (e.g. a container ID garbled
    beyond the app-ID derivation) are tolerated — a log miner drops
    what it cannot bind — but counted in ``diagnostics`` when given,
    so the loss is visible instead of silent.
    """
    traces: Dict[str, ApplicationTrace] = {}
    orphans = 0
    for event in events:
        if event.app_id is None:
            orphans += 1
            continue
        traces.setdefault(event.app_id, ApplicationTrace(event.app_id)).add(event)
    if diagnostics is not None:
        diagnostics.orphan_events += orphans
    for trace in traces.values():
        trace.sort()
    return traces
