"""Command-line interface: ``sdchecker <logdir>``.

Offline usage exactly as the paper describes: run your applications,
collect the YARN and application logs into a directory (one ``.log``
file per daemon), then point SDchecker at it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.checker import SDChecker
from repro.core.parser import AUTO_JOBS
from repro.core.report import METRICS

__all__ = ["main", "build_arg_parser"]


def _jobs_arg(value: str):
    """``--jobs`` values: a positive worker count or ``auto``."""
    if value == AUTO_JOBS:
        return AUTO_JOBS
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a worker count or 'auto', got {value!r}"
        ) from None


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sdchecker",
        description=(
            "Decompose the job scheduling delay of Spark-on-YARN "
            "applications from their log files."
        ),
    )
    parser.add_argument("logdir", help="directory of <daemon>.log files")
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=AUTO_JOBS,
        metavar="N",
        help=(
            "mine the logs with N worker processes, or 'auto' (the "
            "default) to pick serial vs parallel from the corpus size "
            "and CPU count; the output is identical either way"
        ),
    )
    parser.add_argument(
        "--metric",
        choices=sorted(METRICS),
        help="print one metric's sample instead of the full summary",
    )
    parser.add_argument(
        "--percentile",
        type=float,
        default=95.0,
        help="percentile reported with --metric (default 95)",
    )
    parser.add_argument(
        "--graph",
        metavar="APP_ID",
        help="print the scheduling graph of one application as Graphviz dot",
    )
    parser.add_argument(
        "--bug-check",
        action="store_true",
        help="only run the allocated-but-unused container detector",
    )
    parser.add_argument(
        "--compare",
        metavar="OTHER_LOGDIR",
        help="diff this run against another log directory (slowdowns)",
    )
    parser.add_argument(
        "--csv",
        metavar="FILE",
        help="write per-application metrics to a CSV file",
    )
    parser.add_argument(
        "--containers-csv",
        metavar="FILE",
        help="write per-container component delays to a CSV file",
    )
    parser.add_argument(
        "--cdf",
        choices=sorted(METRICS),
        help="render an ASCII CDF of one metric",
    )
    parser.add_argument(
        "--timeline",
        metavar="APP_ID",
        help="render one application's scheduling timeline (Fig 10 view)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check the logs for state-order/causality inconsistencies",
    )
    parser.add_argument(
        "--diagnostics",
        action="store_true",
        help=(
            "also print the mining diagnostics: per-stream dropped/"
            "duplicate line counts, unrecognized streams, per-app "
            "component completeness, clock-skew warnings"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "exit non-zero if the mining pipeline degraded at all "
            "(dropped lines, unknown streams, orphan events, missing "
            "delay components, skew warnings)"
        ),
    )
    return parser


def _strict_rc(args: argparse.Namespace, report) -> int:
    """0, or 1 when --strict is set and the run was anything but clean."""
    if not args.strict:
        return 0
    diagnostics = report.diagnostics
    if diagnostics is None or not diagnostics.degraded():
        return 0
    if not args.diagnostics:  # not already printed to stdout
        print(diagnostics.summary(), file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    logdir = Path(args.logdir)
    if not logdir.is_dir():
        print(f"sdchecker: {logdir} is not a directory", file=sys.stderr)
        return 2
    if args.jobs != AUTO_JOBS and args.jobs < 1:
        print("sdchecker: --jobs must be >= 1 or 'auto'", file=sys.stderr)
        return 2
    checker = SDChecker(jobs=args.jobs)

    if args.graph:
        traces = checker.group(logdir)
        if args.graph not in traces:
            print(f"sdchecker: no application {args.graph!r} in logs", file=sys.stderr)
            return 2
        print(checker.graph(traces[args.graph]).to_dot())
        return 0

    if args.timeline:
        from repro.core.timeline import render_timeline

        traces = checker.group(logdir)
        if args.timeline not in traces:
            print(
                f"sdchecker: no application {args.timeline!r} in logs", file=sys.stderr
            )
            return 2
        print(render_timeline(traces[args.timeline]))
        return 0

    if args.validate:
        from repro.core.validate import validate_traces

        violations = validate_traces(checker.group(logdir))
        for violation in violations:
            print(violation.describe())
        print(f"{len(violations)} violation(s)")
        return 0 if not violations else 1

    report = checker.analyze(logdir)

    if args.compare:
        other_dir = Path(args.compare)
        if not other_dir.is_dir():
            print(f"sdchecker: {other_dir} is not a directory", file=sys.stderr)
            return 2
        other = checker.analyze(other_dir)
        print(report.compare(other, label_self="A", label_other="B"))
        return _strict_rc(args, report)

    if args.csv:
        print(f"wrote {report.to_csv(args.csv)}")
        return _strict_rc(args, report)

    if args.containers_csv:
        print(f"wrote {report.containers_to_csv(args.containers_csv)}")
        return _strict_rc(args, report)

    if args.cdf:
        print(report.sample(args.cdf).ascii_cdf())
        return _strict_rc(args, report)

    if args.bug_check:
        for finding in report.bug_findings:
            print(f"{finding.app_id} {finding.describe()}")
        print(f"{len(report.bug_findings)} finding(s)")
        return _strict_rc(args, report)

    if args.metric:
        sample = report.sample(args.metric)
        if args.json:
            print(
                json.dumps(
                    {
                        "metric": args.metric,
                        "n": len(sample),
                        "median": sample.p50,
                        f"p{args.percentile:g}": sample.percentile(args.percentile),
                        "mean": sample.mean(),
                        "std": sample.std(),
                        "values": list(sample.values),
                    }
                )
            )
        else:
            print(sample.describe())
            print(f"p{args.percentile:g} = {sample.percentile(args.percentile):.3f}s")
        return _strict_rc(args, report)

    if args.json:
        payload = {
            "applications": len(report.apps),
            "metrics": {
                metric: {
                    "n": len(report.sample(metric)),
                    "median": report.sample(metric).p50,
                    "p95": report.sample(metric).p95,
                    "mean": report.sample(metric).mean(),
                    "std": report.sample(metric).std(),
                }
                for metric in METRICS
                if report.sample(metric)
            },
            "contributions": report.component_contributions(),
            "bug_findings": [
                {
                    "app_id": f.app_id,
                    "container_id": f.container_id,
                    "category": f.category,
                }
                for f in report.bug_findings
            ],
        }
        if args.diagnostics and report.diagnostics is not None:
            payload["diagnostics"] = report.diagnostics.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        print(report.summary())
        if args.diagnostics and report.diagnostics is not None:
            print(report.diagnostics.summary())
    return _strict_rc(args, report)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
