"""Figure 13: impact of CPU interference on the scheduling delay.

Interference: parallel HiBench-style Kmeans applications, each with 4
executors of 16 vcores, oversubscribing the physical cores wherever
YARN's memory-only allocator clumps them.  Paper findings at 16 Kmeans
apps: total p95 degrades ~1.6x; only the *in-application* path is
seriously affected — driver delay up to 2.9x, executor delay up to
2.4x (JVM warm-up is CPU-bound) — while localization slows only ~1.4x
at the median (namenode lookups + the localizer JVM are its only
CPU-bound parts).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List

from repro.core.stats import DelaySample
from repro.experiments.common import resolve_scale
from repro.experiments.harness import TraceScenario, submit_kmeans_interference

__all__ = ["Fig13Result", "run_fig13", "FIG13_KMEANS_COUNTS"]

FIG13_KMEANS_COUNTS = (0, 4, 8, 16)

_METRICS = ("total", "in", "out", "driver", "executor", "localization")


@dataclass
class Fig13Result:
    #: Kmeans app count -> metric -> sample.
    series: Dict[int, Dict[str, DelaySample]]

    def slowdown(self, apps: int, metric: str, q: float = 95.0) -> float:
        return self.series[apps][metric].percentile(q) / self.series[0][
            metric
        ].percentile(q)

    def rows(self) -> List[str]:
        lines = ["Figure 13 — CPU interference (Kmeans apps)"]
        for apps, metrics in sorted(self.series.items()):
            lines.append(f"  {apps:2d} Kmeans apps:")
            for metric in _METRICS:
                s = metrics[metric]
                suffix = ""
                if apps > 0:
                    suffix = (
                        f"  [x{self.slowdown(apps, metric, 50):4.1f} med, "
                        f"x{self.slowdown(apps, metric, 95):4.1f} p95]"
                    )
                lines.append(
                    f"    {metric:13s} med={s.p50:6.2f}s p95={s.p95:6.2f}s{suffix}"
                )
        return lines


def _collect(report) -> Dict[str, DelaySample]:
    return {
        "total": report.sample("total_delay"),
        "in": report.sample("in_app_delay"),
        "out": report.sample("out_app_delay"),
        "driver": report.sample("driver_delay"),
        "executor": report.sample("executor_delay"),
        "localization": report.container_sample("localization", workers_only=False),
    }


def run_fig13(scale: str = "small", seed: int = 0) -> Fig13Result:
    n_queries = resolve_scale(scale, small=40, paper=200)
    base = TraceScenario(n_queries=n_queries, seed=seed, mean_interarrival_s=3.0)
    series: Dict[int, Dict[str, DelaySample]] = {}
    for apps in FIG13_KMEANS_COUNTS:
        if apps == 0:
            scenario = base
        else:
            scenario = base.variant(
                interference=functools.partial(submit_kmeans_interference, num_apps=apps)
            )
        series[apps] = _collect(scenario.run().report)
    return Fig13Result(series=series)
