"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures: it
runs the full pipeline (simulate the cluster -> render logs -> mine
with SDchecker -> aggregate) once, asserts the paper's *shape* claims
(who wins, rough factors, monotonicity), and records the rows —
both to stdout and to ``benchmarks/results/<name>.txt``.

Scale is controlled by the ``REPRO_SCALE`` environment variable:
``small`` (default; minutes for the whole suite) or ``paper`` (the full
section-IV trace sizes; substantially longer).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_SCALE", "small")
    if value not in ("small", "paper"):
        raise ValueError(f"REPRO_SCALE must be 'small' or 'paper', got {value!r}")
    return value


@pytest.fixture(scope="session")
def seed() -> int:
    return int(os.environ.get("REPRO_SEED", "0"))


@pytest.fixture
def record_rows():
    """Persist and echo a figure's regenerated rows."""

    def _record(name: str, rows):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(rows)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record
