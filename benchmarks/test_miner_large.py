"""Memory-path benchmark: mmap windows vs read(2) at multi-GB scale.

``make bench-miner-large`` generates a seeded corpus straight to disk
(:mod:`benchmarks.corpus_large`) and times the fast directory miner
three ways over the same files:

* **read(2)** — ``REPRO_MMAP=0``, the chunked ``read_chunk`` path;
* **mmap** — the default ``chunk_window`` memoryview path;
* **parallel** — ``--jobs 4`` over mmap, workers shipping wire blobs.

All three must mine identical events (the byte-identity contract the
hypothesis suite checks at small scale, re-checked here at the scale
where a window-boundary bug would actually hide), and the mmap path
must never be meaningfully slower than read(2) — the regression bar
the ``REPRO_BENCH_SMOKE=1`` CI job enforces on an ~8 MiB corpus.

Corpus size defaults to 2 GiB and is overridden with ``REPRO_LARGE_MB``
(e.g. ``REPRO_LARGE_MB=512 make bench-miner-large``); the smoke job
pins ~8 MiB, just past ``FAST_SPLIT_THRESHOLD`` so chunk splitting and
the parallel pool still engage.  Every point appended to
``BENCH_miner.json`` records the corpus bytes and the CPU count, so a
slow number on a 1-CPU runner reads as what it is.
"""

from __future__ import annotations

import json
import os

from repro.core.parser import LogMiner, available_cpus

from benchmarks.corpus_large import DEFAULT_SEED, generate_large_corpus
from benchmarks.test_miner_throughput import _record_point, _time_best

#: mmap may not be *meaningfully* slower than read(2); 10% headroom
#: absorbs timer noise on small smoke corpora where both take ~100 ms.
_MMAP_SLOWDOWN_ALLOWANCE = 1.10

_SMOKE_MB = 8
_DEFAULT_LARGE_MB = 2048


def _target_mb(smoke: bool) -> int:
    if smoke:
        return _SMOKE_MB
    return int(os.environ.get("REPRO_LARGE_MB", str(_DEFAULT_LARGE_MB)))


def test_miner_large_corpus(tmp_path, monkeypatch):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    mode = "large-smoke" if smoke else "large"
    target_mb = _target_mb(smoke)
    rounds = 3 if smoke else 2

    logdir = tmp_path / "large-corpus"
    corpus_bytes, corpus_lines = generate_large_corpus(
        logdir, target_mb * 1024 * 1024, seed=DEFAULT_SEED
    )

    miner = LogMiner(fast=True)

    # read(2) first: its rounds warm the page cache, so neither path
    # pays the cold-cache penalty inside its best-of-N window.
    monkeypatch.setenv("REPRO_MMAP", "0")
    read_events, read_s = _time_best(miner.mine, str(logdir), rounds=rounds)
    monkeypatch.setenv("REPRO_MMAP", "1")
    mmap_events, mmap_s = _time_best(miner.mine, str(logdir), rounds=rounds)
    parallel_events, parallel_s = _time_best(
        miner.mine_parallel, str(logdir), 4, rounds=rounds
    )

    # Byte-identity at scale: one misplaced window boundary anywhere in
    # the corpus shifts, drops, or duplicates an event.
    assert mmap_events == read_events
    assert parallel_events == read_events

    cpus = available_cpus()
    mmap_vs_read = mmap_s / read_s if read_s > 0 else 0.0
    point = {
        "mode": mode,
        "corpus_bytes": corpus_bytes,
        "corpus_lines": corpus_lines,
        "cpus": cpus,
        "read_lps": round(corpus_lines / read_s),
        "mmap_lps": round(corpus_lines / mmap_s),
        "parallel_lps": round(corpus_lines / parallel_s),
        "parallel_jobs": 4,
        "mmap_vs_read_ratio": round(mmap_vs_read, 3),
        "parallel_ratio": round(mmap_s / parallel_s, 2) if parallel_s > 0 else 0.0,
    }
    _record_point(point)
    print()
    print(json.dumps(point))

    assert mmap_s <= read_s * _MMAP_SLOWDOWN_ALLOWANCE, (
        f"mmap path {mmap_s:.3f}s is slower than read(2) at {read_s:.3f}s "
        f"(ratio {mmap_vs_read:.3f} > {_MMAP_SLOWDOWN_ALLOWANCE})"
    )
    if cpus >= 2:
        assert parallel_s < mmap_s, (
            f"--jobs 4 ({parallel_s:.3f}s) lost to serial mmap "
            f"({mmap_s:.3f}s) on {cpus} CPUs"
        )
