"""The scheduling graph (section III-C, Fig 3).

For each application SDchecker builds a DAG whose nodes are the mined
(entity, state) pairs — rectangles for YARN-caused states, circles for
Spark-caused states in the paper's figure — with edges following both
the per-entity state order and the cross-entity causal structure:

* app SUBMITTED -> ACCEPTED -> AM container ALLOCATED -> ... -> driver
  FIRST_LOG -> REGISTER -> app RUNNING;
* driver REGISTER -> START_ALLO -> each worker container's
  ALLOCATED -> ACQUIRED -> LOCALIZING -> SCHEDULED -> RUNNING ->
  executor FIRST_LOG -> FIRST_TASK;
* all worker ALLOCATED events -> END_ALLO.

Edges carry the elapsed time between their endpoint states, so the
longest (critical) path from SUBMITTED to the first FIRST_TASK is the
total scheduling delay, and each edge names the component it charges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.events import EventKind
from repro.core.grouping import ApplicationTrace, ContainerTrace

__all__ = ["SchedulingGraph"]

#: States the paper draws as rectangles (YARN) vs circles (Spark).
_YARN_KINDS = {
    EventKind.APP_SUBMITTED,
    EventKind.APP_ACCEPTED,
    EventKind.APP_ATTEMPT_REGISTERED,
    EventKind.APP_FINISHED,
    EventKind.CONTAINER_ALLOCATED,
    EventKind.CONTAINER_ACQUIRED,
    EventKind.CONTAINER_LOCALIZING,
    EventKind.CONTAINER_SCHEDULED,
    EventKind.CONTAINER_NM_RUNNING,
}

_CONTAINER_ORDER = [
    EventKind.CONTAINER_ALLOCATED,
    EventKind.CONTAINER_ACQUIRED,
    EventKind.CONTAINER_LOCALIZING,
    EventKind.CONTAINER_SCHEDULED,
    EventKind.CONTAINER_NM_RUNNING,
    EventKind.INSTANCE_FIRST_LOG,
    EventKind.FIRST_TASK,
]

_EDGE_COMPONENT = {
    (EventKind.CONTAINER_ALLOCATED, EventKind.CONTAINER_ACQUIRED): "acquisition",
    (EventKind.CONTAINER_ACQUIRED, EventKind.CONTAINER_LOCALIZING): "dispatch",
    (EventKind.CONTAINER_LOCALIZING, EventKind.CONTAINER_SCHEDULED): "localization",
    (EventKind.CONTAINER_SCHEDULED, EventKind.CONTAINER_NM_RUNNING): "launching",
    (EventKind.CONTAINER_NM_RUNNING, EventKind.INSTANCE_FIRST_LOG): "startup",
    (EventKind.INSTANCE_FIRST_LOG, EventKind.FIRST_TASK): "executor-delay",
}


class SchedulingGraph:
    """The per-application scheduling DAG."""

    def __init__(self, trace: ApplicationTrace):
        self.trace = trace
        self.graph = nx.DiGraph(app_id=trace.app_id)
        self._build()

    # -- construction ------------------------------------------------------
    def _node(self, entity: str, kind: EventKind, timestamp: float) -> str:
        node = f"{entity}:{kind.value}"
        self.graph.add_node(
            node,
            entity=entity,
            kind=kind.value,
            timestamp=timestamp,
            owner="yarn" if kind in _YARN_KINDS else "spark",
        )
        return node

    def _edge(self, a: Optional[str], b: Optional[str], component: str) -> None:
        if a is None or b is None or a == b:
            return
        dt = self.graph.nodes[b]["timestamp"] - self.graph.nodes[a]["timestamp"]
        if dt < 0:
            return  # never draw a backwards causal edge (clock skew guard)
        self.graph.add_edge(a, b, weight=dt, component=component)

    def _app_node(self, kind: EventKind) -> Optional[str]:
        t = self.trace.time_of(kind)
        if t is None:
            return None
        return self._node("app", kind, t)

    def _container_chain(self, ctrace: ContainerTrace) -> List[str]:
        """Add a container's state chain; returns its node names in order."""
        nodes: List[str] = []
        prev: Optional[str] = None
        prev_kind: Optional[EventKind] = None
        for kind in _CONTAINER_ORDER:
            t = ctrace.time_of(kind)
            if t is None:
                continue
            node = self._node(ctrace.container_id, kind, t)
            if prev is not None:
                component = _EDGE_COMPONENT.get((prev_kind, kind), "flow")
                self._edge(prev, node, component)
            nodes.append(node)
            prev, prev_kind = node, kind
        return nodes

    def _build(self) -> None:
        trace = self.trace
        submitted = self._app_node(EventKind.APP_SUBMITTED)
        accepted = self._app_node(EventKind.APP_ACCEPTED)
        registered = self._app_node(EventKind.APP_ATTEMPT_REGISTERED)
        finished = self._app_node(EventKind.APP_FINISHED)
        start_allo = self._app_node(EventKind.START_ALLO)
        end_allo = self._app_node(EventKind.END_ALLO)
        driver_reg = self._app_node(EventKind.DRIVER_REGISTERED)

        self._edge(submitted, accepted, "admission")

        am = trace.am_container
        am_nodes: Dict[EventKind, str] = {}
        if am is not None:
            chain = self._container_chain(am)
            am_nodes = {
                EventKind[self.graph.nodes[n]["kind"]]: n for n in chain
            }
            self._edge(accepted, chain[0] if chain else None, "am-scheduling")
            self._edge(
                am_nodes.get(EventKind.INSTANCE_FIRST_LOG), driver_reg, "driver-delay"
            )
        self._edge(driver_reg, registered, "registration")
        self._edge(driver_reg, start_allo, "allocator-start")

        last_allocated: List[str] = []
        for ctrace in trace.worker_containers:
            chain = self._container_chain(ctrace)
            if not chain:
                continue
            self._edge(start_allo, chain[0], "allocation")
            first_kind = EventKind[self.graph.nodes[chain[0]]["kind"]]
            if first_kind is EventKind.CONTAINER_ALLOCATED:
                last_allocated.append(chain[0])
        for node in last_allocated:
            self._edge(node, end_allo, "allocation-complete")

        first_tasks = [
            n for n, d in self.graph.nodes(data=True)
            if d["kind"] == EventKind.FIRST_TASK.value
        ]
        for node in first_tasks:
            self._edge(node, finished, "execution")

    # -- queries --------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        return self.graph

    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    def is_dag(self) -> bool:
        return nx.is_directed_acyclic_graph(self.graph)

    def critical_path(self) -> List[Tuple[str, str, float, str]]:
        """The longest SUBMITTED -> first-task path by elapsed time.

        Returns (from_node, to_node, seconds, component) per edge; the
        sum of the seconds is the path's share of the total scheduling
        delay — the paper's "which component should we optimize" view.
        """
        source = f"app:{EventKind.APP_SUBMITTED.value}"
        targets = sorted(
            (
                (d["timestamp"], n)
                for n, d in self.graph.nodes(data=True)
                if d["kind"] == EventKind.FIRST_TASK.value
            ),
        )
        if source not in self.graph or not targets:
            return []
        target = targets[0][1]
        best_path: Optional[List[str]] = None
        best_len = -1.0
        for path in nx.all_simple_paths(self.graph, source, target):
            length = sum(
                self.graph.edges[a, b]["weight"] for a, b in zip(path, path[1:])
            )
            if length > best_len:
                best_len, best_path = length, path
        if best_path is None:
            return []
        return [
            (
                a,
                b,
                self.graph.edges[a, b]["weight"],
                self.graph.edges[a, b]["component"],
            )
            for a, b in zip(best_path, best_path[1:])
        ]

    def to_dot(self) -> str:
        """Graphviz rendering: rectangles = YARN states, circles = Spark
        states, matching Fig 3's convention."""
        lines = [f'digraph "{self.trace.app_id}" {{', "  rankdir=LR;"]
        for node, data in self.graph.nodes(data=True):
            shape = "box" if data["owner"] == "yarn" else "ellipse"
            label = node.replace(":", "\\n")
            lines.append(f'  "{node}" [shape={shape}, label="{label}"];')
        for a, b, data in self.graph.edges(data=True):
            lines.append(
                f'  "{a}" -> "{b}" [label="{data["component"]} '
                f'{data["weight"]:.3f}s"];'
            )
        lines.append("}")
        return "\n".join(lines)
