"""Pass 5 — process-boundary lint (rules SD501-SD503).

The miner's parallel fast path fans chunks out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and promises
byte-identical reports.  That guarantee survives the process boundary
only if three contracts hold:

* **SD501 worker-state-divergence** — a function submitted to the pool
  must not (transitively) mutate module globals.  Workers are forked or
  respawned copies: a mutation lands in the *worker's* module, diverges
  from the parent, persists across task reuse inside one worker, and
  makes results depend on which worker ran which chunk.  Lambdas and
  nested functions are flagged too — they cannot be pickled to a worker
  at all.
* **SD502 slots-without-pickle-contract** — classes crossing the
  worker→parent boundary (named in a submitted function's return
  annotation) that define ``__slots__`` must carry an explicit pickle
  round-trip contract: either ``@dataclass`` (field-driven state, which
  is what the byte-identity suites compare) or
  ``__getstate__``/``__setstate__``/``__reduce__``.  A bare slotted
  class silently drops state added outside ``__slots__`` and breaks
  round-trip equality checks.
* **SD503 shared-random-source** — a
  :class:`repro.simul.distributions.RandomSource` visible to both
  parent and worker code without a ``.child()`` substream split.  Each
  side draws from the *same* stream position independently, so draw
  sequences overlap and the (seed, scenario) -> log mapping stops being
  a function.  The sanctioned pattern is one ``.child(name)`` per
  worker shard.  Detected two ways: a module-level RandomSource
  singleton read by worker-reachable code, and a RandomSource-typed
  local passed as a submission argument without coming from
  ``.child()``.

Submission sites are recognized in three shapes: ``pool.submit(fn,
...)``, ``pool.map(fn, ...)``, and the project's own wrapper form
``helper(pool, fn, ...)`` where ``helper`` is a project function and
the first argument is executor-typed (this is how the sanitizer hook
``repro.core.parser._pool_map`` routes submissions).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    MUTATING_METHODS,
    CallGraph,
    FunctionInfo,
    local_bindings,
    walk_own_body,
)
from repro.analysis.findings import Finding, make_finding, sort_findings

__all__ = ["EXECUTOR_TYPES", "analyze", "run", "scan_sources"]

#: Canonical constructors that create *process* pools.  Thread pools
#: share memory and need different (GIL-mediated) reasoning, so they
#: are deliberately out of scope here.
EXECUTOR_TYPES = frozenset({"concurrent.futures.ProcessPoolExecutor"})

_RANDOM_SOURCE = "RandomSource"


@dataclass
class _Site:
    """One executor submission: where, what, and the extra arguments."""

    submitter: FunctionInfo
    lineno: int
    #: Resolved submitted project function, None for lambdas.
    target: Optional[str]
    is_lambda: bool
    #: Argument expressions shipped to the worker alongside the task.
    payload_args: List[ast.expr]


def _root_name(expr: ast.expr) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _canonical_in(
    graph: CallGraph, func: FunctionInfo, expr: ast.expr
) -> Optional[str]:
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    info = graph.index.modules[func.module]
    return graph.index.resolve_dotted_in(info, ".".join(parts))


def _is_random_source(qualname: Optional[str]) -> bool:
    return qualname is not None and qualname.split(".")[-1] == _RANDOM_SOURCE


# -- submission-site discovery --------------------------------------------

def _executor_vars(graph: CallGraph, func: FunctionInfo) -> Set[str]:
    """Local names bound to a freshly-constructed process pool."""
    names: Set[str] = set()
    for node in walk_own_body(func.node):
        target: Optional[str] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            if isinstance(node.targets[0], ast.Name):
                target, value = node.targets[0].id, node.value
        elif isinstance(node, ast.withitem) and isinstance(
            node.optional_vars, ast.Name
        ):
            target, value = node.optional_vars.id, node.context_expr
        if target is None or not isinstance(value, ast.Call):
            continue
        if _canonical_in(graph, func, value.func) in EXECUTOR_TYPES:
            names.add(target)
    return names


def _sites_in(graph: CallGraph, func: FunctionInfo) -> List[_Site]:
    pools = _executor_vars(graph, func)
    if not pools:
        return []
    local_types = graph.local_types(func)
    bound = local_bindings(func.node)
    sites: List[_Site] = []
    nested = {
        node.name: f"{func.qualname}.<locals>.{node.name}"
        for node in walk_own_body(func.node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }

    def resolve_target(expr: ast.expr) -> Tuple[Optional[str], bool]:
        if isinstance(expr, ast.Lambda):
            return None, True
        # A nested def's name is a *local* binding, so the generic
        # resolver skips it; submitting one is exactly the SD501 case.
        if (
            isinstance(expr, ast.Name)
            and expr.id in nested
            and nested[expr.id] in graph.index.functions
        ):
            return nested[expr.id], False
        resolved = graph._resolve_callee(func, expr, local_types, bound)
        if resolved is not None and resolved[0] == "project":
            return resolved[1], False
        return None, False

    for node in walk_own_body(func.node):
        if not isinstance(node, ast.Call):
            continue
        fn_expr: Optional[ast.expr] = None
        payload: List[ast.expr] = []
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in {"submit", "map"}
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in pools
            and node.args
        ):
            fn_expr, payload = node.args[0], list(node.args[1:])
        else:
            # Wrapper form: helper(pool, fn, ...) with a project helper.
            resolved = graph.resolve_call(func, node, local_types, bound)
            if (
                resolved is not None
                and resolved[0] == "project"
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in pools
            ):
                fn_expr, payload = node.args[1], list(node.args[2:])
        if fn_expr is None:
            continue
        target, is_lambda = resolve_target(fn_expr)
        if target is None and not is_lambda:
            continue
        sites.append(_Site(func, node.lineno, target, is_lambda, payload))
    return sites


# -- SD501 ----------------------------------------------------------------

def _global_mutations(
    graph: CallGraph, func: FunctionInfo
) -> List[Tuple[str, int]]:
    """``(global name, lineno)`` pairs this function's body mutates."""
    info = graph.index.modules[func.module]
    bound = local_bindings(func.node)
    declared_global: Set[str] = set()
    for node in walk_own_body(func.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    mutations: List[Tuple[str, int]] = []
    for node in walk_own_body(func.node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in MUTATING_METHODS
            ):
                root = _root_name(callee.value)
                if (
                    root is not None
                    and root not in bound
                    and root in info.global_names
                ):
                    mutations.append((root, node.lineno))
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in declared_global:
                    mutations.append((target.id, node.lineno))
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                root = _root_name(target)
                if (
                    root is not None
                    and root != "self"
                    and root not in bound
                    and root in info.global_names
                ):
                    mutations.append((root, node.lineno))
    return mutations


# -- SD503 helpers ---------------------------------------------------------

def _module_random_globals(graph: CallGraph, module: str) -> Set[str]:
    info = graph.index.modules.get(module)
    if info is None:
        return set()
    return {
        name
        for name, ctor in info.global_instances.items()
        if _is_random_source(ctor)
    }


def _child_derived(func: FunctionInfo) -> Set[str]:
    """Locals assigned from a ``.child(...)`` call — the sanctioned split."""
    out: Set[str] = set()
    for node in walk_own_body(func.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr == "child"
        ):
            out.add(node.targets[0].id)
    return out


# -- the pass --------------------------------------------------------------

def analyze(graph: CallGraph) -> List[Finding]:
    """All SD5xx findings over an already-built call graph."""
    findings: List[Finding] = []
    seen: Set[str] = set()

    def emit(finding: Finding) -> None:
        if finding.key not in seen:
            seen.add(finding.key)
            findings.append(finding)

    sites: List[_Site] = []
    for qualname in sorted(graph.index.functions):
        sites.extend(_sites_in(graph, graph.index.functions[qualname]))

    for site in sites:
        submitter = site.submitter
        if site.is_lambda:
            emit(
                make_finding(
                    "SD501",
                    submitter.path,
                    site.lineno,
                    f"lambda submitted to a ProcessPoolExecutor in "
                    f"{submitter.short_name}; lambdas cannot be pickled to "
                    f"worker processes",
                )
            )
            continue
        assert site.target is not None
        target = graph.index.functions[site.target]
        if "<locals>" in site.target:
            emit(
                make_finding(
                    "SD501",
                    submitter.path,
                    site.lineno,
                    f"nested function {target.short_name}() submitted to a "
                    f"ProcessPoolExecutor in {submitter.short_name}; only "
                    f"module-level functions can be pickled to workers",
                )
            )
            continue

        reach = graph.reachable(site.target, through_async=False)

        # SD501: transitive module-global mutation.
        for qualname in sorted(reach):
            func = graph.index.functions.get(qualname)
            if func is None:
                continue
            for name, lineno in _global_mutations(graph, func):
                emit(
                    make_finding(
                        "SD501",
                        func.path,
                        lineno,
                        f"{func.short_name}() mutates module global "
                        f"'{name}' and is reachable from "
                        f"{target.short_name}(), which runs in "
                        f"ProcessPoolExecutor workers; worker-side state "
                        f"diverges from the parent and across task reuse",
                    )
                )

        # SD502: return-annotation classes crossing worker -> parent.
        owner = graph.index.modules.get(target.module)
        if owner is not None:
            for cls_qual in graph.index.annotation_classes(
                owner, target.node.returns
            ):
                mro = graph.index.mro(cls_qual)
                if not mro:
                    continue
                has_slots = any(c.defines_slots for c in mro)
                has_contract = any(
                    c.is_dataclass or c.has_pickle_protocol for c in mro
                )
                if has_slots and not has_contract:
                    cls = mro[0]
                    emit(
                        make_finding(
                            "SD502",
                            cls.path,
                            cls.node.lineno,
                            f"{cls.short_name} crosses the worker->parent "
                            f"boundary (returned by {target.short_name}()) "
                            f"and defines __slots__ without a pickle "
                            f"round-trip contract; make it a dataclass or "
                            f"define __getstate__/__setstate__",
                        )
                    )

        # SD503a: module-level RandomSource singletons read worker-side.
        for qualname in sorted(reach):
            func = graph.index.functions.get(qualname)
            if func is None:
                continue
            shared = _module_random_globals(graph, func.module)
            if not shared:
                continue
            bound = local_bindings(func.node)
            for node in walk_own_body(func.node):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in shared
                    and node.id not in bound
                ):
                    emit(
                        make_finding(
                            "SD503",
                            func.path,
                            node.lineno,
                            f"module-level RandomSource '{node.id}' is read "
                            f"by {func.short_name}(), which runs in "
                            f"ProcessPoolExecutor workers via "
                            f"{target.short_name}(); the parent shares the "
                            f"same stream — derive a .child() substream per "
                            f"worker instead",
                        )
                    )

        # SD503b: RandomSource-typed payload arguments without .child().
        local_types = graph.local_types(submitter)
        sanctioned = _child_derived(submitter)
        for arg in site.payload_args:
            if (
                isinstance(arg, ast.Name)
                and _is_random_source(local_types.get(arg.id))
                and arg.id not in sanctioned
            ):
                emit(
                    make_finding(
                        "SD503",
                        submitter.path,
                        arg.lineno,
                        f"RandomSource '{arg.id}' is shipped to "
                        f"ProcessPoolExecutor workers by "
                        f"{submitter.short_name}() without a .child() "
                        f"substream split; parent and workers draw from "
                        f"the same stream",
                    )
                )

    return sort_findings(findings)


def scan_sources(sources: Dict[str, str]) -> List[Finding]:
    """SD5xx findings for an in-memory ``{path: source}`` tree (tests)."""
    return analyze(CallGraph.from_sources(sources))


def run(root: Path) -> List[Finding]:
    """The process-boundary pass entry point used by the CLI."""
    return analyze(CallGraph.build(root))
