"""NodeManager: localization, launch queue, container lifecycle.

Each NM owns one :class:`~repro.cluster.node.Node`, heartbeats to the
RM every ``nm_heartbeat_s`` (driving the Capacity Scheduler's batch
allocation), and runs every container through the Hadoop-3 ContainerImpl
states: LOCALIZING -> SCHEDULED -> RUNNING.

Timing semantics (what SDchecker measures off the NM log):

* LOCALIZING .. SCHEDULED — the localization delay (Fig 8): namenode
  lookup + localizer start-up + downloading the payload from HDFS
  through the shared disk/NIC resources.
* SCHEDULED .. RUNNING — the launching delay (Fig 9): launch-script
  setup, optional Docker image load/mount, JVM start-up to the first
  log line.  For opportunistic containers the NM-side queueing wait
  (Fig 7b) also lands in this interval, exactly as in Hadoop 3, where
  SCHEDULED is the queued state.

The ContainerImpl RUNNING transition is logged at the instant the
launched JVM emits its first log line, so the paper's two definitions
of "launched" (messages 7->8 and the instance FIRST_LOG) coincide to
within the 1 ms log precision.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, List, Optional, TYPE_CHECKING

from repro.cluster.contention import cold_fraction
from repro.simul.engine import Event, Interrupt, Process, SimulationError
from repro.simul.resources import FairShareResource
from repro.yarn.app import ContainerContext, YarnApplication
from repro.yarn.records import ContainerGrant, ExecutionType, LaunchSpec
from repro.yarn.state_machine import NMContainerStateMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node
    from repro.yarn.resource_manager import ResourceManager

__all__ = ["NodeManager"]


class _ContainerRun:
    """NM-side handle on one in-flight container lifecycle."""

    __slots__ = ("grant", "app", "lifecycle", "instance", "cimpl", "kill_reason")

    def __init__(self, grant: ContainerGrant, app: YarnApplication):
        self.grant = grant
        self.app = app
        #: The _container_lifecycle process (interrupted to kill).
        self.lifecycle: Optional[Process] = None
        #: The launched instance process, once the JVM is up.
        self.instance: Optional[Process] = None
        #: The ContainerImpl state machine, once created.
        self.cimpl: Optional[NMContainerStateMachine] = None
        self.kill_reason: str = ""


class NodeManager:
    """One NodeManager daemon."""

    def __init__(self, rm: "ResourceManager", node: "Node"):
        self.rm = rm
        self.node = node
        self.sim = rm.sim
        self.params = rm.params
        self.logger = rm.services.log_store.logger(
            f"hadoop-nodemanager-{node.hostname}", lambda: self.sim.now
        )
        self._rng = rm.rng.child(f"nm.{node.hostname}")
        #: Paths already localized on this node (YARN's localized
        #: resource cache: a second container of the same app here
        #: skips the download).
        self._localized: set = set()
        #: In-flight downloads by path: concurrent requests for the
        #: same resource wait on the single fetch (YARN's per-resource
        #: localization lock — without it a 3000-map job would download
        #: its job.jar 125 times per node simultaneously).
        self._localizing: dict = {}
        #: Warm JVMs available for reuse, per instance type (the
        #: section V-B JVM-reuse optimization; empty unless enabled).
        self._warm_jvms: dict = {}
        #: Dedicated localization storage class (SSD/RAM; section V-B).
        self.localization_disk = FairShareResource(
            rm.sim,
            rm.params.localization_ssd_bandwidth,
            name=f"{node.hostname}.loc-ssd",
        )
        #: Opportunistic containers waiting for free resources, FIFO.
        self._opportunistic_queue: deque = deque()
        #: Containers currently running or queued here.
        self.active_containers: List[ContainerGrant] = []
        #: In-flight lifecycles by container-ID string (kill targets).
        self._runs: dict = {}
        self._heartbeat_proc = self.sim.process(
            self._heartbeat_loop(), name=f"nm-heartbeat-{node.hostname}"
        )

    # -- load introspection (used by the distributed scheduler's sampling) --
    def queue_length(self) -> int:
        """Opportunistic containers queued (Sparrow-style probe answer)."""
        return len(self._opportunistic_queue)

    def estimated_wait(self) -> float:
        """Crude queue-wait estimate: queued containers x mean runtime."""
        return len(self._opportunistic_queue) * self.params.map_task_duration_median_s

    # -- heartbeats -------------------------------------------------------------
    def _heartbeat_loop(self) -> Generator[Event, Any, None]:
        try:
            # Random phase so the 25 NMs' node updates interleave.
            yield self.sim.timeout(self._rng.uniform(0.0, self.params.nm_heartbeat_s))
            while True:
                self.rm.node_update(self)
                yield self.sim.timeout(self.params.nm_heartbeat_s)
        except Interrupt:
            return  # node failed or was decommissioned

    def deactivate(self) -> None:
        """Take this node out of service (failure or decommission).

        Marks the node inactive (schedulers and placement queries skip
        it) and stops the heartbeat loop, so no further node updates
        reach the RM from here.
        """
        self.node.active = False
        if self._heartbeat_proc.is_alive:
            self._heartbeat_proc.interrupt("node deactivated")

    # -- container lifecycle ------------------------------------------------------
    def start_container(
        self, grant: ContainerGrant, spec: LaunchSpec, app: YarnApplication
    ) -> Process:
        """Begin the LOCALIZING -> SCHEDULED -> RUNNING lifecycle."""
        if grant.node is not self.node:
            raise SimulationError(
                f"{grant} was bound to {grant.node.hostname}, not {self.node.hostname}"
            )
        if not self.node.active:
            raise SimulationError(
                f"cannot start {grant} on inactive node {self.node.hostname}"
            )
        run = _ContainerRun(grant, app)
        self._runs[str(grant.container_id)] = run
        run.lifecycle = self.sim.process(
            self._container_lifecycle(grant, spec, app, run),
            name=f"container-{grant.container_id}",
        )
        return run.lifecycle

    def kill_container(self, grant: ContainerGrant, reason: str) -> None:
        """Force-kill an in-flight container (preemption / node loss)."""
        run = self._runs.get(str(grant.container_id))
        if run is None or run.lifecycle is None or not run.lifecycle.is_alive:
            raise SimulationError(
                f"{self.node.hostname}: no killable container {grant}"
            )
        run.kill_reason = reason
        run.lifecycle.interrupt(reason)

    def kill_active_containers(self, reason: str) -> int:
        """Force-kill every killable container here (node failure).

        AM containers, opportunistic containers, and containers of
        frameworks that do not support kills are spared; returns the
        number of kills issued.
        """
        killed = 0
        for run in list(self._runs.values()):
            grant, app = run.grant, run.app
            if grant.container_id.is_application_master:
                continue
            if grant.execution_type is not ExecutionType.GUARANTEED:
                continue
            if not app.supports_container_kill:
                continue
            if grant.rm_container.state not in ("ACQUIRED", "RUNNING"):
                continue
            self.rm.preempt_container(app, grant, reason)
            killed += 1
        return killed

    def _container_lifecycle(
        self,
        grant: ContainerGrant,
        spec: LaunchSpec,
        app: YarnApplication,
        run: _ContainerRun,
    ) -> Generator[Event, Any, None]:
        try:
            yield from self._lifecycle_body(grant, spec, app, run)
        except Interrupt as exc:
            yield from self._reap_killed(grant, app, run, exc)
        finally:
            self._runs.pop(str(grant.container_id), None)

    def _reap_killed(
        self,
        grant: ContainerGrant,
        app: YarnApplication,
        run: _ContainerRun,
        exc: Interrupt,
    ) -> Generator[Event, Any, None]:
        """Tear down a force-killed container and report the loss.

        Logs the NM-side KILLING acknowledgement (Table I′), hands the
        lost instance back to the application for recovery, waits for
        the instance process to unwind, then releases RM-side resources.
        """
        reason = run.kill_reason or str(exc.cause or "killed")
        cimpl = run.cimpl
        if cimpl is not None and cimpl.state in ("LOCALIZING", "SCHEDULED", "RUNNING"):
            cimpl.handle("KILL_CONTAINER")  # -> KILLING  (Table I′)
            cimpl.handle("CONTAINER_RESOURCES_CLEANEDUP")  # -> DONE
        if grant in self.active_containers:
            self.active_containers.remove(grant)
        instance = run.instance
        app.container_killed(grant, instance, reason)
        if instance is not None and instance.is_alive:
            # The instance unwinds (workers catch their interrupts and
            # return); wait so RM accounting happens after it is gone.
            try:
                yield instance
            except Interrupt:
                pass
        self.rm.container_killed(app, grant)
        self.drain_queued()

    def _lifecycle_body(
        self,
        grant: ContainerGrant,
        spec: LaunchSpec,
        app: YarnApplication,
        run: _ContainerRun,
    ) -> Generator[Event, Any, None]:
        sim = self.sim
        params = self.params
        cid = str(grant.container_id)
        rng = self._rng.child(cid)
        yield sim.timeout(params.nm_start_container_s)
        self.active_containers.append(grant)

        cimpl = NMContainerStateMachine(cid, self.logger)
        run.cimpl = cimpl
        cimpl.handle("INIT_CONTAINER")  # NEW -> LOCALIZING  (Table I msg 6)

        # ---- localization ----------------------------------------------------
        yield sim.timeout(params.localization_setup_s)
        # The ContainerLocalizer is a short-lived JVM: CPU-bound start-up
        # that contends with co-located compute (Fig 13d).
        if params.localizer_jvm_cpu_s > 0:
            yield self.node.cpu.submit(params.localizer_jvm_cpu_s, demand=1.0)
        for file in spec.files:
            if params.nm_localization_cache and file.path in self._localized:
                continue  # resource-cache hit: no download
            inflight = self._localizing.get(file.path)
            if params.nm_localization_cache and inflight is not None:
                yield inflight  # another container is fetching it
                continue
            done = sim.event()
            self._localizing[file.path] = done
            try:
                if params.localization_storage == "dedicated":
                    # Section V-B proposal: a per-node caching service
                    # on a dedicated storage class — no shared disks, no
                    # network, immune to dfsIO interference.
                    yield self.localization_disk.submit(file.size_bytes)
                else:
                    elapsed = yield from self.rm.services.hdfs.read(self.node, file)
                    del elapsed  # timing observable via log transitions
                self._localized.add(file.path)
            finally:
                if self._localizing.get(file.path) is done:
                    del self._localizing[file.path]
                done.succeed(None)
        cimpl.handle("RESOURCE_LOCALIZED")  # LOCALIZING -> SCHEDULED (msg 7)

        # ---- NM-side queueing (opportunistic containers only) -----------------
        if grant.execution_type is ExecutionType.OPPORTUNISTIC:
            yield from self._admit_opportunistic(grant)
        # Guaranteed containers had their resources reserved at RM
        # allocation time; they launch immediately.

        # ---- launch ------------------------------------------------------------
        yield sim.timeout(params.launch_script_setup_s)
        if spec.docker:
            # Image load from the local hub + mount (Fig 9b): heavy-tailed.
            yield sim.timeout(
                rng.bounded_pareto(
                    params.docker_overhead_median_s,
                    params.docker_overhead_alpha,
                    params.docker_overhead_cap_s,
                )
            )
        warm = params.jvm_reuse and self._warm_jvms.get(spec.instance_type, 0) > 0
        if warm:
            # Section V-B JVM reuse: attach to a pooled warm JVM —
            # classes loaded, JIT code hot; only a fractional start cost.
            self._warm_jvms[spec.instance_type] -= 1
            yield sim.timeout(params.jvm_reuse_attach_s)
        jvm = rng.lognormal_median(
            params.jvm_start_median_s[spec.instance_type], params.jvm_start_sigma
        )
        if warm:
            jvm *= 1.0 - params.jvm_reuse_discount
        else:
            # Class/jar reads during JVM start: free when page-cache-hot,
            # disk-bound when write pressure evicted the cache (Fig 12).
            class_cold = params.jvm_class_load_bytes * cold_fraction(
                self.node,
                params.jvm_class_load_bytes,
                params.page_cache_bytes,
                params.page_cache_eviction_sensitivity,
            )
            if class_cold > 0:
                yield self.node.disk.submit(class_cold)
        cpu_part = jvm * params.jvm_start_cpu_fraction
        if cpu_part > 0:
            # Class loading + JIT: contends with everything else on the
            # node's CPU (the Fig 13 launch-path slowdown).
            yield self.node.cpu.submit(cpu_part, demand=1.0)
        if jvm > cpu_part:
            yield sim.timeout(jvm - cpu_part)

        cimpl.handle("CONTAINER_LAUNCHED")  # SCHEDULED -> RUNNING (msg 8)
        if grant.rm_container is not None and grant.rm_container.state == "ACQUIRED":
            grant.rm_container.handle("LAUNCHED")

        # ---- run the instance ------------------------------------------------------
        ctx = ContainerContext(
            services=self.rm.services,
            node=self.node,
            grant=grant,
            logger=self.rm.services.log_store.logger(cid, lambda: sim.now),
            app=app,
            warm_jvm=warm,
        )
        if grant.container_id.is_application_master:
            ctx.am_client = self.rm.make_am_client(app)
        instance = sim.process(spec.run(ctx), name=f"instance-{cid}")
        run.instance = instance
        # The NM thread blocks on the launch script until the container
        # exits (section III-B).
        yield instance

        # ---- completion -----------------------------------------------------------
        if params.jvm_reuse:
            # Return the JVM to the warm pool for the next recurring app.
            self._warm_jvms[spec.instance_type] = (
                self._warm_jvms.get(spec.instance_type, 0) + 1
            )
        cimpl.handle("CONTAINER_EXITED_WITH_SUCCESS")
        cimpl.handle("CONTAINER_RESOURCES_CLEANEDUP")
        self.active_containers.remove(grant)
        if grant.execution_type is ExecutionType.OPPORTUNISTIC:
            self.node.free(grant.spec.memory_mb, grant.spec.vcores, tag="opportunistic")
        self.rm.container_finished(app, grant)
        self.drain_queued()

    # -- opportunistic admission ----------------------------------------------------
    def _admit_opportunistic(self, grant: ContainerGrant) -> Generator[Event, Any, None]:
        """Queue until the node has room, then claim resources.

        This wait is the distributed scheduler's queueing delay: the
        randomly chosen node may be busy, and the container sits in
        SCHEDULED until running work drains (Fig 7b's up-to-53 s tail).
        """
        admitted = self.sim.event()
        self._opportunistic_queue.append((grant, admitted))
        self.drain_queued()
        yield admitted

    def drain_queued(self) -> None:
        """Admit queued opportunistic containers that now fit.

        Called whenever resources free on this node — including
        guaranteed-container completions, which the RM routes here.
        """
        if not self.node.active:
            return  # a dead node never admits queued work
        self._drain_opportunistic_queue()

    def _drain_opportunistic_queue(self) -> None:
        while self._opportunistic_queue:
            grant, admitted = self._opportunistic_queue[0]
            if not self.node.fits(grant.spec.memory_mb, grant.spec.vcores):
                return
            self._opportunistic_queue.popleft()
            self.node.reserve(grant.spec.memory_mb, grant.spec.vcores, tag="opportunistic")
            admitted.succeed(None)
