"""A blocking JSON-lines client for the live query server.

Deliberately synchronous (plain sockets, no asyncio): the client runs
in whatever thread the caller already has — a test, the ``query`` CLI,
a benchmark worker — and one request/response round trip is the whole
interaction model.
"""

from __future__ import annotations

import json
import socket
from typing import List, Optional

__all__ = ["LiveClient", "QueryError"]


class QueryError(RuntimeError):
    """The server answered, but with ``ok: false``."""


class LiveClient:
    """One connection to a :class:`~repro.live.server.LiveServer`."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    # -- plumbing ----------------------------------------------------------
    def request(self, op: str, **params) -> dict:
        """One raw round trip; the full response envelope."""
        payload = {"op": op, **params}
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        line = self._reader.readline()
        if not line:
            raise ConnectionError(
                "server closed the connection (slow-consumer drop or shutdown)"
            )
        return json.loads(line.decode("utf-8"))

    def _result(self, op: str, **params):
        response = self.request(op, **params)
        if not response.get("ok"):
            raise QueryError(response.get("error", "query failed"))
        return response["result"]

    # -- operations --------------------------------------------------------
    def apps(self) -> List[dict]:
        """Status rows: app_id, provisional/final, headline delays."""
        return self._result("apps")

    def decomposition(self, app_id: str) -> dict:
        """One application's full per-component breakdown."""
        return self._result("decomposition", app_id=app_id)

    def diagnostics(self) -> dict:
        """The mining ledger plus tailer counters."""
        return self._result("diagnostics")

    def metrics(self) -> str:
        """The registry in Prometheus text exposition format."""
        return self._result("metrics")

    def metrics_state(self) -> dict:
        """The registry's mergeable state (cross-shard aggregation)."""
        return self._result("metrics_state")

    def state(self) -> dict:
        """The session's full miner state (what a router unions)."""
        return self._result("state")

    def drain(self) -> dict:
        """Flush held-back tails; the drained state payload."""
        return self._result("drain")

    def shutdown(self) -> str:
        """Ask the server to stop (after answering)."""
        return self._result("shutdown")

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "LiveClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
