"""Detector for allocated-but-never-used containers (section V-A).

The paper found SPARK-21562 because "many containers only log states
related to NodeManager and ResourceManager but miss states logged by
executor, e.g., log messages 13 and 14" — i.e. Spark requested more
containers than its actual demand.  The detector flags, per
application, worker containers whose workflow is incomplete:

* ``never_launched`` — RM-side states only (ALLOCATED/ACQUIRED/
  RELEASED), no NM or executor log at all;
* ``never_used`` — launched (NM RUNNING and/or a first log line) but no
  task was ever assigned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.events import EventKind
from repro.core.grouping import ApplicationTrace

__all__ = ["BugFinding", "find_unused_containers"]


@dataclass(frozen=True, slots=True)
class BugFinding:
    """One suspicious container."""

    app_id: str
    container_id: str
    #: "never_launched" or "never_used".
    category: str
    #: States that *were* observed, for the report.
    observed_kinds: tuple

    def describe(self) -> str:
        return (
            f"{self.container_id} ({self.category}): observed "
            f"{', '.join(self.observed_kinds) or 'nothing'}"
        )


def find_unused_containers(
    traces: Iterable[ApplicationTrace] | Dict[str, ApplicationTrace],
) -> List[BugFinding]:
    """Scan application traces for incomplete container workflows."""
    if isinstance(traces, dict):
        traces = traces.values()
    findings: List[BugFinding] = []
    for trace in traces:
        for ctrace in trace.worker_containers:
            if ctrace.time_of(EventKind.CONTAINER_ALLOCATED) is None:
                continue  # not an RM-tracked workflow (noise)
            observed = tuple(
                sorted({event.kind.value for event in ctrace.events})
            )
            if not ctrace.was_launched:
                findings.append(
                    BugFinding(trace.app_id, ctrace.container_id, "never_launched", observed)
                )
            elif not ctrace.ran_task:
                findings.append(
                    BugFinding(trace.app_id, ctrace.container_id, "never_used", observed)
                )
    return findings
