"""The Spark workload interface.

A workload tells the driver what the *user code* does: which input
files it opens during initialization (each one costs an RDD + broadcast
creation on the scheduling critical path — section IV-D), whether it is
a Spark-SQL query (catalyst planning cost), and what stages/tasks the
job runs once scheduled.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.spark.tasks import StageSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdfs.filesystem import HdfsFile
    from repro.spark.application import SparkApplication

__all__ = ["SparkWorkload"]


class SparkWorkload:
    """Base class for a simulated Spark program."""

    #: Spark-SQL workloads pay catalyst query planning (Fig 11a).
    is_sql: bool = False

    def prepare(self, services) -> None:
        """Register input data in HDFS.  Called once at submission."""
        raise NotImplementedError

    @property
    def input_files(self) -> List["HdfsFile"]:
        """Files the user code opens during initialization.

        One RDD + one broadcast variable is created per entry; repeats
        are allowed (the Fig 11b opened-files sweep doubles this list).
        """
        raise NotImplementedError

    def build_stages(self, services, app: "SparkApplication") -> List[StageSpec]:
        """The job's stages, sized for ``app``'s executor fleet."""
        raise NotImplementedError
