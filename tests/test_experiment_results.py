"""Tests for figure-result dataclasses (pure computation, no sims)."""

import pytest

from repro.core.stats import DelaySample
from repro.experiments.ablations import AblationResult
from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig6 import Fig6Result
from repro.experiments.fig7 import Fig7Result
from repro.experiments.fig8 import Fig8Result
from repro.experiments.fig9 import Fig9Result
from repro.experiments.fig11 import Fig11Result
from repro.experiments.fig12 import Fig12Result
from repro.experiments.fig13 import Fig13Result
from repro.experiments.optimizations import OptimizationResult
from repro.experiments.table2 import Table2Result
from repro.experiments.table3 import TABLE3_COMPONENTS, Table3Result


def s(*values, name=""):
    return DelaySample(values, name=name)


class TestFig5Result:
    def test_ratio_and_rows(self):
        result = Fig5Result(
            series={
                "0.02GB": {
                    "total": s(1.0, 2.0),
                    "in": s(1.0),
                    "out": s(0.5),
                    "job": s(3.0),
                    "normalized": s(0.7),
                },
                "200GB": {
                    "total": s(4.0, 8.0),
                    "in": s(5.0),
                    "out": s(0.6),
                    "job": s(100.0),
                    "normalized": s(0.1),
                },
            }
        )
        assert result.ratio_p95_largest_vs_smallest() == pytest.approx(4.0)
        text = "\n".join(result.rows())
        assert "200GB" in text and "largest vs smallest" in text


class TestFig6Result:
    def test_accessors(self):
        result = Fig6Result(
            series={
                4: {"total": s(10.0), "cl_cf": s(1.0)},
                16: {"total": s(12.0), "cl_cf": s(3.0)},
            }
        )
        assert result.total_p95(16) == 12.0
        assert "16 executors" in "\n".join(result.rows())


class TestFig7Result:
    def test_rows_render_all_panels(self):
        result = Fig7Result(
            allocation={"ce": s(2.0), "de": s(0.025)},
            queueing={"ce": s(0.1), "de": s(30.0, 50.0)},
            acquisition={0.1: s(0.5, 0.9), 1.0: s(0.4, 0.95)},
        )
        text = "\n".join(result.rows())
        assert "speedup med" in text
        assert "load= 10%" in text and "load=100%" in text


class TestFig8Result:
    def test_rows_mention_bimodality(self):
        result = Fig8Result(
            series={
                "default": {
                    "localization": s(0.5),
                    "driver_localization": s(0.5),
                    "total": s(12.0),
                }
            }
        )
        assert "bimodality" in "\n".join(result.rows())
        assert result.executor_localization("default").p50 == 0.5


class TestFig9Result:
    def test_docker_overheads(self):
        result = Fig9Result(
            by_instance_type={"spe": s(0.7)},
            by_container_type={"default": s(0.7, 0.9), "docker": s(1.1, 1.6)},
        )
        assert result.docker_overhead_median() == pytest.approx(0.55)
        assert result.docker_overhead_p95() > 0


class TestFig11Result:
    def test_opt_tail_reduction(self):
        result = Fig11Result(
            by_workload={
                "wordcount": {"driver": s(3.0), "executor": s(5.0)},
                "sql": {"driver": s(3.0), "executor": s(9.0)},
            },
            by_variant={
                "opt": s(4.0),
                "x1": s(6.0),
                "x2": s(10.0),
                "x3": s(14.0),
                "x4": s(18.0),
            },
        )
        assert result.opt_tail_reduction() == pytest.approx(2.0)
        assert "Future-parallelized" in "\n".join(result.rows())


class TestInterferenceResults:
    def test_fig12_slowdowns(self):
        result = Fig12Result(
            series={
                0: {m: s(1.0) for m in ("total", "in", "out", "localization", "executor", "am")},
                100: {m: s(4.0) for m in ("total", "in", "out", "localization", "executor", "am")},
            }
        )
        assert result.slowdown(100, "total", 95) == pytest.approx(4.0)
        assert "[x 4.0 med" in "\n".join(result.rows())

    def test_fig13_slowdowns(self):
        result = Fig13Result(
            series={
                0: {m: s(2.0) for m in ("total", "in", "out", "driver", "executor", "localization")},
                16: {m: s(3.0) for m in ("total", "in", "out", "driver", "executor", "localization")},
            }
        )
        assert result.slowdown(16, "driver", 50) == pytest.approx(1.5)


class TestTableResults:
    def test_table2_monotonicity(self):
        assert Table2Result({0.1: 200.0, 1.0: 2000.0}).is_monotonic()
        assert not Table2Result({0.1: 2000.0, 1.0: 200.0}).is_monotonic()
        assert "throughput" in "\n".join(Table2Result({0.1: 200.0}).rows())

    def test_table3_rows_cover_components(self):
        result = Table3Result(
            report=None,
            mean_shares={c: 0.1 for c in TABLE3_COMPONENTS},
            critical_path={c: 0.1 for c in TABLE3_COMPONENTS if c != "am"},
        )
        text = "\n".join(result.rows())
        for component in TABLE3_COMPONENTS:
            assert component in text
        assert "JVM reuse" in text  # the optimization column


class TestStudyResults:
    def test_optimization_rows(self):
        result = OptimizationResult(
            jvm_reuse={
                "default": {"driver": s(2.5), "executor": s(6.0), "total": s(14.0)},
                "jvm_reuse": {"driver": s(1.2), "executor": s(4.0), "total": s(12.0)},
            },
            localization={"shared": s(6.0), "dedicated": s(1.2)},
            heartbeat={1.0: {"acquisition_p95": 0.98, "rpcs_per_second": 1.0}},
        )
        text = "\n".join(result.rows())
        assert "JVM reuse" in text and "heartbeat" in text

    def test_ablation_rows(self):
        result = AblationResult(
            eviction={"with_eviction": 9.0, "no_eviction": 1.2},
            gate={"gate_80": s(3.0), "gate_off": s(1.5)},
            localization_cache={"cache_on": 60.0, "cache_off": 170.0},
        )
        text = "\n".join(result.rows())
        assert "eviction" in text and "storm" in text
