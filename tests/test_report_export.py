"""Tests for report export (CSV, compare, ASCII CDF) and trace files."""

import csv

import pytest

from repro.core.stats import DelaySample
from repro.simul.distributions import RandomSource
from repro.workloads.google_trace import (
    google_trace_arrivals,
    load_trace_csv,
    save_trace_csv,
    tpch_query_mix,
)


class TestCsvExport:
    def test_app_csv_round_trip(self, single_app_run, tmp_path):
        _bed, _app, report = single_app_run
        path = report.to_csv(tmp_path / "apps.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert float(rows[0]["total_delay"]) > 0
        assert rows[0]["app_id"].startswith("application_")

    def test_container_csv(self, single_app_run, tmp_path):
        _bed, _app, report = single_app_run
        path = report.containers_to_csv(tmp_path / "containers.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5  # AM + 4 executors
        types = {r["instance_type"] for r in rows}
        assert types == {"spm", "spe"}


class TestCompare:
    def test_self_comparison_is_unity(self, single_app_run):
        _bed, _app, report = single_app_run
        text = report.compare(report)
        assert "total_delay" in text
        # Every slowdown column shows 1.00.
        for line in text.splitlines()[1:]:
            assert "  1.00" in line

    def test_compare_shows_slowdown(self, single_app_run, opportunistic_run):
        _b1, _a1, r1 = single_app_run
        _b2, _a2, r2 = opportunistic_run
        assert "allocation_delay" in r1.compare(r2)


class TestAsciiCdf:
    def test_renders_axes_and_points(self):
        s = DelaySample(range(1, 101), name="demo")
        art = s.ascii_cdf(width=40, height=8)
        assert "demo CDF (n=100)" in art
        assert "*" in art
        assert "100%" in art and "(s)" in art

    def test_empty_sample(self):
        assert DelaySample([]).ascii_cdf() == "(empty sample)"

    def test_single_value(self):
        art = DelaySample([2.5]).ascii_cdf(width=10, height=4)
        assert "*" in art


class TestTraceFiles:
    def test_round_trip(self, tmp_path):
        rng = RandomSource(5)
        arrivals = google_trace_arrivals(20, 2.0, rng.child("a"))
        queries = tpch_query_mix(20, rng.child("q"))
        path = save_trace_csv(tmp_path / "trace.csv", arrivals, queries)
        loaded_arrivals, loaded_queries = load_trace_csv(path)
        assert loaded_queries == queries
        assert loaded_arrivals == pytest.approx(arrivals, abs=0.001)

    def test_mismatched_lengths_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace_csv(tmp_path / "t.csv", [0.0, 1.0], [1])

    def test_empty_file_rejected(self, tmp_path):
        (tmp_path / "t.csv").write_text("arrival_s,query\n")
        with pytest.raises(ValueError, match="empty"):
            load_trace_csv(tmp_path / "t.csv")

    def test_unsorted_rejected(self, tmp_path):
        (tmp_path / "t.csv").write_text("arrival_s,query\n5.0,1\n1.0,2\n")
        with pytest.raises(ValueError, match="sorted"):
            load_trace_csv(tmp_path / "t.csv")

    def test_scenario_replays_trace_file(self, tmp_path):
        from repro.experiments.harness import TraceScenario
        from repro.params import SimulationParams

        rng = RandomSource(6)
        arrivals = google_trace_arrivals(3, 3.0, rng.child("a"))
        queries = [1, 6, 6]
        path = save_trace_csv(tmp_path / "trace.csv", arrivals, queries)
        scenario = TraceScenario(
            trace_file=str(path), params=SimulationParams(num_nodes=5), seed=9
        )
        result = scenario.run()
        assert len(result.report) == 3
        assert result.measured_apps[0].startswith("tpch-q1")
        assert result.measured_apps[1].startswith("tpch-q6")


class TestCliExtensions:
    @pytest.fixture(scope="class")
    def logdir(self, tmp_path_factory, single_app_run):
        bed, _app, _report = single_app_run
        path = tmp_path_factory.mktemp("cli-logs")
        bed.dump_logs(path)
        return path

    def test_cdf_mode(self, logdir, capsys):
        from repro.core.cli import main

        assert main([str(logdir), "--cdf", "total_delay"]) == 0
        assert "CDF" in capsys.readouterr().out

    def test_csv_mode(self, logdir, tmp_path, capsys):
        from repro.core.cli import main

        out = tmp_path / "a.csv"
        assert main([str(logdir), "--csv", str(out)]) == 0
        assert out.exists()

    def test_containers_csv_mode(self, logdir, tmp_path):
        from repro.core.cli import main

        out = tmp_path / "c.csv"
        assert main([str(logdir), "--containers-csv", str(out)]) == 0
        assert out.read_text().count("\n") == 6  # header + 5 containers

    def test_compare_mode(self, logdir, capsys):
        from repro.core.cli import main

        assert main([str(logdir), "--compare", str(logdir)]) == 0
        assert "total_delay" in capsys.readouterr().out

    def test_compare_missing_dir(self, logdir, tmp_path):
        from repro.core.cli import main

        assert main([str(logdir), "--compare", str(tmp_path / "nope")]) == 2
