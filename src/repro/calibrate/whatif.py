"""Counterfactual queries against a fitted model.

Once :func:`repro.calibrate.search.fit` has pinned the simulator to a
mined corpus, a what-if re-simulates the same scenario from the fitted
point with the asked-for overrides applied ("CapacityScheduler →
Opportunistic", "NM heartbeat halved") and reports each delay
component's p50/p95/p99 next to the fitted baseline, with change
factors.

Ratio semantics follow :func:`repro.core.stats.ratio_of`: a component
that is 0 in both runs reads 1.0 ("unchanged"), and a component that is
unmeasurable on either side renders as ``n/a`` in the table and
``null`` in JSON — raw NaN never reaches the output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.report import AnalysisReport
from repro.core.stats import ratio_of
from repro.calibrate.objective import (
    COMPONENTS,
    apply_overrides,
    component_sample,
    mine_scenario,
)
from repro.calibrate.search import FittedModel
from repro.calibrate.space import SCHEDULER_CHOICES, SCHEDULER_KNOB

__all__ = ["WhatIfAnswer", "predict", "whatif", "QUANTILES"]

#: Reported quantiles, the paper's headline points plus the tail.
QUANTILES = (50, 95, 99)


def _json_safe(value: float) -> Optional[float]:
    """NaN → None: JSON output carries null, never ``NaN`` literals."""
    if value is None or math.isnan(value):
        return None
    return value


def _quantile_row(report: AnalysisReport, component: str) -> Dict[str, Any]:
    # component_sample handles the fitted components; anything else
    # ("total_delay") is a headline report metric.
    sample = component_sample(report, component)
    row: Dict[str, Any] = {"n": len(sample)}
    for q in QUANTILES:
        row[f"p{q}"] = _json_safe(sample.percentile(q))
    return row


def predict(
    model: FittedModel, overrides: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Re-simulate from the fitted point (+ optional overrides).

    Returns the predicted decomposition: one p50/p95/p99 row per
    component, JSON-safe.
    """
    scenario = model.replay_scenario()
    if overrides:
        scenario = apply_overrides(scenario, overrides)
    report = mine_scenario(scenario, model.replay_seed)
    return {
        "scenario": model.scenario,
        "replay_seed": model.replay_seed,
        "overrides": dict(overrides or {}),
        "components": {c: _quantile_row(report, c) for c in COMPONENTS},
        "total_delay": _quantile_row(report, "total_delay"),
    }


@dataclass
class WhatIfAnswer:
    """Base-vs-variant decomposition with per-component deltas."""

    scenario: str
    replay_seed: int
    overrides: Dict[str, Any]
    base: Dict[str, Dict[str, Any]]
    variant: Dict[str, Dict[str, Any]]

    def delta(self, component: str, q: int = 50) -> Optional[float]:
        """Change factor variant/base for one component quantile."""
        b = self.base[component].get(f"p{q}")
        v = self.variant[component].get(f"p{q}")
        if b is None or v is None:
            return None
        return _json_safe(ratio_of(b, v))

    def to_dict(self) -> Dict[str, Any]:
        rows = {}
        for component in self._rows():
            rows[component] = {
                "base": self.base[component],
                "variant": self.variant[component],
                "x": {f"p{q}": self.delta(component, q) for q in QUANTILES},
            }
        return {
            "scenario": self.scenario,
            "replay_seed": self.replay_seed,
            "overrides": dict(self.overrides),
            "components": rows,
        }

    def _rows(self) -> List[str]:
        return [*COMPONENTS, "total_delay"]

    def table(self) -> str:
        """The delta table the CLI prints (``n/a`` for unmeasurables)."""
        header = (
            f"{'component':20s}{'base p50':>10s}{'new p50':>10s}{'x':>7s}"
            f"{'base p99':>10s}{'new p99':>10s}{'x':>7s}"
        )

        def cell(value: Optional[float], width: int = 10) -> str:
            if value is None:
                return f"{'n/a':>{width}s}"
            return f"{value:{width}.3f}"

        def xcell(value: Optional[float]) -> str:
            if value is None:
                return f"{'n/a':>7s}"
            return f"{value:7.2f}"

        lines = [header]
        for component in self._rows():
            lines.append(
                f"{component:20s}"
                f"{cell(self.base[component]['p50'])}"
                f"{cell(self.variant[component]['p50'])}"
                f"{xcell(self.delta(component, 50))}"
                f"{cell(self.base[component]['p99'])}"
                f"{cell(self.variant[component]['p99'])}"
                f"{xcell(self.delta(component, 99))}"
            )
        return "\n".join(lines)


def _validate_whatif_overrides(overrides: Mapping[str, Any]) -> None:
    if not overrides:
        raise ValueError("a what-if needs at least one override")
    scheduler = overrides.get(SCHEDULER_KNOB)
    if scheduler is not None and scheduler not in SCHEDULER_CHOICES:
        raise ValueError(
            f"unknown scheduler {scheduler!r} (choices: "
            f"{', '.join(SCHEDULER_CHOICES)})"
        )


def whatif(model: FittedModel, overrides: Mapping[str, Any]) -> WhatIfAnswer:
    """Answer a counterfactual from the fitted model.

    Simulates the fitted baseline and the override variant at the
    model's replay seed and returns both decompositions plus deltas.
    """
    _validate_whatif_overrides(overrides)
    base_scenario = model.replay_scenario()
    variant_scenario = apply_overrides(base_scenario, overrides)
    base_report = mine_scenario(base_scenario, model.replay_seed)
    variant_report = mine_scenario(variant_scenario, model.replay_seed)
    rows = [*COMPONENTS, "total_delay"]

    def decomposition(report: AnalysisReport) -> Dict[str, Dict[str, Any]]:
        out = {c: _quantile_row(report, c) for c in COMPONENTS}
        out["total_delay"] = _quantile_row(report, "total_delay")
        return out

    answer = WhatIfAnswer(
        scenario=model.scenario,
        replay_seed=model.replay_seed,
        overrides=dict(overrides),
        base=decomposition(base_report),
        variant=decomposition(variant_report),
    )
    assert set(answer.base) == set(rows)
    return answer
