"""Table III: per-component contribution to the total scheduling delay.

The paper attributes each delay source a share of the total scheduling
delay (from the section IV-B runs): allocation ~2%, acquisition < 1%,
localization < 1%, launching < 1%, driver-delay and executor-delay
(41%) dominating, AM delay ~35%.

Two attributions are computed:

* **mean share** — mean(component) / mean(total), the naive ratio;
* **critical-path share** — per application, only the components on the
  longest SUBMITTED -> first-task path of the scheduling graph are
  charged; overlapped work (e.g. container allocation proceeding while
  the driver initializes RDDs) contributes nothing.  This matches the
  paper's small numbers for alloc/local/laun, which overlap with the
  in-application work.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.core.checker import SDChecker
from repro.core.report import AnalysisReport
from repro.experiments.common import resolve_scale
from repro.experiments.harness import TraceScenario

__all__ = ["Table3Result", "run_table3", "critical_path_shares"]

#: Paper rows, in Table III order.
TABLE3_COMPONENTS = ("alloc", "acqui", "local", "laun", "driver", "executor", "am")

#: The paper's cause / proposed-optimization columns, verbatim in spirit.
TABLE3_NOTES = {
    "alloc": (
        "resource allocation decisions at ResourceManager",
        "trade-off: use a distributed scheduler",
    ),
    "acqui": (
        "waiting for allocated containers to be acquired by the AM",
        "trade-off: increase heartbeat frequency",
    ),
    "local": (
        "downloading localization files from HDFS",
        "user & design: dedicated storage class / caching service",
    ),
    "laun": (
        "launching AM/executor (JVM start)",
        "user: avoid OS-container overhead",
    ),
    "driver": (
        "Spark driver initialization",
        "trade-off: JVM reuse",
    ),
    "executor": (
        "Spark executor init and task scheduling",
        "trade-off & user: JVM reuse, optimize user init code",
    ),
    "am": (
        "AppMaster scheduling + launching + driver init",
        "(composite of the rows above)",
    ),
}

#: Scheduling-graph edge component -> Table III row.
_EDGE_TO_ROW = {
    "allocation": "alloc",
    "allocation-complete": "alloc",
    "acquisition": "acqui",
    "localization": "local",
    "launching": "laun",
    "driver-delay": "driver",
    "executor-delay": "executor",
}


def critical_path_shares(log_store) -> Dict[str, float]:
    """Aggregate critical-path time per component across all apps."""
    checker = SDChecker()
    traces = checker.group(log_store)
    totals: Dict[str, float] = defaultdict(float)
    grand_total = 0.0
    for trace in traces.values():
        path = checker.graph(trace).critical_path()
        for _a, _b, seconds, component in path:
            row = _EDGE_TO_ROW.get(component)
            grand_total += seconds
            if row is not None:
                totals[row] += seconds
    if grand_total == 0:
        return {}
    return {row: totals.get(row, 0.0) / grand_total for row in TABLE3_COMPONENTS if row != "am"}


@dataclass
class Table3Result:
    report: AnalysisReport
    #: mean(component)/mean(total) — includes overlapped time.
    mean_shares: Dict[str, float]
    #: critical-path attribution — overlap-free.
    critical_path: Dict[str, float]

    def rows(self) -> List[str]:
        lines = ["Table III — contribution of each component to the total delay"]
        lines.append(
            f"  {'component':10s}{'mean share':>12s}{'critical path':>15s}  proposed optimization"
        )
        for row in TABLE3_COMPONENTS:
            mean = self.mean_shares.get(row)
            crit = self.critical_path.get(row)
            mean_s = f"{mean:11.1%}" if mean is not None else "        n/a"
            crit_s = f"{crit:14.1%}" if crit is not None else "           n/a"
            lines.append(
                f"  {row:10s}{mean_s}{crit_s}  {TABLE3_NOTES[row][1]}"
            )
        return lines


def run_table3(scale: str = "small", seed: int = 0) -> Table3Result:
    n_queries = resolve_scale(scale, small=100, paper=2000)
    scenario = TraceScenario(n_queries=n_queries, seed=seed)
    result = scenario.run()
    report = result.report
    return Table3Result(
        report=report,
        mean_shares=report.component_contributions(),
        critical_path=critical_path_shares(result.testbed.log_store),
    )
