"""End-to-end tests for ``python -m repro.analysis`` (the sdlint CLI)."""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, partition, write_baseline
from repro.analysis.cli import main
from repro.analysis.findings import Finding, make_finding

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "sdlint.baseline"


@pytest.fixture()
def scratch_tree(tmp_path):
    """A mutable copy of src/repro the tests can seed violations into."""
    root = tmp_path / "scratch"
    shutil.copytree(
        SRC_ROOT / "repro",
        root / "repro",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    return root


class TestPristine:
    def test_exits_zero_with_checked_in_baseline(self, capsys):
        rc = main(["--root", str(SRC_ROOT), "--baseline", str(BASELINE)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s)" in out
        assert "suppressed by baseline" in out
        assert "unused baseline entry" not in out

    def test_json_output(self, capsys):
        rc = main(["--root", str(SRC_ROOT), "--baseline", str(BASELINE), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["findings"] == []
        # 7 accepted findings: the KILLING SD204 entry retired when the
        # Table I′ taxonomy extension made that state SDchecker-visible.
        assert payload["suppressed"] == 7
        assert payload["unused_baseline"] == []
        assert sorted(payload["passes"]) == [
            "asyncsafety",
            "catalog",
            "determinism",
            "procsafety",
            "statemachines",
        ]


class TestSeededViolations:
    def test_template_drift_fails_the_build(self, scratch_tree, capsys):
        machine_py = scratch_tree / "repro" / "yarn" / "state_machine.py"
        machine_py.write_text(
            machine_py.read_text().replace("Container Transitioned", "Container Moved")
        )
        rc = main(
            ["--root", str(scratch_tree), "--baseline", str(BASELINE), "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["counts"].get("SD101", 0) >= 1
        assert any(
            "Container Moved" in f["message"] for f in payload["findings"]
        )

    def test_unseeded_random_fails_the_build(self, scratch_tree, capsys):
        (scratch_tree / "repro" / "sneaky.py").write_text(
            '"""A module that breaks determinism for the test."""\n'
            "import random\n\n\n"
            "def jitter():\n"
            "    return random.random()\n"
        )
        rc = main(["--root", str(scratch_tree), "--baseline", str(BASELINE)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SD301" in out and "repro/sneaky.py" in out

    def test_wall_clock_fails_the_build(self, scratch_tree, capsys):
        (scratch_tree / "repro" / "clocky.py").write_text(
            '"""A module that reads the host clock for the test."""\n'
            "import time\n\n\n"
            "def now():\n"
            "    return time.time()\n"
        )
        rc = main(["--root", str(scratch_tree), "--baseline", str(BASELINE)])
        assert rc == 1
        assert "SD302" in capsys.readouterr().out

    def test_pass_selection_limits_the_scan(self, scratch_tree, capsys):
        (scratch_tree / "repro" / "sneaky.py").write_text(
            '"""Determinism violation, invisible to the catalog pass."""\n'
            "import random\n\n\n"
            "def jitter():\n"
            "    return random.random()\n"
        )
        rc = main(
            [
                "--root",
                str(scratch_tree),
                "--baseline",
                str(BASELINE),
                "--pass",
                "catalog",
            ]
        )
        assert rc == 0
        assert "SD301" not in capsys.readouterr().out


class TestBaselineWorkflow:
    def test_write_then_clean(self, scratch_tree, tmp_path, capsys):
        (scratch_tree / "repro" / "sneaky.py").write_text(
            '"""A accepted determinism deviation for the test."""\n'
            "import random\n\n\n"
            "def jitter():\n"
            "    return random.random()\n"
        )
        baseline = tmp_path / "accepted.baseline"
        rc = main(
            ["--root", str(scratch_tree), "--baseline", str(baseline), "--write-baseline"]
        )
        assert rc == 0 and baseline.is_file()
        capsys.readouterr()
        rc = main(["--root", str(scratch_tree), "--baseline", str(baseline)])
        assert rc == 0
        assert "suppressed by baseline" in capsys.readouterr().out

    def test_unused_entries_are_reported_not_fatal(self, tmp_path, capsys):
        baseline = tmp_path / "stale.baseline"
        baseline.write_text(
            BASELINE.read_text() + "SD301 repro/gone.py stale entry\n"
        )
        rc = main(["--root", str(SRC_ROOT), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "unused baseline entry: SD301 repro/gone.py stale entry" in out

    def test_check_baseline_fresh_and_stale(self, tmp_path, capsys):
        rc = main(
            [
                "--root",
                str(SRC_ROOT),
                "--baseline",
                str(BASELINE),
                "--check-baseline",
            ]
        )
        assert rc == 0
        assert "up to date" in capsys.readouterr().out
        stale = tmp_path / "stale.baseline"
        stale.write_text(BASELINE.read_text() + "SD301 repro/gone.py stale\n")
        rc = main(
            ["--root", str(SRC_ROOT), "--baseline", str(stale), "--check-baseline"]
        )
        assert rc == 1
        assert "stale" in capsys.readouterr().out

    def test_partition_roundtrip(self, tmp_path):
        findings = [
            make_finding("SD301", "a.py", 3, "one"),
            make_finding("SD302", "b.py", 9, "two"),
        ]
        baseline = tmp_path / "b.txt"
        write_baseline(baseline, findings[:1])
        active, suppressed, unused = partition(findings, load_baseline(baseline))
        assert [f.rule for f in active] == ["SD302"]
        assert [f.rule for f in suppressed] == ["SD301"]
        assert unused == []

    def test_baseline_key_ignores_line_numbers(self):
        a = Finding("SD301", "error", "a.py", 3, "same message")
        b = Finding("SD301", "error", "a.py", 99, "same message")
        assert a.key == b.key
