"""Unit + property tests for Resource, Store and FairShareResource."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simul.engine import SimulationError, Simulator
from repro.simul.resources import FairShareResource, Resource, Store


class TestResource:
    def test_grants_up_to_capacity_immediately(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2 = res.request(), res.request()
        sim.run()
        assert r1.processed and r2.processed
        assert res.in_use == 2 and res.available == 0

    def test_excess_requests_queue_fifo(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(name, hold):
            req = res.request()
            yield req
            order.append((name, sim.now))
            yield sim.timeout(hold)
            res.release(req)

        sim.process(user("a", 2.0))
        sim.process(user("b", 1.0))
        sim.process(user("c", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]

    def test_multi_unit_requests(self, sim):
        res = Resource(sim, capacity=4)
        big = res.request(3)
        small = res.request(2)  # must wait: only 1 free
        sim.run()
        assert big.processed and not small.triggered
        res.release(big)
        sim.run()
        assert small.processed

    def test_request_larger_than_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=2).request(3)

    def test_cancel_ungranted_request(self, sim):
        res = Resource(sim, capacity=1)
        held = res.request()
        waiting = res.request()
        sim.run()
        res.release(waiting)  # cancel while queued
        assert res.queue_length == 0
        res.release(held)
        assert res.available == 1

    def test_over_release_detected(self, sim):
        res = Resource(sim, capacity=1)
        req = res.request()
        sim.run()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_zero_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = store.get()
        assert got.triggered and got.value == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        results = []

        def consumer():
            item = yield store.get()
            results.append((sim.now, item))

        sim.process(consumer())

        def producer():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(producer())
        sim.run()
        assert results == [(3.0, "late")]

    def test_fifo_ordering_of_items_and_getters(self, sim):
        store = Store(sim)
        results = []

        def consumer(name):
            item = yield store.get()
            results.append((name, item))

        sim.process(consumer("c1"))
        sim.process(consumer("c2"))
        store.put(1)
        store.put(2)
        sim.run()
        assert results == [("c1", 1), ("c2", 2)]

    def test_len_counts_buffered_items(self, sim):
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert len(store) == 2


class TestFairShareResource:
    def test_single_job_runs_at_full_capacity(self, sim):
        res = FairShareResource(sim, 100.0)
        done = res.submit(250.0)
        sim.run()
        assert done.processed
        assert sim.now == pytest.approx(2.5)

    def test_two_equal_jobs_share_evenly(self, sim):
        res = FairShareResource(sim, 100.0)
        d1 = res.submit(100.0)
        d2 = res.submit(100.0)
        sim.run()
        # Both at 50/s: both finish at t=2.
        assert d1.value == pytest.approx(2.0)
        assert d2.value == pytest.approx(2.0)

    def test_demand_cap_limits_uncontended_rate(self, sim):
        res = FairShareResource(sim, 100.0)
        res.submit(50.0, demand=10.0)
        sim.run()
        assert sim.now == pytest.approx(5.0)

    def test_staggered_arrival_slows_first_job(self, sim):
        res = FairShareResource(sim, 100.0)
        marks = {}

        def job(name, work, start):
            yield sim.timeout(start)
            yield res.submit(work)
            marks[name] = sim.now

        sim.process(job("a", 100.0, 0.0))
        sim.process(job("b", 100.0, 0.5))
        sim.run()
        # a: 50 done alone by 0.5, then shares -> finishes at 1.5.
        assert marks["a"] == pytest.approx(1.5)
        assert marks["b"] == pytest.approx(2.0)

    def test_zero_work_completes_instantly(self, sim):
        res = FairShareResource(sim, 10.0)
        done = res.submit(0.0)
        assert done.triggered

    def test_slowdown_reports_oversubscription(self, sim):
        res = FairShareResource(sim, 10.0)
        res.submit(1000.0, demand=10.0)
        res.submit(1000.0, demand=20.0)
        assert res.slowdown() == pytest.approx(3.0)

    def test_negative_work_rejected(self, sim):
        with pytest.raises(SimulationError):
            FairShareResource(sim, 10.0).submit(-1.0)

    def test_tiny_residual_work_terminates(self, sim):
        # Regression: FP residue used to livelock the wake-up loop.
        res = FairShareResource(sim, 524288000.0)  # 500 MB/s
        for _ in range(3):
            res.submit(524288000.0 / 3)
        sim.run()
        assert res.active_jobs == 0
        assert sim.now < 10.0

    @settings(max_examples=30, deadline=None)
    @given(
        works=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=6),
        capacity=st.floats(min_value=1.0, max_value=1e3),
    )
    def test_work_conservation(self, works, capacity):
        """Total service time >= total work / capacity (no free lunch),
        and every job completes."""
        sim = Simulator()
        res = FairShareResource(sim, capacity)
        done = [res.submit(w) for w in works]
        sim.run()
        assert all(d.processed for d in done)
        assert sim.now >= sum(works) / capacity - 1e-6

    @settings(max_examples=30, deadline=None)
    @given(
        work=st.floats(min_value=1.0, max_value=1e4),
        n_competitors=st.integers(min_value=0, max_value=8),
    )
    def test_contention_never_speeds_up(self, work, n_competitors):
        """A job with competitors finishes no earlier than alone."""

        def run(n):
            sim = Simulator()
            res = FairShareResource(sim, 100.0)
            target = res.submit(work)
            for _ in range(n):
                res.submit(work)
            sim.run_until_complete_noop = None
            while not target.triggered:
                sim.step()
            return target.value

        assert run(n_competitors) >= run(0) - 1e-9
