"""Acceptance + determinism suite for the fit driver.

Pins the ISSUE's acceptance properties:

* **self-fit identity** — fitting a preset against its own mined logs
  scores the baseline trial exactly 0.0 and selects it;
* **parallel determinism** — the serialized artifact is byte-identical
  at ``jobs=1`` and ``jobs>1`` (Hypothesis-driven over search seeds);
* **seed stability** — the same seed reproduces the same artifact,
  different seeds draw different random trials;
* **golden snapshot** — one full small fit on ``diurnal-burst`` is
  pinned byte-for-byte in ``tests/data/`` (regen via
  ``tests/data/regen_golden.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.calibrate import (
    FittedModel,
    Knob,
    ParameterSpace,
    fit,
    resolve_fit_jobs,
    self_target,
)
from repro.workloads.scenarios import get_scenario

DATA = Path(__file__).resolve().parent / "data"
GOLDEN_FIT = DATA / "calibrate_diurnal_burst_fitted.json"

#: A two-knob space keeps hypothesis examples cheap: each example is
#: still full simulate+mine trials.
SMALL_SPACE = ParameterSpace(
    (
        Knob("nm_heartbeat_s", low=0.5, high=2.0, scale="log", grid=2),
        Knob("driver_init_median_s", low=1.0, high=4.0, scale="log", grid=2),
    )
)

_FIT_SETTINGS = settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestSelfFit:
    def test_baseline_trial_scores_exactly_zero(self):
        model = fit(
            "diurnal-burst", seed=5, grid_limit=1, random_trials=1, jobs=1,
            space=SMALL_SPACE,
        )
        baseline = model.trials[0]
        assert baseline.kind == "baseline"
        assert baseline.overrides == {}
        assert baseline.error == 0.0
        assert all(v == 0.0 for v in baseline.component_errors.values())
        assert model.best_index == 0
        assert model.best.error == 0.0

    def test_fitted_params_round_trip_and_replay(self):
        model = fit(
            "diurnal-burst", seed=5, grid_limit=1, random_trials=0, jobs=1,
            space=SMALL_SPACE,
        )
        params = model.params()
        assert params.to_dict() == model.fitted_params
        replay = model.replay_scenario()
        assert replay.name == "diurnal-burst"
        assert replay.scheduler == model.fitted_scheduler

    def test_explicit_target_matches_self_target(self):
        scenario = get_scenario("diurnal-burst")
        target = self_target(scenario, scenario.default_seed)
        model = fit(
            scenario, target, seed=5, grid_limit=1, random_trials=0, jobs=1,
            space=SMALL_SPACE,
        )
        assert model.trials[0].error == 0.0
        assert model.target == target


class TestDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @_FIT_SETTINGS
    def test_artifact_byte_identical_across_jobs(self, seed):
        kwargs = dict(
            grid_limit=1, random_trials=2, space=SMALL_SPACE, seed=seed
        )
        serial = fit("diurnal-burst", jobs=1, **kwargs)
        parallel = fit("diurnal-burst", jobs=4, **kwargs)
        assert serial.dumps() == parallel.dumps()

    def test_same_seed_same_artifact(self):
        kwargs = dict(
            grid_limit=1, random_trials=2, jobs=1, space=SMALL_SPACE
        )
        a = fit("diurnal-burst", seed=9, **kwargs)
        b = fit("diurnal-burst", seed=9, **kwargs)
        assert a.dumps() == b.dumps()

    def test_different_seeds_draw_different_random_trials(self):
        kwargs = dict(
            grid_limit=0, random_trials=2, jobs=1, space=SMALL_SPACE
        )
        a = fit("diurnal-burst", seed=1, **kwargs)
        b = fit("diurnal-burst", seed=2, **kwargs)
        # grid_limit=0 skips the grid: baseline + randoms only.
        assert [t.kind for t in a.trials] == ["baseline", "random", "random"]
        assert [t.overrides for t in a.trials if t.kind == "random"] != [
            t.overrides for t in b.trials if t.kind == "random"
        ]

    def test_random_trial_values_come_from_named_substreams(self):
        from repro.simul.distributions import RandomSource

        model = fit(
            "diurnal-burst", seed=4, grid_limit=0, random_trials=2, jobs=1,
            space=SMALL_SPACE,
        )
        rng = RandomSource(4, "calibrate.fit")
        expected = [
            SMALL_SPACE.sample_point(rng.child(f"trial.{i}")) for i in range(2)
        ]
        got = [t.overrides for t in model.trials if t.kind == "random"]
        assert got == expected


class TestArtifact:
    @pytest.fixture(scope="class")
    def model(self):
        return fit(
            "diurnal-burst", seed=5, grid_limit=1, random_trials=1, jobs=1,
            space=SMALL_SPACE,
        )

    def test_save_load_round_trip(self, model, tmp_path):
        path = model.save(tmp_path / "fm.json")
        loaded = FittedModel.load(path)
        assert loaded.dumps() == model.dumps()
        assert loaded.best.error == model.best.error

    def test_artifact_is_versioned_json(self, model, tmp_path):
        payload = json.loads(model.save(tmp_path / "fm.json").read_text())
        assert payload["format"] == "repro.calibrate/fitted-model"
        assert payload["version"] == 1
        assert payload["best_error"] == 0.0

    def test_wrong_format_rejected(self, model):
        payload = model.to_dict()
        payload["format"] = "something/else"
        with pytest.raises(ValueError, match="not a fitted-model artifact"):
            FittedModel.from_dict(payload)

    def test_wrong_version_rejected(self, model):
        payload = model.to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="unsupported fitted-model version"):
            FittedModel.from_dict(payload)

    def test_best_index_out_of_range_rejected(self, model):
        payload = model.to_dict()
        payload["best_index"] = 42
        with pytest.raises(ValueError, match="out of range"):
            FittedModel.from_dict(payload)

    def test_drifted_params_blob_rejected(self, model):
        payload = model.to_dict()
        payload["fitted_params"]["nm_hearbeat_s"] = 0.5
        with pytest.raises(ValueError, match="unknown SimulationParams field"):
            FittedModel.from_dict(payload)

    def test_unreadable_path_raises_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read fitted model"):
            FittedModel.load(tmp_path / "absent.json")


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_fit_jobs(3, 10) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            resolve_fit_jobs(0, 10)

    def test_auto_is_bounded(self):
        jobs = resolve_fit_jobs("auto", 2)
        assert 1 <= jobs <= 2


class TestGoldenFit:
    def test_snapshot_exists(self):
        assert GOLDEN_FIT.exists(), (
            "missing golden fitted model; run "
            "PYTHONPATH=src python tests/data/regen_golden.py"
        )

    def test_fit_reproduces_golden_snapshot(self):
        model = fit(
            "diurnal-burst", seed=7, grid_limit=2, random_trials=2, jobs=1
        )
        assert model.dumps() == GOLDEN_FIT.read_text(encoding="utf-8")
