"""``python -m repro.calibrate`` — fit, predict, and what-if.

Three subcommands over the calibration engine:

* ``fit`` — search simulator parameters until the mined decomposition
  of the replay scenario matches a target corpus (or the scenario
  itself), writing a versioned fitted-model artifact;
* ``predict`` — re-simulate from a fitted model and print the
  predicted per-component decomposition;
* ``whatif`` — answer a counterfactual ("scheduler swapped", "NM
  heartbeat halved") with a per-component delta table.

Errors (unknown preset, malformed artifact, bad override) print to
stderr and exit 2 — never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.calibrate.objective import TargetDecomposition
from repro.calibrate.search import FittedModel, fit
from repro.calibrate.space import DEFAULT_SPACE, SCHEDULER_KNOB
from repro.calibrate.whatif import predict, whatif
from repro.workloads.scenarios.presets import list_scenarios

__all__ = ["main", "build_arg_parser"]


class _CliError(Exception):
    """A user-facing error: message to stderr, exit 2."""


def _jobs_arg(value: str):
    if value == "auto":
        return value
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a worker count or 'auto', got {value!r}"
        ) from None
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {jobs}")
    return jobs


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.calibrate",
        description=(
            "Fit the simulator to mined scheduling-delay decompositions "
            "and answer counterfactual queries from the fitted model."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fit_p = sub.add_parser(
        "fit", help="search simulator parameters against a mined target"
    )
    fit_p.add_argument(
        "--scenario",
        default="diurnal-burst",
        help="replay scenario preset (see 'python -m repro.experiments "
        "scenario --list'); default: diurnal-burst",
    )
    fit_p.add_argument(
        "--target",
        metavar="LOGDIR",
        default=None,
        help="mine this log directory as the fit target (default: the "
        "scenario's own logs — a self-calibration run)",
    )
    fit_p.add_argument("--seed", type=int, default=0, help="search seed")
    fit_p.add_argument(
        "--replay-seed",
        type=int,
        default=None,
        help="simulation seed for every trial (default: the preset's)",
    )
    fit_p.add_argument(
        "--grid",
        type=int,
        default=8,
        help="seeded grid trials, 0 to skip the grid (default 8)",
    )
    fit_p.add_argument(
        "--random", type=int, default=8, help="random-search trials (default 8)"
    )
    fit_p.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        metavar="N",
        help="trial worker processes, or 'auto' (artifact is byte-"
        "identical either way)",
    )
    fit_p.add_argument(
        "--out",
        default="fitted-model.json",
        help="artifact path (default fitted-model.json)",
    )
    fit_p.add_argument(
        "--json", action="store_true", help="print the artifact JSON to stdout"
    )

    predict_p = sub.add_parser(
        "predict", help="re-simulate the fitted model's decomposition"
    )
    predict_p.add_argument("model", help="fitted-model artifact path")
    predict_p.add_argument(
        "--set",
        dest="sets",
        action="append",
        default=[],
        metavar="KNOB=VALUE",
        help="extra override on top of the fitted point (repeatable)",
    )
    predict_p.add_argument("--json", action="store_true")

    whatif_p = sub.add_parser(
        "whatif", help="per-component deltas for a counterfactual"
    )
    whatif_p.add_argument("model", help="fitted-model artifact path")
    whatif_p.add_argument(
        "--set",
        dest="sets",
        action="append",
        default=[],
        metavar="KNOB=VALUE",
        help="override a knob (e.g. scheduler=opportunistic); repeatable",
    )
    whatif_p.add_argument(
        "--scale",
        dest="scales",
        action="append",
        default=[],
        metavar="KNOB=FACTOR",
        help="multiply a fitted numeric knob (e.g. nm_heartbeat_s=0.5); "
        "repeatable",
    )
    whatif_p.add_argument("--json", action="store_true")
    return parser


# -- override parsing ------------------------------------------------------
def _split_kv(text: str, flag: str) -> (str, str):
    if "=" not in text:
        raise _CliError(f"{flag} expects KNOB=VALUE, got {text!r}")
    key, value = text.split("=", 1)
    return key.strip(), value.strip()


def _coerce_value(key: str, text: str, defaults: Dict[str, Any]) -> Any:
    """Parse an override value by the knob's declared type."""
    if key == SCHEDULER_KNOB:
        return text
    if key not in defaults:
        raise _CliError(
            f"unknown knob {key!r} (SimulationParams fields or "
            f"{SCHEDULER_KNOB!r})"
        )
    current = defaults[key]
    try:
        if isinstance(current, bool):
            if text.lower() in ("true", "1", "yes", "on"):
                return True
            if text.lower() in ("false", "0", "no", "off"):
                return False
            raise ValueError(text)
        if isinstance(current, int):
            return int(text)
        if isinstance(current, float):
            return float(text)
    except ValueError:
        raise _CliError(
            f"cannot parse {text!r} as {type(current).__name__} for "
            f"knob {key!r}"
        ) from None
    return text


def _parse_overrides(
    sets: List[str], scales: List[str], fitted: Dict[str, Any]
) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for item in sets:
        key, value = _split_kv(item, "--set")
        overrides[key] = _coerce_value(key, value, fitted)
    for item in scales:
        key, value = _split_kv(item, "--scale")
        if key == SCHEDULER_KNOB:
            raise _CliError("--scale cannot apply to the scheduler knob")
        if key not in fitted:
            raise _CliError(f"unknown knob {key!r} for --scale")
        base = fitted[key]
        if isinstance(base, bool) or not isinstance(base, (int, float)):
            raise _CliError(f"--scale needs a numeric knob, {key!r} is not")
        try:
            factor = float(value)
        except ValueError:
            raise _CliError(
                f"--scale {key} needs a numeric factor, got {value!r}"
            ) from None
        scaled = base * factor
        overrides[key] = int(round(scaled)) if isinstance(base, int) else scaled
    return overrides


# -- subcommands -----------------------------------------------------------
def _load_model(path: str) -> FittedModel:
    try:
        return FittedModel.load(path)
    except ValueError as exc:
        raise _CliError(str(exc)) from None


def _cmd_fit(args: argparse.Namespace) -> int:
    if args.scenario not in list_scenarios():
        raise _CliError(
            f"unknown scenario preset {args.scenario!r} "
            f"(have: {', '.join(list_scenarios())})"
        )
    target: Optional[TargetDecomposition] = None
    if args.target is not None:
        from repro.core.checker import SDChecker

        report = SDChecker().analyze(args.target)
        if not len(report):
            raise _CliError(
                f"target corpus {args.target!r} mined zero applications"
            )
        target = TargetDecomposition.from_report(
            report, source=f"logdir:{args.target}"
        )
    model = fit(
        args.scenario,
        target,
        seed=args.seed,
        grid_limit=args.grid,
        random_trials=args.random,
        jobs=args.jobs,
        replay_seed=args.replay_seed,
        space=DEFAULT_SPACE,
    )
    path = model.save(args.out)
    if args.json:
        print(model.dumps(), end="")
    else:
        best = model.best
        print(
            f"fit: scenario={model.scenario} target={model.target.source} "
            f"trials={len(model.trials)} jobs={args.jobs}"
        )
        print(
            f"best: trial #{best.index} ({best.kind}) error="
            f"{best.error:.6f}" if best.error is not None else "best: none scored"
        )
        for knob, value in sorted(best.overrides.items()):
            print(f"  {knob} = {value}")
        if not best.overrides:
            print("  (baseline parameters — no overrides)")
        print(f"artifact: {path}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    overrides = _parse_overrides(args.sets, [], model.fitted_params)
    try:
        result = predict(model, overrides)
    except (ValueError, KeyError) as exc:
        raise _CliError(str(exc)) from None
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    print(
        f"predict: scenario={result['scenario']} "
        f"replay_seed={result['replay_seed']}"
    )
    header = f"{'component':20s}{'n':>6s}" + "".join(
        f"{'p' + str(q):>10s}" for q in (50, 95, 99)
    )
    print(header)
    rows = dict(result["components"])
    rows["total_delay"] = result["total_delay"]
    for component, row in rows.items():
        cells = "".join(
            f"{row['p' + str(q)]:10.3f}" if row[f"p{q}"] is not None else f"{'n/a':>10s}"
            for q in (50, 95, 99)
        )
        print(f"{component:20s}{row['n']:6d}{cells}")
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    overrides = _parse_overrides(args.sets, args.scales, model.fitted_params)
    try:
        answer = whatif(model, overrides)
    except (ValueError, KeyError) as exc:
        raise _CliError(str(exc)) from None
    if args.json:
        print(json.dumps(answer.to_dict(), indent=2, sort_keys=True))
        return 0
    pretty = ", ".join(f"{k}={v}" for k, v in sorted(answer.overrides.items()))
    print(f"whatif: scenario={answer.scenario} [{pretty}]")
    print(answer.table())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_arg_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    try:
        if args.command == "fit":
            return _cmd_fit(args)
        if args.command == "predict":
            return _cmd_predict(args)
        return _cmd_whatif(args)
    except _CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
