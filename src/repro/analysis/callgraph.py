"""Whole-program symbol resolution and call graph for sdlint.

The SD1xx-SD3xx passes are *per-file* AST walks: enough for catalog
coverage and syntactic determinism hazards, but blind to everything PRs
2-5 moved behind concurrency boundaries.  Whether a blocking call is
reachable from an ``async def`` body, or whether a function submitted
to a :class:`~concurrent.futures.ProcessPoolExecutor` mutates module
globals three calls down, is a *whole-program* question.  This module
answers it, statically, in two layers:

* :class:`ProjectIndex` — every module under the scan root parsed once,
  with import aliases resolved (including the relative imports the
  per-file ``_ModuleNames`` historically dropped) into a project-wide
  symbol table.  :meth:`ProjectIndex.resolve_dotted` canonicalizes a
  dotted name across chained aliases: ``repro.pkg.compat.now`` follows
  ``compat``'s own ``from time import time as now`` back to
  ``time.time``, so in-package re-exports no longer hide banned calls.
* :class:`CallGraph` — function-level call edges on top of the index,
  with best-effort *type* resolution for the receiver patterns the
  codebase actually uses: ``self.method()``, ``self.attr.method()``
  where the attribute type is pinned by an ``__init__`` annotation or
  constructor call, locals assigned from known constructors or from
  calls with annotated return types, and ``with Cls() as name`` blocks.
  :meth:`CallGraph.reachable_blocking` style queries return the
  shortest call chain, so a finding can *name the path* from an async
  body to the ``open()`` five frames down.

Everything is a pure AST analysis; nothing is imported or executed.
Resolution is deliberately best-effort and *under*-approximate: an
unresolvable receiver contributes no edge, so the passes built on top
err toward silence, never toward noise — the same stance the SD3xx
lint takes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.analysis.extract import iter_source_files

__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "module_name_of",
]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names whose call on a module-level object mutates it in place
#: (the SD501 detector's "writes through a global" set).
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
        "__setitem__",
    }
)


def module_name_of(path: str) -> str:
    """Dotted module name of a project-relative POSIX path.

    ``repro/live/server.py`` -> ``repro.live.server``;
    ``repro/live/__init__.py`` -> ``repro.live``.
    """
    parts = path.split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def resolve_relative_import(
    module: str, is_package: bool, level: int, target: Optional[str]
) -> Optional[str]:
    """Absolute module named by a ``from <dots><target> import ...``.

    ``module`` is the importing module's dotted name, ``is_package``
    whether it is a package ``__init__``.  Returns ``None`` when the
    import climbs above the project root.
    """
    parts = module.split(".") if module else []
    if not is_package:
        parts = parts[:-1]  # the containing package
    climb = level - 1
    if climb > len(parts):
        return None
    if climb:
        parts = parts[:-climb]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts) if parts else None


@dataclass
class FunctionInfo:
    """One function or method definition, with its resolved call sites."""

    qualname: str
    module: str
    path: str
    node: _FuncNode
    #: Owning class qualname, None for module-level functions.
    cls: Optional[str]
    is_async: bool
    #: Resolved project-internal callees: (callee qualname, call lineno).
    calls: List[Tuple[str, int]] = field(default_factory=list)
    #: Resolved external callees: (canonical dotted name, call lineno).
    external_calls: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def short_name(self) -> str:
        """``LiveSession.poll`` / ``tail_chunk`` — human-sized label."""
        parts = self.qualname.split(".")
        if self.cls is not None:
            return ".".join(parts[-2:])
        return parts[-1]


@dataclass
class ClassInfo:
    """One class definition with the pickling-relevant structure."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    #: Base names as written, resolved to dotted names where possible.
    bases: List[str]
    #: method name -> function qualname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: instance attribute -> class qualname (project classes only).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: container-valued attribute -> *element* class qualname, from
    #: annotations like ``List[DirectoryTailer]`` — what a ``for`` loop
    #: over the attribute binds.
    attr_elem_types: Dict[str, str] = field(default_factory=dict)
    defines_slots: bool = False
    is_dataclass: bool = False
    has_pickle_protocol: bool = False

    @property
    def short_name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleInfo:
    """One parsed module: its tree, aliases, and top-level bindings."""

    name: str
    path: str
    tree: ast.Module
    is_package: bool
    #: local alias -> canonical dotted target (modules and names both).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: Top-level assigned names (the SD501 global-mutation universe).
    global_names: Set[str] = field(default_factory=set)
    #: top-level name -> dotted constructor of its assigned value, for
    #: module-level singletons (``_SOURCE = RandomSource(7)``).
    global_instances: Dict[str, str] = field(default_factory=dict)


class ProjectIndex:
    """Every module under the root, parsed once, symbols resolved."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.modules_by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def build(cls, root: Path) -> "ProjectIndex":
        """Parse every source file under ``root`` (or ``root/repro``)."""
        root = Path(root)
        sources: Dict[str, str] = {}
        for path in iter_source_files(root):
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
            sources[rel] = path.read_text()
        return cls.from_sources(sources)

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "ProjectIndex":
        """Build from a ``{project-relative path: source}`` mapping."""
        index = cls()
        for path in sorted(sources):
            try:
                tree = ast.parse(sources[path], filename=path)
            except SyntaxError:
                continue
            index._add_module(path, tree)
        for info in index.modules.values():
            index._collect_definitions(info)
        for info in sorted(index.classes.values(), key=lambda c: c.qualname):
            index._infer_attr_types(info)
        return index

    def _add_module(self, path: str, tree: ast.Module) -> None:
        name = module_name_of(path)
        info = ModuleInfo(
            name=name,
            path=path,
            tree=tree,
            is_package=path.endswith("__init__.py"),
        )
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        info.aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``; the dotted tail is
                        # spelled at the call site.
                        top = alias.name.split(".")[0]
                        info.aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = (
                    resolve_relative_import(
                        name, info.is_package, node.level, node.module
                    )
                    if node.level
                    else node.module
                )
                if base is None:
                    continue
                for alias in node.names:
                    info.aliases[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.global_names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    info.global_names.add(node.target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.global_names.add(node.name)
            elif isinstance(node, ast.ClassDef):
                info.global_names.add(node.name)
        self.modules[name] = info
        self.modules_by_path[path] = info

    def _collect_definitions(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(info, node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                    dotted = _dotted_of(value.func)
                    if dotted is not None:
                        resolved = self.resolve_dotted_in(info, dotted)
                        if resolved is not None:
                            info.global_instances[target.id] = resolved

    def _add_function(
        self, info: ModuleInfo, node: _FuncNode, cls: Optional[str]
    ) -> None:
        owner = cls if cls is not None else info.name
        qualname = f"{owner}.{node.name}"
        self.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=info.name,
            path=info.path,
            node=node,
            cls=cls,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        # Nested defs become their own roots (``async def _serve`` inside
        # a sync CLI runner must still get the SD401 treatment); their
        # bodies are excluded from the enclosing function's call sites.
        for stmt in ast.walk(node):
            if stmt is node or not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            nested_qual = f"{qualname}.<locals>.{stmt.name}"
            if nested_qual not in self.functions:
                self.functions[nested_qual] = FunctionInfo(
                    qualname=nested_qual,
                    module=info.name,
                    path=info.path,
                    node=stmt,
                    cls=cls,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                )

    def _add_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{info.name}.{node.name}"
        bases: List[str] = []
        for base in node.bases:
            dotted = _dotted_of(base)
            if dotted is not None:
                bases.append(self.resolve_dotted_in(info, dotted) or dotted)
        is_dataclass = any(
            (_dotted_of(dec) or _dotted_of(getattr(dec, "func", None) or dec) or "")
            .split(".")[-1]
            == "dataclass"
            for dec in node.decorator_list
        )
        cls_info = ClassInfo(
            qualname=qualname,
            module=info.name,
            path=info.path,
            node=node,
            bases=bases,
            is_dataclass=is_dataclass,
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, stmt, cls=qualname)
                cls_info.methods[stmt.name] = f"{qualname}.{stmt.name}"
                if stmt.name in ("__getstate__", "__setstate__", "__reduce__",
                                 "__reduce_ex__"):
                    cls_info.has_pickle_protocol = True
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        cls_info.defines_slots = True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"
                ):
                    cls_info.defines_slots = True
        self.classes[qualname] = cls_info

    # -- dotted-name canonicalization --------------------------------------
    def resolve_dotted(self, dotted: str, _depth: int = 0) -> str:
        """Follow chained project aliases to the canonical dotted name.

        ``repro.pkg.compat.now`` -> (compat: ``from time import time as
        now``) -> ``time.time``.  Names that never leave the project (or
        are already external) come back unchanged-or-canonicalized;
        resolution is bounded to keep alias cycles finite.
        """
        if _depth > 8:
            return dotted
        parts = dotted.split(".")
        # Longest module prefix first, so submodule symbols win over
        # same-named attributes of parent packages.
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            info = self.modules.get(prefix)
            if info is None:
                continue
            head = parts[cut]
            target = info.aliases.get(head)
            if target is None:
                return dotted  # a real definition (or unknown attr) here
            rest = parts[cut + 1 :]
            resolved = ".".join([target] + rest)
            return self.resolve_dotted(resolved, _depth + 1)
        return dotted

    def resolve_dotted_in(
        self, info: ModuleInfo, dotted: str
    ) -> Optional[str]:
        """Canonicalize ``dotted`` as written inside module ``info``."""
        parts = dotted.split(".")
        target = info.aliases.get(parts[0])
        if target is not None:
            return self.resolve_dotted(".".join([target] + parts[1:]))
        # A module-level definition referenced by bare name.
        if parts[0] in info.global_names:
            return self.resolve_dotted(f"{info.name}.{dotted}")
        return None

    def resolve_annotation(
        self, info: ModuleInfo, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        """Project class qualname named by a simple annotation.

        Handles ``Cls``, ``mod.Cls``, string annotations, and one
        ``Optional[...]`` / ``X | None`` unwrap — the shapes the
        codebase uses for attributes the passes care about.
        """
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Subscript):
            head = _dotted_of(annotation.value)
            if head is not None and head.split(".")[-1] == "Optional":
                return self.resolve_annotation(info, annotation.slice)
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            for side in (annotation.left, annotation.right):
                resolved = self.resolve_annotation(info, side)
                if resolved is not None:
                    return resolved
            return None
        dotted = _dotted_of(annotation)
        if dotted is None:
            return None
        resolved = self.resolve_dotted_in(info, dotted)
        if resolved is not None and resolved in self.classes:
            return resolved
        return None

    #: Generic heads whose subscript names what iteration yields.
    _CONTAINER_HEADS = frozenset(
        {
            "List", "Sequence", "MutableSequence", "Tuple", "Set",
            "FrozenSet", "Iterable", "Iterator", "Deque",
            "list", "tuple", "set", "frozenset", "deque",
        }
    )

    def resolve_element_annotation(
        self, info: ModuleInfo, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        """Project class a ``for`` loop over this annotation would bind.

        ``List[Cls]`` → ``Cls`` (ditto the other uniform containers),
        through an ``Optional`` wrapper; ``Tuple[A, ...]`` takes the
        first resolvable element.  Anything else is None — a plain
        class annotation says nothing about its iteration elements.
        """
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if not isinstance(annotation, ast.Subscript):
            return None
        head = _dotted_of(annotation.value)
        tail = head.split(".")[-1] if head is not None else None
        if tail == "Optional":
            return self.resolve_element_annotation(info, annotation.slice)
        if tail not in self._CONTAINER_HEADS:
            return None
        inner = annotation.slice
        if isinstance(inner, ast.Tuple):
            for elt in inner.elts:
                resolved = self.resolve_annotation(info, elt)
                if resolved is not None:
                    return resolved
            return None
        return self.resolve_annotation(info, inner)

    def annotation_classes(
        self, info: ModuleInfo, annotation: Optional[ast.expr]
    ) -> List[str]:
        """Every project class named anywhere inside an annotation.

        ``Tuple[List[SchedulingEvent], StreamDiagnostics]`` yields both
        classes — the worker->parent payload universe SD502 audits.
        """
        if annotation is None:
            return []
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return []
        found: List[str] = []
        for node in ast.walk(annotation):
            dotted = _dotted_of(node)
            if dotted is None:
                continue
            resolved = self.resolve_dotted_in(info, dotted)
            if resolved is not None and resolved in self.classes:
                if resolved not in found:
                    found.append(resolved)
        return found

    # -- class structure ---------------------------------------------------
    def mro(self, qualname: str) -> List[ClassInfo]:
        """The class plus its project-resolvable bases, depth-first."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            info = self.classes.get(name)
            if info is None:
                return
            out.append(info)
            for base in info.bases:
                visit(base)

        visit(qualname)
        return out

    def lookup_method(self, cls: str, name: str) -> Optional[str]:
        for info in self.mro(cls):
            if name in info.methods:
                return info.methods[name]
        return None

    def lookup_attr_type(self, cls: str, name: str) -> Optional[str]:
        for info in self.mro(cls):
            if name in info.attr_types:
                return info.attr_types[name]
        return None

    def lookup_attr_elem_type(self, cls: str, name: str) -> Optional[str]:
        for info in self.mro(cls):
            if name in info.attr_elem_types:
                return info.attr_elem_types[name]
        return None

    def _infer_attr_types(self, cls_info: ClassInfo) -> None:
        """Instance attribute types from class-body annotations and
        ``__init__`` assignments (run after every class is registered)."""
        info = self.modules[cls_info.module]
        for stmt in cls_info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ) and stmt.target.id != "__slots__":
                typed = self.resolve_annotation(info, stmt.annotation)
                if typed is not None:
                    cls_info.attr_types[stmt.target.id] = typed
                elem = self.resolve_element_annotation(info, stmt.annotation)
                if elem is not None:
                    cls_info.attr_elem_types[stmt.target.id] = elem
        init_qual = cls_info.methods.get("__init__")
        if init_qual is None:
            return
        init = self.functions[init_qual]
        param_types: Dict[str, str] = {}
        args = init.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            typed = self.resolve_annotation(info, arg.annotation)
            if typed is not None:
                param_types[arg.arg] = typed
        for stmt in walk_own_body(init.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            typed = self.resolve_annotation(info, annotation)
            if typed is None and value is not None:
                typed = self._value_type(info, value, param_types)
            if typed is not None and attr not in cls_info.attr_types:
                cls_info.attr_types[attr] = typed
            elem = self.resolve_element_annotation(info, annotation)
            if elem is not None and attr not in cls_info.attr_elem_types:
                cls_info.attr_elem_types[attr] = elem

    def _value_type(
        self,
        info: ModuleInfo,
        value: ast.expr,
        local_types: Dict[str, str],
    ) -> Optional[str]:
        """Best-effort project-class type of an expression."""
        if isinstance(value, ast.Name):
            return local_types.get(value.id)
        if isinstance(value, ast.IfExp):
            return self._value_type(
                info, value.body, local_types
            ) or self._value_type(info, value.orelse, local_types)
        if isinstance(value, ast.Call):
            dotted = _dotted_of(value.func)
            if dotted is None:
                return None
            resolved = self.resolve_dotted_in(info, dotted)
            if resolved is None:
                return None
            if resolved in self.classes:
                return resolved
            func = self.functions.get(resolved)
            if func is not None:
                owner = self.modules.get(func.module)
                if owner is not None:
                    return self.resolve_annotation(owner, func.node.returns)
        return None


def _dotted_of(node: Optional[ast.AST]) -> Optional[str]:
    """``a.b.c`` of a Name/Attribute chain, None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return ".".join(parts)


def walk_own_body(func_node: _FuncNode):
    """``ast.walk`` over a function body, *excluding* nested defs.

    Nested functions are separate :class:`FunctionInfo` roots; walking
    into them here would attribute their call sites to the enclosing
    function.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def local_bindings(func_node: _FuncNode) -> Set[str]:
    """Every name bound inside the function: params, assignments,
    loop/with/except targets, comprehension variables, nested defs.

    Used to keep local variables from masquerading as module or builtin
    calls during resolution.
    """
    bound: Set[str] = set()
    args = func_node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    for node in walk_own_body(func_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, ast.comprehension):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


class CallGraph:
    """Function-level call edges over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        for qualname in sorted(index.functions):
            self._resolve_function(index.functions[qualname])

    @classmethod
    def build(cls, root: Path) -> "CallGraph":
        return cls(ProjectIndex.build(root))

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "CallGraph":
        return cls(ProjectIndex.from_sources(sources))

    # -- per-function resolution -------------------------------------------
    def local_types(self, func: FunctionInfo) -> Dict[str, str]:
        """Parameter/local variable -> project class qualname."""
        index = self.index
        info = index.modules[func.module]
        types: Dict[str, str] = {}
        args = func.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            typed = index.resolve_annotation(info, arg.annotation)
            if typed is not None:
                types[arg.arg] = typed
        for node in walk_own_body(func.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if isinstance(target, ast.Name):
                    typed = self._expr_type(func, value, types)
                    if typed is not None:
                        types[target.id] = typed
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                typed = index.resolve_annotation(info, node.annotation)
                if typed is not None:
                    types[node.target.id] = typed
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                if isinstance(node.optional_vars, ast.Name):
                    typed = self._expr_type(func, node.context_expr, types)
                    if typed is not None:
                        types[node.optional_vars.id] = typed
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                typed = self._elem_type(func, node.iter, types)
                if typed is not None:
                    types[node.target.id] = typed
        return types

    def _elem_type(
        self, func: FunctionInfo, expr: ast.expr, local_types: Dict[str, str]
    ) -> Optional[str]:
        """Project class a ``for`` loop over ``expr`` binds, if pinned.

        Covers the one shape the codebase uses: iterating an instance
        attribute whose ``__init__``/class-body annotation names a
        uniform container (``for tailer in self.tailers`` with
        ``self.tailers: List[DirectoryTailer]``).
        """
        if isinstance(expr, ast.Attribute):
            owner = self._expr_type(func, expr.value, local_types)
            if owner is not None:
                return self.index.lookup_attr_elem_type(owner, expr.attr)
        return None

    def _expr_type(
        self, func: FunctionInfo, expr: ast.expr, local_types: Dict[str, str]
    ) -> Optional[str]:
        """Project class type of an expression inside ``func``."""
        index = self.index
        info = index.modules[func.module]
        if isinstance(expr, ast.Name):
            if expr.id == "self" and func.cls is not None:
                return func.cls
            return local_types.get(expr.id)
        if isinstance(expr, ast.IfExp):
            return self._expr_type(func, expr.body, local_types) or self._expr_type(
                func, expr.orelse, local_types
            )
        if isinstance(expr, ast.Await):
            return self._expr_type(func, expr.value, local_types)
        if isinstance(expr, ast.Attribute):
            owner = self._expr_type(func, expr.value, local_types)
            if owner is not None:
                return index.lookup_attr_type(owner, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            target = self.resolve_call(func, expr, local_types)
            if target is None:
                return None
            kind, name = target
            if kind == "class":
                return name
            if kind == "project":
                callee = index.functions[name]
                owner = index.modules.get(callee.module)
                if owner is not None:
                    return index.resolve_annotation(owner, callee.node.returns)
        return None

    def resolve_call(
        self,
        func: FunctionInfo,
        call: ast.Call,
        local_types: Dict[str, str],
        bound: Optional[Set[str]] = None,
    ) -> Optional[Tuple[str, str]]:
        """Resolve a call target to one of
        ``("project", function qualname)``, ``("class", class qualname)``
        (a constructor), or ``("external", canonical dotted name)``.
        """
        if bound is None:
            bound = local_bindings(func.node)
        return self._resolve_callee(func, call.func, local_types, bound)

    def _resolve_callee(
        self,
        func: FunctionInfo,
        callee: ast.expr,
        local_types: Dict[str, str],
        bound: Set[str],
    ) -> Optional[Tuple[str, str]]:
        index = self.index
        info = index.modules[func.module]
        if isinstance(callee, ast.Name):
            name = callee.id
            if name in bound:
                return None  # calling a local binding: out of scope
            resolved = index.resolve_dotted_in(info, name)
            if resolved is not None:
                return self._classify(resolved)
            # Unshadowed bare name: a builtin (``open``, ``print``).
            return ("external", name)
        if isinstance(callee, ast.Attribute):
            # Receiver with a known project type: method lookup in MRO.
            receiver_type = self._expr_type(func, callee.value, local_types)
            if receiver_type is not None:
                method = index.lookup_method(receiver_type, callee.attr)
                if method is not None:
                    return ("project", method)
                return None
            dotted = _dotted_of(callee)
            if dotted is None:
                return None
            root = dotted.split(".")[0]
            if root in bound or root == "self":
                return None  # an untyped local / instance attribute
            resolved = index.resolve_dotted_in(info, dotted)
            if resolved is not None:
                return self._classify(resolved)
            if root in info.global_names:
                return None  # a module-level instance we cannot type
            # A fully external dotted call (``time.sleep``) — only when
            # the root is not bound locally at all.
            return ("external", dotted)
        return None

    def _classify(self, resolved: str) -> Optional[Tuple[str, str]]:
        index = self.index
        if resolved in index.functions:
            return ("project", resolved)
        if resolved in index.classes:
            return ("class", resolved)
        # ``Cls.method`` spelled through the class.
        head, _, tail = resolved.rpartition(".")
        if head in index.classes:
            method = index.lookup_method(head, tail)
            if method is not None:
                return ("project", method)
            return None
        if resolved.split(".")[0] in index.modules or resolved in index.modules:
            return None  # a project attribute we cannot resolve further
        return ("external", resolved)

    def _resolve_function(self, func: FunctionInfo) -> None:
        local_types = self.local_types(func)
        bound = local_bindings(func.node)
        for node in walk_own_body(func.node):
            if not isinstance(node, ast.Call):
                continue
            target = self.resolve_call(func, node, local_types, bound)
            if target is None:
                continue
            kind, name = target
            if kind == "project":
                func.calls.append((name, node.lineno))
            elif kind == "class":
                init = self.index.lookup_method(name, "__init__")
                if init is not None:
                    func.calls.append((init, node.lineno))
            else:
                func.external_calls.append((name, node.lineno))

    # -- reachability ------------------------------------------------------
    def reachable(
        self, start: str, through_async: bool = False
    ) -> Dict[str, Tuple[Optional[str], int]]:
        """BFS over project call edges from ``start``.

        Returns ``{qualname: (caller qualname, call lineno)}`` parent
        pointers (the start maps to ``(None, 0)``), shortest-path by
        construction.  ``through_async=False`` stops at ``async def``
        callees: they run as separate tasks, and each is analyzed as
        its own root.
        """
        parents: Dict[str, Tuple[Optional[str], int]] = {start: (None, 0)}
        frontier = [start]
        while frontier:
            next_frontier: List[str] = []
            for qualname in frontier:
                func = self.index.functions.get(qualname)
                if func is None:
                    continue
                for callee, lineno in func.calls:
                    if callee in parents:
                        continue
                    callee_info = self.index.functions.get(callee)
                    if callee_info is None:
                        continue
                    if callee_info.is_async and not through_async:
                        continue
                    parents[callee] = (qualname, lineno)
                    next_frontier.append(callee)
            frontier = next_frontier
        return parents

    def chain(
        self, parents: Dict[str, Tuple[Optional[str], int]], end: str
    ) -> List[str]:
        """Start-to-``end`` qualname path from :meth:`reachable` output."""
        path = [end]
        cursor = end
        while True:
            parent, _lineno = parents[cursor]
            if parent is None:
                break
            path.append(parent)
            cursor = parent
        path.reverse()
        return path
