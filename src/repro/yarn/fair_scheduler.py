"""The Fair Scheduler: the paper's other centralized option.

Section II-A: "ResourceManager initiates resource allocation upon this
request through a user configured scheduler (e.g., Capacity Scheduler
or Fair Scheduler)".  The evaluation uses the Capacity Scheduler
("without losing generality"); this implementation lets users check
that generality claim.

Differences from :class:`~repro.yarn.capacity_scheduler.CapacityScheduler`:

* candidate ordering is max-min fair over *memory share* (the app
  furthest below the cluster-wide fair share goes first), rather than
  fewest-live-containers-first;
* no delay-scheduling skips — the Fair Scheduler's default
  locality-wait is time-based and effectively zero for the paper's
  untagged requests, so requests are ready immediately.

Both share the node-update-driven batch allocation that Table II
measures, so overall scheduling-delay results carry over — which is
exactly the paper's "without losing generality".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, TYPE_CHECKING

from repro.simul.engine import Event
from repro.yarn.records import ExecutionType, ResourceRequest, ResourceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node
    from repro.yarn.resource_manager import AppRecord, ResourceManager

__all__ = ["FairScheduler"]


@dataclass(slots=True)
class _FairAppQueue:
    """One app's pending asks plus its memory-usage ledger."""

    pending: deque = field(default_factory=deque)
    #: Memory currently held by this app's live containers (MB).
    memory_mb: int = 0


class FairScheduler:
    """Centralized max-min fair allocator."""

    def __init__(self, rm: "ResourceManager"):
        self.rm = rm
        self.params = rm.params
        self._queues: Dict[Any, _FairAppQueue] = {}
        #: Weighted tenant fairness (params.queue_weights): hierarchical
        #: max-min — first over per-tenant weighted memory shares, then
        #: over apps within the tenant.  Empty dict = flat app fairness,
        #: byte-identical to the unweighted scheduler.
        self._weights: Dict[str, float] = dict(rm.params.queue_weights or {})
        self._tenant_memory_mb: Dict[str, int] = {}

    # -- request intake ------------------------------------------------------
    def add_request(self, record: "AppRecord", request: ResourceRequest) -> None:
        queue = self._queues.setdefault(record, _FairAppQueue())
        for _ in range(request.count):
            queue.pending.append(request.spec)

    def remove_application(self, record: "AppRecord") -> None:
        self._queues.pop(record, None)

    def pending_containers(self) -> int:
        return sum(len(q.pending) for q in self._queues.values())

    def pending_for(self, record: "AppRecord") -> int:
        """Containers this app is still waiting on (starvation probe)."""
        queue = self._queues.get(record)
        return len(queue.pending) if queue is not None else 0

    # -- the scheduling pass -----------------------------------------------------
    def assign_containers(self, node: "Node") -> Generator[Event, Any, None]:
        """One node update: repeatedly serve the most-starved app."""
        if not node.active:
            return  # a node update raced the node's failure
        while True:
            candidate = self._most_starved(node)
            if candidate is None:
                return
            record, queue = candidate
            spec = queue.pending.popleft()
            yield self.rm.sim.timeout(self.params.rm_alloc_service_s)
            if record.finished:
                continue
            if not node.fits(spec.memory_mb, spec.vcores):
                queue.pending.appendleft(spec)
                continue
            node.reserve(spec.memory_mb, spec.vcores)
            queue.memory_mb += spec.memory_mb
            if self._weights:
                tenant = record.app.queue
                self._tenant_memory_mb[tenant] = (
                    self._tenant_memory_mb.get(tenant, 0) + spec.memory_mb
                )
            grant = self.rm.new_container(record, node, spec, ExecutionType.GUARANTEED)
            self.rm.deliver_grant(record, grant)

    def container_released(self, record: "AppRecord", spec: ResourceSpec) -> None:
        """Return memory to the ledger (called via RM completion path)."""
        queue = self._queues.get(record)
        if queue is not None:
            queue.memory_mb = max(0, queue.memory_mb - spec.memory_mb)
        if self._weights:
            tenant = record.app.queue
            held = self._tenant_memory_mb.get(tenant, 0)
            self._tenant_memory_mb[tenant] = max(0, held - spec.memory_mb)

    def _most_starved(self, node: "Node"):
        """The app with the lowest memory usage whose head request fits.

        With queue weights configured, tenants are compared first by
        weighted memory share (held / weight; unlisted tenants weigh 1),
        so a weight-3 tenant sustains 3x the memory of a weight-1 tenant
        before losing priority.
        """
        best = None
        best_key = None
        for record, queue in self._queues.items():
            if not queue.pending:
                continue
            head = queue.pending[0]
            if not node.fits(head.memory_mb, head.vcores):
                continue
            key = (queue.memory_mb, record.app.app_id.app_seq)
            if self._weights:
                tenant = record.app.queue
                weight = self._weights.get(tenant, 1.0)
                key = (self._tenant_memory_mb.get(tenant, 0) / weight,) + key
            if best_key is None or key < best_key:
                best, best_key = (record, queue), key
        return best
