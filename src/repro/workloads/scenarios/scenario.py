"""Composable production-scale scenarios over the simulated testbed.

A :class:`Scenario` declares *what a production day looks like* — the
arrival process, the tenant mix, the scheduler and its preemption
policy, the hardware mix, and mid-run cluster events (node failures,
decommissions, autoscale joins) — and :meth:`Scenario.run` compiles it
onto a :class:`~repro.testbed.Testbed`, runs it to completion, and
mines the logs with SDchecker.

Everything is keyed by ``RandomSource`` substreams derived from one
seed: two runs of the same scenario at the same seed emit byte-identical
logs (the golden-snapshot tests pin this).  Every scenario emits the
standard log4j dialect, so the unmodified miner consumes it; forced
kills surface as the Table I′ KILLED / KILLING transitions and land in
the ``preemption_delay`` / ``queue_wait_delay`` components of the
extended decomposition (:mod:`repro.core.decompose`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.profiles import HARDWARE_PROFILES
from repro.core.checker import SDChecker
from repro.core.report import AnalysisReport
from repro.params import GB, SimulationParams
from repro.simul.distributions import RandomSource
from repro.spark.application import SparkApplication
from repro.testbed import Testbed
from repro.workloads.google_trace import google_trace_arrivals
from repro.workloads.scenarios.arrivals import (
    diurnal_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
)
from repro.workloads.tpch import TPCHDataset, TPCHQueryWorkload
from repro.yarn.preemption import PreemptionMonitor

__all__ = ["ArrivalSpec", "TenantSpec", "ClusterEvent", "Scenario", "ScenarioRun"]


@dataclass(frozen=True)
class ArrivalSpec:
    """Which arrival process drives submissions, and its shape.

    ``kind`` is ``"poisson"`` (needs ``rate_per_s``), ``"mmpp"`` (needs
    ``rates_per_s`` + ``mean_dwell_s``), ``"diurnal"`` (needs
    ``base_rate_per_s`` + ``peak_rate_per_s`` + ``period_s``), or
    ``"trace"`` — the paper's google-trace lognormal burstiness
    (:func:`~repro.workloads.google_trace.google_trace_arrivals`,
    needs ``rate_per_s``).
    """

    kind: str = "poisson"
    rate_per_s: float = 0.25
    rates_per_s: Tuple[float, ...] = (0.05, 1.0)
    mean_dwell_s: float = 30.0
    base_rate_per_s: float = 0.05
    peak_rate_per_s: float = 0.5
    period_s: float = 120.0

    def sample(self, n: int, rng: RandomSource) -> List[float]:
        if self.kind == "poisson":
            return poisson_arrivals(n, self.rate_per_s, rng)
        if self.kind == "mmpp":
            return mmpp_arrivals(n, list(self.rates_per_s), self.mean_dwell_s, rng)
        if self.kind == "diurnal":
            return diurnal_arrivals(
                n, self.base_rate_per_s, self.peak_rate_per_s, self.period_s, rng
            )
        if self.kind == "trace":
            return google_trace_arrivals(n, 1.0 / self.rate_per_s, rng)
        raise ValueError(f"unknown arrival kind {self.kind!r}")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a YARN queue, its fair-share weight, and its jobs."""

    name: str
    #: Relative share of submissions routed to this tenant.
    share: float = 1.0
    #: Fair-scheduler weight (only meaningful with scheduler="fair").
    weight: float = 1.0
    #: Executors per job this tenant submits.
    num_executors: int = 4
    #: TPC-H templates this tenant draws from (None = all 22).
    queries: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class ClusterEvent:
    """A mid-run cluster membership change.

    ``kind`` is ``"fail"`` / ``"decommission"`` (``node`` = 0-based
    index of the victim) or ``"add"`` (``profile`` = a name from
    :data:`~repro.cluster.profiles.HARDWARE_PROFILES`, or None for the
    params-default shape).
    """

    at_s: float
    kind: str
    node: int = 0
    profile: Optional[str] = None


@dataclass
class ScenarioRun:
    """A finished scenario: white-box testbed + mined report."""

    testbed: Testbed
    report: AnalysisReport
    makespan: float
    #: Containers the preemption monitor reclaimed (0 without one).
    preemptions: int = 0
    #: Containers lost to node failures.
    failure_kills: int = 0


@dataclass(frozen=True)
class Scenario:
    """A named, fully declarative production-shaped run."""

    name: str
    description: str = ""
    #: Jobs submitted across all tenants.
    n_jobs: int = 8
    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    tenants: Tuple[TenantSpec, ...] = (TenantSpec("default"),)
    #: "capacity", "fair", or "opportunistic" (the Hadoop-3 distributed
    #: scheduler: capacity RM + OPPORTUNISTIC container requests — the
    #: calibration engine's scheduler-substitution knob).
    scheduler: str = "capacity"
    #: PreemptionMonitor kwargs; None runs without preemption.
    preemption: Optional[Dict[str, float]] = None
    #: Mid-run membership changes, applied in ``at_s`` order.
    cluster_events: Tuple[ClusterEvent, ...] = ()
    #: Per-node hardware profile names (index-aligned, None entries and
    #: missing tail keep the params default shape).
    node_profiles: Tuple[Optional[str], ...] = ()
    #: TPC-H dataset size shared by every job.
    dataset_bytes: float = 2.0 * GB
    #: SimulationParams field overrides (num_nodes etc.).
    params: Dict[str, object] = field(default_factory=dict)
    default_seed: int = 0
    #: Simulated-time safety limit.
    limit_s: float = 50_000.0

    def variant(self, **overrides) -> "Scenario":
        return replace(self, **overrides)

    # -- compilation -------------------------------------------------------
    def build_params(self) -> SimulationParams:
        overrides = dict(self.params)
        weights = {t.name: t.weight for t in self.tenants if t.weight != 1.0}
        if weights and "queue_weights" not in overrides:
            overrides["queue_weights"] = {t.name: t.weight for t in self.tenants}
        return SimulationParams(**overrides)

    def build(self, seed: Optional[int] = None) -> Tuple[Testbed, Optional[PreemptionMonitor]]:
        """A testbed with every submission and event scheduled."""
        seed = self.default_seed if seed is None else seed
        params = self.build_params()
        profiles = [
            HARDWARE_PROFILES[p] if p is not None else None
            for p in self.node_profiles
        ]
        if self.scheduler not in ("capacity", "fair", "opportunistic"):
            raise ValueError(f"unknown scenario scheduler {self.scheduler!r}")
        distributed = self.scheduler == "opportunistic"
        bed = Testbed(
            params=params,
            seed=seed,
            scheduler="capacity" if distributed else self.scheduler,
            distributed_scheduling=distributed,
            node_profiles=profiles,
        )
        monitor = (
            PreemptionMonitor(bed.rm, **self.preemption)
            if self.preemption is not None
            else None
        )
        self._schedule_cluster_events(bed)
        rng = RandomSource(seed, f"scenario.{self.name}")
        dataset = TPCHDataset(self.dataset_bytes, name=f"{self.name}-ds")
        arrivals = self.arrivals.sample(self.n_jobs, rng.child("arrivals"))
        tenant_rng = rng.child("tenants")
        mix_rng = rng.child("mix")
        for i, offset in enumerate(arrivals):
            tenant = self._pick_tenant(tenant_rng)
            pool = list(tenant.queries) if tenant.queries else list(range(1, 23))
            query = pool[mix_rng.integers(0, len(pool))]
            app = SparkApplication(
                f"{tenant.name}-q{query}-{i:04d}",
                TPCHQueryWorkload(dataset, query=query),
                num_executors=tenant.num_executors,
                user=tenant.name,
                queue=tenant.name,
                opportunistic=distributed,
            )
            bed.submit(app, delay=offset)
        return bed, monitor

    def _pick_tenant(self, rng: RandomSource) -> TenantSpec:
        total = sum(t.share for t in self.tenants)
        point = rng.uniform(0.0, total)
        acc = 0.0
        for tenant in self.tenants:
            acc += tenant.share
            if point < acc:
                return tenant
        return self.tenants[-1]

    def _schedule_cluster_events(self, bed: Testbed) -> None:
        for event in sorted(self.cluster_events, key=lambda e: e.at_s):
            if event.kind == "fail":
                hostname = f"node{event.node + 1:02d}"
                bed.sim.call_at(
                    event.at_s,
                    lambda h=hostname: bed.fail_node(h),
                )
            elif event.kind == "decommission":
                hostname = f"node{event.node + 1:02d}"
                bed.sim.call_at(
                    event.at_s,
                    lambda h=hostname: bed.decommission_node(h),
                )
            elif event.kind == "add":
                profile = (
                    HARDWARE_PROFILES[event.profile]
                    if event.profile is not None
                    else None
                )
                bed.sim.call_at(
                    event.at_s, lambda p=profile: bed.add_node(p)
                )
            else:
                raise ValueError(f"unknown cluster event kind {event.kind!r}")

    # -- execution --------------------------------------------------------
    def run(self, seed: Optional[int] = None, jobs: int = 1) -> ScenarioRun:
        """Build, simulate to completion, and mine the logs."""
        bed, monitor = self.build(seed)
        makespan = bed.run_until_all_finished(limit=self.limit_s)
        if monitor is not None:
            monitor.stop()
        report = SDChecker(jobs=jobs).analyze(bed.log_store)
        failure_kills = sum(
            1
            for app in bed.applications
            for grant in app.grants
            if grant.rm_container is not None
            and grant.rm_container.state == "KILLED"
        )
        preemptions = monitor.preemptions if monitor is not None else 0
        return ScenarioRun(
            testbed=bed,
            report=report,
            makespan=makespan,
            preemptions=preemptions,
            failure_kills=failure_kills - preemptions,
        )
