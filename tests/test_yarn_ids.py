"""Tests for YARN global IDs."""

import pytest
from hypothesis import given, strategies as st

from repro.yarn.ids import ApplicationId, ContainerId, CLUSTER_TIMESTAMP


class TestApplicationId:
    def test_format(self):
        app = ApplicationId(CLUSTER_TIMESTAMP, 42)
        assert str(app) == f"application_{CLUSTER_TIMESTAMP}_0042"

    def test_parse_round_trip(self):
        app = ApplicationId(CLUSTER_TIMESTAMP, 7)
        assert ApplicationId.parse(str(app)) == app

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            ApplicationId.parse("container_123_0001_01_000001")

    @given(seq=st.integers(min_value=1, max_value=99_999))
    def test_round_trip_any_sequence(self, seq):
        app = ApplicationId(CLUSTER_TIMESTAMP, seq)
        assert ApplicationId.parse(str(app)) == app

    def test_ordering(self):
        a = ApplicationId(CLUSTER_TIMESTAMP, 1)
        b = ApplicationId(CLUSTER_TIMESTAMP, 2)
        assert a < b


class TestContainerId:
    def test_format(self):
        cid = ApplicationId(CLUSTER_TIMESTAMP, 3).container(7)
        assert str(cid) == f"container_{CLUSTER_TIMESTAMP}_0003_01_000007"

    def test_parse_round_trip(self):
        cid = ApplicationId(CLUSTER_TIMESTAMP, 3).container(12)
        assert ContainerId.parse(str(cid)) == cid

    def test_parse_epoch_variant(self):
        cid = ContainerId.parse("container_e17_1515715200000_0001_01_000002")
        assert cid.app_id.app_seq == 1
        assert cid.container_seq == 2

    def test_am_is_container_one(self):
        app = ApplicationId(CLUSTER_TIMESTAMP, 1)
        assert app.container(1).is_application_master
        assert not app.container(2).is_application_master

    @given(app_seq=st.integers(1, 9999), cseq=st.integers(1, 999_999))
    def test_round_trip_any(self, app_seq, cseq):
        cid = ApplicationId(CLUSTER_TIMESTAMP, app_seq).container(cseq)
        back = ContainerId.parse(str(cid))
        assert back == cid
        assert back.app_id.app_seq == app_seq

    @given(attempt_seq=st.integers(1, 9999))
    def test_round_trip_wide_attempt_ids(self, attempt_seq):
        # %02d widens past attempt 99 (recurring apps); parse must keep up.
        cid = ApplicationId(CLUSTER_TIMESTAMP, 3).container(7, attempt_seq)
        back = ContainerId.parse(str(cid))
        assert back == cid
        assert back.attempt_seq == attempt_seq

    def test_attempt_id_format(self):
        att = ApplicationId(CLUSTER_TIMESTAMP, 5).attempt(1)
        assert str(att) == f"appattempt_{CLUSTER_TIMESTAMP}_0005_000001"
