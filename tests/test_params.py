"""Tests for the calibration parameter container."""

import dataclasses

import pytest

from repro.params import GB, MB, SimulationParams


class TestValidation:
    def test_defaults_valid(self):
        SimulationParams().validate()  # no raise

    def test_with_overrides_returns_new_instance(self):
        base = SimulationParams()
        new = base.with_overrides(num_nodes=10)
        assert new.num_nodes == 10
        assert base.num_nodes == 25  # untouched

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_nodes", 0),
            ("min_registered_resources_ratio", 0.0),
            ("min_registered_resources_ratio", 1.5),
            ("hdfs_replication", 0),
            ("page_cache_bytes", -1.0),
            ("resource_calculator", "weird"),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            SimulationParams().with_overrides(**{field: value})

    def test_executor_must_fit_on_node(self):
        with pytest.raises(ValueError):
            SimulationParams(memory_per_node_mb=1024, executor_memory_mb=4096)

    def test_jvm_table_must_cover_all_instance_types(self):
        with pytest.raises(ValueError):
            SimulationParams(jvm_start_median_s={"spm": 0.5})

    def test_constructor_validates(self):
        with pytest.raises(ValueError):
            SimulationParams(num_nodes=-1)


class TestDerivedExpectations:
    """Sanity anchors the calibration depends on."""

    def test_paper_testbed_shape(self):
        p = SimulationParams()
        assert p.num_nodes == 25
        assert p.cores_per_node == 32
        assert p.executor_memory_mb == 4096 and p.executor_vcores == 8

    def test_units_are_bytes_per_second(self):
        p = SimulationParams()
        assert p.network_bandwidth == 1250 * MB  # 10 Gbps
        assert p.page_cache_bytes == 1 * GB

    def test_heartbeats(self):
        p = SimulationParams()
        assert p.mr_am_heartbeat_s == 1.0  # the Fig 7c cap
        assert p.spark_am_heartbeat_s < p.mr_am_heartbeat_s

    def test_gate_ratio_is_spark_default(self):
        assert SimulationParams().min_registered_resources_ratio == 0.8

    def test_dataclass_fields_have_defaults(self):
        for f in dataclasses.fields(SimulationParams):
            assert (
                f.default is not dataclasses.MISSING
                or f.default_factory is not dataclasses.MISSING
            ), f"{f.name} has no default"
