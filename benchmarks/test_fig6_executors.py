"""Figure 6: scheduling delay vs number of executors per job.

Shape claims: more executors -> larger total delay (the 80%-gate waits
on a wider allocation fan-out) and a larger, more variable Cl-Cf spread
between the first and last container launch.
"""

from repro.experiments.fig6 import FIG6_EXECUTORS, run_fig6


def test_fig6_executor_sweep(benchmark, scale, seed, record_rows):
    result = benchmark.pedantic(run_fig6, args=(scale, seed), rounds=1, iterations=1)
    record_rows("fig6", result.rows())

    spreads = [result.series[n]["cl_cf"].p50 for n in FIG6_EXECUTORS]
    assert spreads == sorted(spreads), "Cl-Cf median must grow with executors"
    assert spreads[-1] > 1.5 * spreads[0]

    # Total delay does not shrink with more executors; the 16-executor
    # tail exceeds the 4-executor tail.
    assert result.total_p95(16) >= result.total_p95(4)

    # Variance grows with the fan-out.
    assert (
        result.series[16]["cl_cf"].std() > result.series[4]["cl_cf"].std()
    )
