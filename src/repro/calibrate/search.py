"""The fit driver: seeded grid + random search, fanned out and merged.

:func:`fit` generates every candidate up front — the baseline (trial 0,
no overrides: the self-fit identity point), a deterministically thinned
grid, and random points drawn from per-trial
:meth:`~repro.simul.distributions.RandomSource.child` substreams — then
evaluates them either in-process or across a
:class:`~concurrent.futures.ProcessPoolExecutor` via the miner's
order-preserving ``Executor.map`` discipline.  Results come back in
submission order whatever ``jobs`` is, so the emitted
:class:`FittedModel` artifact is byte-identical at any parallelism (the
hypothesis suite pins this).

The artifact is versioned JSON with full provenance: the seed, the
space, the target, every trial's overrides and per-component errors,
and the winning parameter set serialized through the validated
``SimulationParams`` to/from-dict round-trip.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.parser import _pool_map, available_cpus
from repro.params import SimulationParams
from repro.simul.distributions import RandomSource
from repro.calibrate.objective import (
    DEFAULT_WEIGHTS,
    TargetDecomposition,
    TrialResult,
    apply_overrides,
    evaluate_candidate,
    mine_scenario,
)
from repro.calibrate.space import DEFAULT_SPACE, ParameterSpace
from repro.workloads.scenarios.presets import get_scenario
from repro.workloads.scenarios.scenario import Scenario

__all__ = ["FittedModel", "fit", "self_target", "resolve_fit_jobs"]

ARTIFACT_FORMAT = "repro.calibrate/fitted-model"
ARTIFACT_VERSION = 1

#: Trial fan-out cap under jobs="auto": fit trials are whole
#: simulations, so a small pool saturates long before mining-style
#: worker counts help.
_AUTO_MAX_JOBS = 4


def resolve_fit_jobs(jobs: Union[int, str], trials: int) -> int:
    """A worker count for ``trials`` candidates (``"auto"`` = by CPU)."""
    if jobs == "auto":
        return max(1, min(available_cpus(), _AUTO_MAX_JOBS, trials))
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


# One positional tuple per trial; a module-level function so the pool
# can pickle it (and the sanitizer can double-submit it).
def _evaluate_task(task: Tuple) -> Dict[str, Any]:
    scenario, overrides, replay_seed, target, weights, index, kind = task
    return evaluate_candidate(
        scenario, overrides, replay_seed, target, weights, index=index, kind=kind
    ).to_dict()


@dataclass
class FittedModel:
    """A versioned, reloadable calibration artifact."""

    scenario: str
    seed: int
    replay_seed: int
    space: ParameterSpace
    weights: Dict[str, float]
    target: TargetDecomposition
    trials: List[TrialResult]
    best_index: int
    #: The winning full parameter set (``SimulationParams.to_dict()``).
    fitted_params: Dict[str, Any] = field(default_factory=dict)
    fitted_scheduler: str = "capacity"

    @property
    def best(self) -> TrialResult:
        return self.trials[self.best_index]

    def params(self) -> SimulationParams:
        """The fitted point, revalidated through the round-trip."""
        return SimulationParams.from_dict(self.fitted_params)

    def replay_scenario(self) -> Scenario:
        """The preset this model replays, with the fit baked in."""
        return apply_overrides(get_scenario(self.scenario), self.best.overrides)

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "scenario": self.scenario,
            "seed": self.seed,
            "replay_seed": self.replay_seed,
            "space": self.space.to_dict(),
            "weights": dict(self.weights),
            "target": self.target.to_dict(),
            "trials": [t.to_dict() for t in self.trials],
            "best_index": self.best_index,
            "best_error": self.best.error,
            "fitted_params": dict(self.fitted_params),
            "fitted_scheduler": self.fitted_scheduler,
        }

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.dumps(), encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FittedModel":
        if not isinstance(payload, Mapping):
            raise ValueError("fitted-model payload must be a mapping")
        if payload.get("format") != ARTIFACT_FORMAT:
            raise ValueError(
                f"not a fitted-model artifact (format="
                f"{payload.get('format')!r}, want {ARTIFACT_FORMAT!r})"
            )
        if payload.get("version") != ARTIFACT_VERSION:
            raise ValueError(
                f"unsupported fitted-model version {payload.get('version')!r} "
                f"(this build reads version {ARTIFACT_VERSION})"
            )
        trials = [TrialResult.from_dict(t) for t in payload["trials"]]
        best_index = int(payload["best_index"])
        if not 0 <= best_index < len(trials):
            raise ValueError(f"best_index {best_index} out of range")
        fitted_params = dict(payload["fitted_params"])
        # Loudly reject artifacts whose parameter blob has drifted from
        # the current SimulationParams schema.
        SimulationParams.from_dict(fitted_params)
        return cls(
            scenario=str(payload["scenario"]),
            seed=int(payload["seed"]),
            replay_seed=int(payload["replay_seed"]),
            space=ParameterSpace.from_dict(payload["space"]),
            weights=dict(payload["weights"]),
            target=TargetDecomposition.from_dict(payload["target"]),
            trials=trials,
            best_index=best_index,
            fitted_params=fitted_params,
            fitted_scheduler=str(payload.get("fitted_scheduler", "capacity")),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FittedModel":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot read fitted model {path}: {exc}") from exc
        return cls.from_dict(payload)


def self_target(scenario: Scenario, replay_seed: int) -> TargetDecomposition:
    """Mine the scenario itself as the fit target (self-fit identity)."""
    report = mine_scenario(scenario, replay_seed)
    return TargetDecomposition.from_report(
        report, source=f"scenario:{scenario.name}@seed={replay_seed}"
    )


def _generate_candidates(
    space: ParameterSpace,
    seed: int,
    grid_limit: int,
    random_trials: int,
) -> List[Tuple[str, Dict[str, Any]]]:
    candidates: List[Tuple[str, Dict[str, Any]]] = [("baseline", {})]
    if grid_limit > 0:
        for point in space.grid_points(limit=grid_limit):
            candidates.append(("grid", point))
    rng = RandomSource(seed, "calibrate.fit")
    for i in range(random_trials):
        candidates.append(("random", space.sample_point(rng.child(f"trial.{i}"))))
    return candidates


def fit(
    scenario: Union[str, Scenario],
    target: Optional[TargetDecomposition] = None,
    *,
    seed: int = 0,
    grid_limit: int = 8,
    random_trials: int = 8,
    jobs: Union[int, str] = 1,
    replay_seed: Optional[int] = None,
    weights: Optional[Mapping[str, float]] = None,
    space: ParameterSpace = DEFAULT_SPACE,
) -> FittedModel:
    """Fit the simulator to ``target`` by replaying ``scenario``.

    ``target=None`` mines the scenario itself at the replay seed — the
    self-calibration loop whose baseline trial must score exactly 0.
    ``grid_limit`` caps the seeded-grid trials (0 skips the grid
    entirely); ``random_trials`` adds random-search candidates.
    ``jobs`` fans trials out over worker processes; the returned model
    (and its serialized artifact) is byte-identical for any value.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    replay_seed = (
        scenario.default_seed if replay_seed is None else int(replay_seed)
    )
    weights = dict(DEFAULT_WEIGHTS if weights is None else weights)
    if target is None:
        target = self_target(scenario, replay_seed)

    candidates = _generate_candidates(space, seed, grid_limit, random_trials)
    tasks = [
        (scenario, overrides, replay_seed, target, weights, index, kind)
        for index, (kind, overrides) in enumerate(candidates)
    ]
    workers = resolve_fit_jobs(jobs, len(tasks))
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Executor.map preserves submission order: the artifact's
            # trial list — and therefore its bytes — cannot depend on
            # worker completion order (SD304 discipline).
            raw = list(_pool_map(pool, _evaluate_task, tasks))
    else:
        raw = [_evaluate_task(task) for task in tasks]
    trials = [TrialResult.from_dict(payload) for payload in raw]

    best_index = min(
        range(len(trials)),
        key=lambda i: (
            trials[i].error is None,
            trials[i].error if trials[i].error is not None else 0.0,
            i,
        ),
    )
    fitted = apply_overrides(scenario, trials[best_index].overrides)
    return FittedModel(
        scenario=scenario.name,
        seed=int(seed),
        replay_seed=replay_seed,
        space=space,
        weights=weights,
        target=target,
        trials=trials,
        best_index=best_index,
        fitted_params=fitted.build_params().to_dict(),
        fitted_scheduler=fitted.scheduler,
    )
