"""Golden-pinned scenario packs.

Every preset in :data:`repro.workloads.scenarios.SCENARIO_PRESETS` is
pinned by a committed mined-report snapshot at its preset seed
(``tests/data/scenario_<name>_expected.json``, regenerated via
``tests/data/regen_golden.py``).  Any change to arrival sampling,
tenant routing, scheduler behaviour, preemption policy, cluster-event
handling, log rendering, or the decomposition shows up as a snapshot
diff — and mining a scenario in parallel (``--jobs 4``) must match the
sequential report byte for byte.

These are full end-to-end runs (generate → mine → export), so the
acceptance properties ride along: the preemption preset must actually
preempt, the failure preset must actually kill containers, and the
extended breakdown must telescope to the total in every snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.checker import SDChecker
from repro.core.decompose import BREAKDOWN_COMPONENTS
from repro.workloads.scenarios import SCENARIO_PRESETS, get_scenario, list_scenarios

DATA = Path(__file__).resolve().parent / "data"

PRESETS = list_scenarios()


def snapshot_path(name: str) -> Path:
    return DATA / f"scenario_{name.replace('-', '_')}_expected.json"


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """Each preset simulated once at its pinned seed (shared by tests).

    Yields ``name -> (ScenarioRun, dumped-log directory)``; the
    snapshots pin the *dumped* logs (millisecond log4j timestamps),
    so comparisons mine the directory, not the in-memory store.
    """
    out = {}
    for name in PRESETS:
        run = SCENARIO_PRESETS[name].run()
        logdir = tmp_path_factory.mktemp(f"scenario-{name}") / "logs"
        run.testbed.dump_logs(logdir)
        out[name] = (run, logdir)
    return out


class TestSnapshots:
    def test_every_preset_has_a_snapshot(self):
        for name in PRESETS:
            assert snapshot_path(name).exists(), f"missing snapshot for {name}"

    @pytest.mark.parametrize("name", PRESETS)
    def test_matches_snapshot(self, name, runs):
        _, logdir = runs[name]
        expected = json.loads(snapshot_path(name).read_text())
        assert SDChecker().analyze(logdir).to_dict() == expected

    @pytest.mark.parametrize("name", PRESETS)
    def test_parallel_mining_is_byte_identical(self, name, runs):
        """--jobs 4 over the dumped logs == the sequential report."""
        _, logdir = runs[name]
        sequential = SDChecker(jobs=1).analyze(logdir)
        parallel = SDChecker(jobs=4).analyze(logdir)
        blob = lambda r: json.dumps(
            r.to_dict(include_diagnostics=True), indent=2, sort_keys=True
        )
        assert blob(sequential) == blob(parallel)
        expected = json.loads(snapshot_path(name).read_text())
        assert parallel.to_dict() == expected


class TestAcceptanceProperties:
    def test_preemption_preset_preempts(self, runs):
        run, _ = runs["preemption-storm"]
        assert run.preemptions > 0
        assert max(run.report.sample("preemption_delay").values) > 0

    def test_node_failure_preset_kills_containers(self, runs):
        run, _ = runs["node-failures"]
        assert run.failure_kills > 0
        assert max(run.report.sample("preemption_delay").values) > 0

    @pytest.mark.parametrize("name", PRESETS)
    def test_breakdown_telescopes_in_every_snapshot(self, name):
        expected = json.loads(snapshot_path(name).read_text())
        for app in expected["applications"]:
            parts = [app[c] for c in BREAKDOWN_COMPONENTS]
            assert all(p is not None for p in parts), app["app_id"]
            assert all(p >= 0 for p in parts), app["app_id"]
            assert sum(parts) == pytest.approx(app["total_delay"], abs=1e-9)

    @pytest.mark.parametrize("name", PRESETS)
    def test_snapshot_mentions_every_breakdown_component(self, name):
        expected = json.loads(snapshot_path(name).read_text())
        for app in expected["applications"]:
            for component in BREAKDOWN_COMPONENTS:
                assert component in app


class TestDeterminism:
    @pytest.mark.parametrize("name", ["autoscale-out", "preemption-storm"])
    def test_same_seed_same_logs(self, name, tmp_path):
        """Two builds at the preset seed emit byte-identical log files."""
        scenario = get_scenario(name)
        dirs = []
        for i in range(2):
            run = scenario.run()
            out = tmp_path / f"run{i}"
            run.testbed.dump_logs(out)
            dirs.append(out)
        a, b = (sorted(d.iterdir()) for d in dirs)
        assert [p.name for p in a] == [p.name for p in b]
        for pa, pb in zip(a, b):
            assert pa.read_bytes() == pb.read_bytes(), pa.name

    def test_different_seed_different_logs(self, tmp_path):
        scenario = get_scenario("diurnal-burst")
        blobs = []
        for seed in (scenario.default_seed, scenario.default_seed + 1):
            run = scenario.run(seed=seed)
            out = tmp_path / f"seed{seed}"
            run.testbed.dump_logs(out)
            blobs.append(b"".join(p.read_bytes() for p in sorted(out.iterdir())))
        assert blobs[0] != blobs[1]


class TestCLI:
    def test_list_names_every_preset(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in PRESETS:
            assert name in out

    def test_unknown_subcommand_lists_presets_on_stderr(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["bogus"]) == 2
        captured = capsys.readouterr()
        assert "unknown command" in captured.err
        for name in PRESETS:
            assert name in captured.err
        assert not captured.out

    def test_unknown_preset_lists_presets_on_stderr(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["scenario", "no-such-preset"]) == 2
        captured = capsys.readouterr()
        assert "no-such-preset" in captured.err
        for name in PRESETS:
            assert name in captured.err

    def test_no_arguments_prints_usage_and_fails(self, capsys):
        from repro.experiments.__main__ import main

        assert main([]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_module_is_runnable_without_traceback(self):
        """Regression: ``python -m repro.experiments`` used to die with
        'No module named repro.experiments.__main__'."""
        import os
        import subprocess
        import sys

        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "definitely-not-a-command"],
            capture_output=True,
            text=True,
            env=env,
            cwd=Path(__file__).resolve().parent.parent,
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "No module named" not in proc.stderr
        for name in PRESETS:
            assert name in proc.stderr

    def test_run_smallest_preset_prints_new_components(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["scenario", "autoscale-out"]) == 0
        out = capsys.readouterr().out
        for component in BREAKDOWN_COMPONENTS:
            assert component in out
