"""Table II: container allocation throughput vs cluster load.

Shape claims: throughput scales (roughly monotonically) with offered
load — the Capacity Scheduler's batch allocation is not the bottleneck
(paper: 272 -> 2831 containers/s from 10% to 100% load).
"""

from repro.experiments.table2 import run_table2


def test_table2_allocation_throughput(benchmark, scale, seed, record_rows):
    result = benchmark.pedantic(run_table2, args=(scale, seed), rounds=1, iterations=1)
    record_rows("table2", result.rows())

    throughput = result.throughput
    loads = sorted(throughput)
    assert result.is_monotonic(), f"throughput not scaling: {throughput}"
    # An order of magnitude between the lightest and heaviest load
    # (paper: 272 vs 2831).
    assert throughput[loads[-1]] > 2.5 * throughput[loads[0]]
    # Hundreds-to-thousands per second at high load.
    assert throughput[loads[-1]] > 500.0
