"""Unit tests for the rotation-aware directory tailer."""

from __future__ import annotations

import os

import pytest

from repro.live.tailer import DirectoryTailer, StreamTailer, TailChunk


def _listing_of(directory):
    """A DirectoryTailer poll listing for assertions on one stream."""
    return DirectoryTailer(directory)._listing()


class TestLineOwnership:
    """The live file only ever surrenders complete lines."""

    def test_partial_tail_is_held_back(self, tmp_path):
        log = tmp_path / "rm.log"
        log.write_bytes(b"line one\nline tw")
        tailer = DirectoryTailer(tmp_path)
        (chunk,) = tailer.poll()
        assert chunk.daemon == "rm"
        assert chunk.data == b"line one\n"

    def test_completed_tail_arrives_next_poll(self, tmp_path):
        log = tmp_path / "rm.log"
        log.write_bytes(b"line one\nline tw")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        with log.open("ab") as handle:
            handle.write(b"o done\nline three\n")
        (chunk,) = tailer.poll()
        assert chunk.data == b"line two done\nline three\n"

    def test_drain_flushes_the_unterminated_tail(self, tmp_path):
        (tmp_path / "rm.log").write_bytes(b"done\nno newline yet")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        (chunk,) = tailer.drain()
        # EOF ends the line, exactly like the batch reader.
        assert chunk.data == b"no newline yet\n"
        assert tailer.drained

    def test_quiet_polls_emit_empty_chunks(self, tmp_path):
        (tmp_path / "rm.log").write_bytes(b"a\n")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        (chunk,) = tailer.poll()
        assert chunk.data == b""

    def test_lag_counts_held_back_bytes(self, tmp_path):
        (tmp_path / "rm.log").write_bytes(b"a\npartial")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        assert tailer.tail_lag_bytes == len(b"partial")


class TestRotation:
    """log4j-style rename rotation: segments picked up oldest-first."""

    def test_existing_segments_read_oldest_first(self, tmp_path):
        (tmp_path / "rm.log.2").write_bytes(b"oldest\n")
        (tmp_path / "rm.log.1").write_bytes(b"middle\n")
        (tmp_path / "rm.log").write_bytes(b"live\n")
        tailer = DirectoryTailer(tmp_path)
        (chunk,) = tailer.poll()
        assert chunk.data == b"oldest\nmiddle\nlive\n"
        assert chunk.segments == 3

    def test_rename_rotation_between_polls(self, tmp_path):
        live = tmp_path / "rm.log"
        live.write_bytes(b"first\n")
        tailer = DirectoryTailer(tmp_path)
        (chunk,) = tailer.poll()
        assert chunk.data == b"first\n"
        # The appender rotates: live becomes .1, a fresh live appears.
        os.rename(live, tmp_path / "rm.log.1")
        with (tmp_path / "rm.log.1").open("ab") as handle:
            handle.write(b"flushed at rotation\n")
        live.write_bytes(b"second\n")
        (chunk,) = tailer.poll()
        # The cursor followed the inode: no re-read of "first", the
        # rotated remainder precedes the new live file's bytes.
        assert chunk.data == b"flushed at rotation\nsecond\n"
        assert tailer.rotations == 1
        assert chunk.segments == 2

    def test_rotated_unterminated_tail_is_newline_normalized(self, tmp_path):
        live = tmp_path / "rm.log"
        live.write_bytes(b"complete\nhalf a lin")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        os.rename(live, tmp_path / "rm.log.1")
        live.write_bytes(b"fresh\n")
        (chunk,) = tailer.poll()
        # Without normalization this would glue "half a lin" + "fresh".
        assert chunk.data == b"half a lin\nfresh\n"

    def test_multiple_rotations_in_one_gap(self, tmp_path):
        live = tmp_path / "rm.log"
        live.write_bytes(b"a\n")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        # Two rotations happen before the next poll.
        os.rename(live, tmp_path / "rm.log.1")
        live.write_bytes(b"b\n")
        os.rename(tmp_path / "rm.log.1", tmp_path / "rm.log.2")
        os.rename(live, tmp_path / "rm.log.1")
        live.write_bytes(b"c\n")
        (chunk,) = tailer.poll()
        assert chunk.data == b"b\nc\n"
        assert chunk.segments == 3

    def test_vanished_file_is_finalized(self, tmp_path):
        live = tmp_path / "rm.log"
        live.write_bytes(b"a\n")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        live.unlink()
        (chunk,) = tailer.poll()
        assert chunk.data == b""


class TestTruncation:
    def test_shrunk_live_file_resyncs_from_zero(self, tmp_path):
        live = tmp_path / "rm.log"
        live.write_bytes(b"a long first incarnation of the log\n")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        live.write_bytes(b"restarted\n")  # same name, smaller size
        (chunk,) = tailer.poll()
        assert chunk.data == b"restarted\n"
        assert tailer.resyncs == 1


class TestSameInodeRecreation:
    """Truncate-and-rewrite on the same inode must resync even when the
    new content is not smaller than the consumed offset — the head
    fingerprint, not the size, is what detects the new incarnation."""

    def test_same_size_overwrite_resyncs_from_zero(self, tmp_path):
        live = tmp_path / "rm.log"
        first = b"first incarnation, line A\n"
        live.write_bytes(first)
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        # Same path, same inode (open("wb") truncates in place), and —
        # the killer case for the size heuristic — the same byte count.
        second = b"second incarnation line A\n"
        assert len(second) == len(first)
        live.write_bytes(second)
        (chunk,) = tailer.poll()
        assert chunk.data == second
        assert tailer.resyncs == 1

    def test_recreation_growing_past_old_offset_resyncs(self, tmp_path):
        live = tmp_path / "rm.log"
        live.write_bytes(b"short old content\n")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        replacement = b"entirely new content that is longer\nsecond line\n"
        live.write_bytes(replacement)
        (chunk,) = tailer.poll()
        # The pre-fingerprint tailer would emit from the stale offset:
        # mid-line garbage.  Resync re-reads the incarnation whole.
        assert chunk.data == replacement
        assert tailer.resyncs == 1

    def test_plain_append_does_not_false_positive(self, tmp_path):
        live = tmp_path / "rm.log"
        live.write_bytes(b"stable head line\n")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        with live.open("ab") as handle:
            handle.write(b"appended line\n")
        (chunk,) = tailer.poll()
        assert chunk.data == b"appended line\n"
        assert tailer.resyncs == 0

    def test_fingerprint_survives_checkpoint_round_trip(self, tmp_path):
        live = tmp_path / "rm.log"
        first = b"first incarnation, line A\n"
        live.write_bytes(first)
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        state = tailer.to_state()
        second = b"second incarnation line A\n"
        assert len(second) == len(first)
        live.write_bytes(second)
        resumed = DirectoryTailer.from_state(state)
        (chunk,) = resumed.poll()
        assert chunk.data == second
        assert resumed.resyncs == 1

    def test_drain_detects_recreation_too(self, tmp_path):
        live = tmp_path / "rm.log"
        first = b"first incarnation, line A\n"
        live.write_bytes(first)
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        second = b"second incarnation line A\n"
        live.write_bytes(second)
        (chunk,) = tailer.drain()
        assert chunk.data == second
        assert tailer.resyncs == 1


class TestDirectoryScanning:
    def test_non_log_files_are_ignored(self, tmp_path):
        (tmp_path / "rm.log").write_bytes(b"a\n")
        (tmp_path / "notes.txt").write_bytes(b"not a log\n")
        (tmp_path / "rm.log.bak").write_bytes(b"not a segment\n")
        tailer = DirectoryTailer(tmp_path)
        chunks = tailer.poll()
        assert [c.daemon for c in chunks] == ["rm"]

    def test_streams_visit_in_sorted_daemon_order(self, tmp_path):
        for name in ("zeta.log", "alpha.log", "mid.log"):
            (tmp_path / name).write_bytes(b"x\n")
        tailer = DirectoryTailer(tmp_path)
        assert [c.daemon for c in tailer.poll()] == ["alpha", "mid", "zeta"]

    def test_missing_directory_yields_nothing(self, tmp_path):
        tailer = DirectoryTailer(tmp_path / "never-created")
        assert tailer.poll() == []

    def test_stream_appearing_later_is_picked_up(self, tmp_path):
        (tmp_path / "a.log").write_bytes(b"a\n")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        (tmp_path / "b.log").write_bytes(b"b\n")
        chunks = tailer.poll()
        assert [(c.daemon, c.data) for c in chunks] == [
            ("a", b""),
            ("b", b"b\n"),
        ]


class TestCheckpointState:
    def test_round_trip_resumes_at_the_cursor(self, tmp_path):
        live = tmp_path / "rm.log"
        live.write_bytes(b"before checkpoint\n")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        state = tailer.to_state()
        with live.open("ab") as handle:
            handle.write(b"after checkpoint\n")
        resumed = DirectoryTailer.from_state(state)
        (chunk,) = resumed.poll()
        assert chunk.data == b"after checkpoint\n"

    def test_state_is_json_serializable(self, tmp_path):
        import json

        (tmp_path / "rm.log.1").write_bytes(b"x\n")
        (tmp_path / "rm.log").write_bytes(b"y\n")
        tailer = DirectoryTailer(tmp_path)
        tailer.poll()
        clone = DirectoryTailer.from_state(json.loads(json.dumps(tailer.to_state())))
        assert clone.streams["rm"].to_state() == tailer.streams["rm"].to_state()

    def test_directory_override_rehomes_the_session(self, tmp_path):
        origin = tmp_path / "origin"
        origin.mkdir()
        (origin / "rm.log").write_bytes(b"a\n")
        tailer = DirectoryTailer(origin)
        tailer.poll()
        moved = DirectoryTailer.from_state(
            tailer.to_state(), directory=tmp_path / "elsewhere"
        )
        assert moved.directory == tmp_path / "elsewhere"
