"""Tests for the sdchecker command-line interface."""

import json

import pytest

from repro.core.cli import main


@pytest.fixture(scope="module")
def logdir(tmp_path_factory, single_app_run):
    bed, _app, _report = single_app_run
    path = tmp_path_factory.mktemp("logs")
    bed.dump_logs(path)
    return path


class TestCli:
    def test_summary_output(self, logdir, capsys):
        assert main([str(logdir)]) == 0
        out = capsys.readouterr().out
        assert "SDchecker report: 1 application(s)" in out

    def test_json_output(self, logdir, capsys):
        assert main([str(logdir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["applications"] == 1
        assert "total_delay" in payload["metrics"]

    def test_metric_mode(self, logdir, capsys):
        assert main([str(logdir), "--metric", "total_delay"]) == 0
        out = capsys.readouterr().out
        assert "total_delay" in out and "p95" in out

    def test_metric_json(self, logdir, capsys):
        assert main([str(logdir), "--metric", "am_delay", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "am_delay"
        assert payload["n"] == 1

    def test_graph_mode(self, logdir, capsys, single_app_run):
        _bed, app, _report = single_app_run
        assert main([str(logdir), "--graph", str(app.app_id)]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_graph_unknown_app(self, logdir, capsys):
        assert main([str(logdir), "--graph", "application_1_9999"]) == 2

    def test_bug_check_mode(self, logdir, capsys):
        assert main([str(logdir), "--bug-check"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_missing_directory(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_jobs_defaults_to_auto(self):
        from repro.core.cli import build_arg_parser
        from repro.core.parser import AUTO_JOBS

        args = build_arg_parser().parse_args(["somedir"])
        assert args.jobs == AUTO_JOBS

    def test_jobs_accepts_auto_and_counts(self, logdir, capsys):
        assert main([str(logdir), "--jobs", "auto"]) == 0
        capsys.readouterr()
        assert main([str(logdir), "--jobs", "2"]) == 0

    def test_jobs_rejects_zero(self, logdir, capsys):
        assert main([str(logdir), "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_jobs_rejects_garbage(self, logdir, capsys):
        with pytest.raises(SystemExit):
            main([str(logdir), "--jobs", "fast"])
        assert "auto" in capsys.readouterr().err

    def test_offline_round_trip_matches_in_memory(self, logdir, single_app_run):
        """Mining the dumped text files reproduces the in-memory report."""
        from repro.core.checker import SDChecker

        _bed, _app, live_report = single_app_run
        offline = SDChecker().analyze(logdir)
        assert len(offline) == len(live_report)
        live = live_report.sample("total_delay").p50
        dumped = offline.sample("total_delay").p50
        assert dumped == pytest.approx(live, abs=0.002)  # 1 ms log precision


class TestDiagnosticsFlags:
    @pytest.fixture
    def degraded_logdir(self, logdir, tmp_path):
        """A copy of the corpus with one drifted (unparseable) line."""
        import shutil

        out = tmp_path / "logs"
        shutil.copytree(logdir, out)
        rm = out / "hadoop-resourcemanager.log"
        rm.write_text(rm.read_text() + "2018-02-12 00:00:00,000 INFO X: drifted\n")
        return out

    def test_diagnostics_flag_prints_ledger(self, logdir, capsys):
        assert main([str(logdir), "--diagnostics"]) == 0
        assert "Mining diagnostics: clean" in capsys.readouterr().out

    def test_diagnostics_in_json_payload(self, logdir, capsys):
        assert main([str(logdir), "--json", "--diagnostics"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"]["degraded"] is False

    def test_json_omits_diagnostics_by_default(self, logdir, capsys):
        assert main([str(logdir), "--json"]) == 0
        assert "diagnostics" not in json.loads(capsys.readouterr().out)

    def test_strict_passes_on_clean_corpus(self, logdir):
        assert main([str(logdir), "--strict"]) == 0

    def test_strict_fails_on_degraded_corpus(self, degraded_logdir, capsys):
        assert main([str(degraded_logdir), "--strict"]) == 1
        assert "DEGRADED" in capsys.readouterr().err

    def test_strict_with_diagnostics_prints_once(self, degraded_logdir, capsys):
        assert main([str(degraded_logdir), "--strict", "--diagnostics"]) == 1
        captured = capsys.readouterr()
        assert "DEGRADED" in captured.out
        assert "DEGRADED" not in captured.err
