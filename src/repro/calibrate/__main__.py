"""Entry point for ``python -m repro.calibrate``."""

import sys

from repro.calibrate.cli import main

if __name__ == "__main__":
    sys.exit(main())
