"""Command-line interface: ``python -m repro.analysis [options]``.

Runs the five sdlint passes over the simulator source tree, filters
the findings through the checked-in baseline, and exits non-zero when
anything above the baseline remains — the shape CI wants::

    PYTHONPATH=src python -m repro.analysis            # human output
    PYTHONPATH=src python -m repro.analysis --json     # machine output
    PYTHONPATH=src python -m repro.analysis --write-baseline
    PYTHONPATH=src python -m repro.analysis --check-baseline  # stale?

The scan root is the directory *containing* the ``repro`` package
(``src/`` in a checkout); the default baseline sits next to it at
``<root>/../sdlint.baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

import repro
from repro.analysis import (
    asyncsafety,
    catalog,
    determinism,
    procsafety,
    statemachines,
)
from repro.analysis.baseline import (
    load_baseline,
    partition,
    render_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding, sort_findings

__all__ = ["PASSES", "build_arg_parser", "default_root", "main"]

#: Pass name -> runner(root) used by ``--pass``.
PASSES: Dict[str, Callable[[Path], List[Finding]]] = {
    "catalog": catalog.run,
    "statemachines": statemachines.run,
    "determinism": determinism.run,
    "asyncsafety": asyncsafety.run,
    "procsafety": procsafety.run,
}


def default_root() -> Path:
    """The directory containing the installed ``repro`` package."""
    return Path(repro.__file__).resolve().parents[1]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sdlint",
        description=(
            "Static contract checker for the SDchecker reproduction: "
            "log-catalog coverage, state-machine structure, simulator "
            "determinism, async safety, and process-boundary safety."
        ),
    )
    parser.add_argument(
        "--root",
        help="directory containing the 'repro' package (default: the "
        "installed package's parent)",
    )
    parser.add_argument(
        "--baseline",
        help="baseline file of accepted finding keys "
        "(default: <root>/../sdlint.baseline)",
    )
    parser.add_argument(
        "--pass",
        dest="passes",
        action="append",
        choices=sorted(PASSES),
        help="run only this pass (repeatable; default: all)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="exit 1 if the checked-in baseline differs from what "
        "--write-baseline would produce now (stale-baseline CI gate; "
        "run with all passes enabled)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    root = Path(args.root).resolve() if args.root else default_root()
    if not (root / "repro").is_dir() and not root.is_dir():
        print(f"sdlint: {root} is not a directory", file=sys.stderr)
        return 2
    pass_names = args.passes or sorted(PASSES)
    findings = sort_findings(
        finding for name in pass_names for finding in PASSES[name](root)
    )
    baseline_path = (
        Path(args.baseline) if args.baseline else root.parent / "sdlint.baseline"
    )

    if args.write_baseline:
        count = write_baseline(baseline_path, findings)
        print(f"sdlint: wrote {count} baseline entrie(s) to {baseline_path}")
        return 0

    if args.check_baseline:
        expected = render_baseline(findings)
        actual = baseline_path.read_text() if baseline_path.is_file() else ""
        if expected != actual:
            print(
                f"sdlint: baseline {baseline_path} is stale; regenerate "
                f"with --write-baseline and review the diff"
            )
            return 1
        print(f"sdlint: baseline {baseline_path} is up to date")
        return 0

    active, suppressed, unused = partition(findings, load_baseline(baseline_path))

    if args.json:
        counts: Dict[str, int] = {}
        for finding in active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        print(
            json.dumps(
                {
                    "root": str(root),
                    "passes": pass_names,
                    "findings": [f.to_json() for f in active],
                    "counts": counts,
                    "suppressed": len(suppressed),
                    "unused_baseline": unused,
                },
                indent=2,
            )
        )
    else:
        for finding in active:
            print(finding.render())
        note = f", {len(suppressed)} suppressed by baseline" if suppressed else ""
        print(f"sdlint: {len(active)} finding(s){note}")
        for key in unused:
            print(f"sdlint: note: unused baseline entry: {key}")
    return 1 if active else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
