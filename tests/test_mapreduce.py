"""Tests for the MapReduce framework and its workload factories."""

import pytest

from repro.core.checker import SDChecker
from repro.mapreduce.application import MapReduceApplication
from repro.params import GB, SimulationParams
from repro.testbed import Testbed
from repro.workloads.dfsio import dfsio_map_body, make_dfsio_app
from repro.workloads.wordcount import make_mr_wordcount


@pytest.fixture
def mr_run():
    bed = Testbed(params=SimulationParams(num_nodes=5), seed=23)
    app = MapReduceApplication("wc", num_maps=6, num_reduces=2)
    bed.submit(app)
    bed.run_until_all_finished(limit=5000)
    return bed, app, SDChecker().analyze(bed.log_store)


class TestMapReduceApplication:
    def test_phases_run_in_order(self, mr_run):
        _bed, app, _report = mr_run
        assert app.milestones["map_done"] <= app.milestones["reduce_done"]
        assert app.milestones["reduce_done"] <= app.milestones["job_done"]

    def test_all_containers_allocated(self, mr_run):
        _bed, app, _report = mr_run
        # AM + 6 maps + 2 reduces.
        assert len(app.grants) == 9

    def test_instance_types_from_logs(self, mr_run):
        """SDchecker classifies mrm/mrsm/mrsr from the first log lines."""
        _bed, _app, report = mr_run
        types = report.launching_by_instance_type()
        assert len(types.get("mrm", [])) == 1
        assert len(types.get("mrsm", [])) == 6
        assert len(types.get("mrsr", [])) == 2

    def test_am_heartbeat_is_flat_one_second(self, small_params):
        app = MapReduceApplication("wc", num_maps=1)
        assert app.am_heartbeat_intervals(small_params) == (1.0, 1.0)

    def test_zero_maps_rejected(self):
        with pytest.raises(ValueError):
            MapReduceApplication("bad", num_maps=0)

    def test_rm_app_reaches_finished(self, mr_run):
        bed, app, _report = mr_run
        assert bed.rm.apps[app.app_id].rm_app.state == "FINISHED"


class TestFactories:
    def test_mr_wordcount_sizes_by_blocks(self, small_params):
        app = make_mr_wordcount("wc", 10 * small_params.hdfs_block_bytes, small_params)
        assert app.num_maps == 10

    def test_mr_wordcount_minimum_one_map(self, small_params):
        app = make_mr_wordcount("wc", 1.0, small_params)
        assert app.num_maps == 1

    def test_dfsio_app_writes_to_hdfs(self):
        params = SimulationParams(
            num_nodes=5, dfsio_bytes_per_map=2 * GB, dfsio_stream_rate=400 * 1024 * 1024
        )
        bed = Testbed(params=params, seed=29)
        app = make_dfsio_app("dfsio", num_maps=3)
        bed.submit(app)
        bed.run_until_all_finished(limit=5000)
        # Each map streamed 2 GB through disks: the job cannot finish
        # faster than the data movement allows.
        assert app.milestones["job_done"] > 5.0
