"""Tests for the section V-B optimization features and ablation knobs."""

import pytest

from repro.core.checker import SDChecker
from repro.params import SimulationParams
from repro.testbed import Testbed
from tests.conftest import make_query_app


def _run_one(params, seed=61, **app_kwargs):
    bed = Testbed(params=params, seed=seed)
    app = make_query_app("q", query=5, **app_kwargs)
    bed.submit(app)
    bed.run_until_all_finished(limit=5000)
    return bed, app, SDChecker().analyze(bed.log_store)


class TestJvmReuse:
    def test_warm_pool_accumulates(self):
        params = SimulationParams(num_nodes=1, jvm_reuse=True)
        bed = Testbed(params=params, seed=61)
        first = make_query_app("q1", query=6)
        bed.submit(first)
        bed.run_until_all_finished(limit=5000)
        bed.run(until=bed.sim.now + 5.0)  # AM container cleanup lands
        nm = bed.rm.node_managers[0]
        assert nm._warm_jvms.get("spe", 0) >= 1
        assert nm._warm_jvms.get("spm", 0) >= 1

    def test_second_app_reuses_and_speeds_up(self):
        def driver_delay(reuse):
            params = SimulationParams(num_nodes=1, jvm_reuse=reuse)
            bed = Testbed(params=params, seed=61)
            first = make_query_app("q1", query=6)
            second = make_query_app("q2", query=6)
            bed.submit(first)
            bed.submit(second, delay=60.0)  # after the first completed
            bed.run_until_all_finished(limit=5000)
            report = SDChecker().analyze(bed.log_store)
            delays = {a.app_id: a.driver_delay for a in report.apps}
            return delays[str(second.app_id)]

        assert driver_delay(True) < 0.75 * driver_delay(False)

    def test_disabled_by_default(self):
        assert not SimulationParams().jvm_reuse

    def test_invalid_discount_rejected(self):
        with pytest.raises(ValueError):
            SimulationParams(jvm_reuse_discount=1.0)


class TestDedicatedLocalization:
    def test_dedicated_storage_serves_locally(self):
        params = SimulationParams(num_nodes=5, localization_storage="dedicated")
        _bed, _app, report = _run_one(params)
        loc = report.container_sample("localization", workers_only=False)
        # 500 MB at 500 MB/s SSD: ~1 s + fixed parts, no NIC legs.
        assert loc.max() < 2.5

    def test_invalid_storage_rejected(self):
        with pytest.raises(ValueError):
            SimulationParams(localization_storage="tape")


class TestLocalizationCacheKnob:
    def test_cache_off_forces_refetch(self):
        from repro.mapreduce.application import MapReduceApplication

        def map_done(cache):
            params = SimulationParams(num_nodes=2, nm_localization_cache=cache)
            bed = Testbed(params=params, seed=62)
            app = MapReduceApplication("wc", num_maps=40)
            bed.submit(app)
            bed.run_until_all_finished(limit=5000)
            return app.milestones["map_done"]

        assert map_done(False) > map_done(True)


class TestHeartbeatKnob:
    def test_faster_beat_cuts_acquisition_cap(self):
        from repro.mapreduce.application import MapReduceApplication

        def acquisition_max(interval):
            params = SimulationParams(num_nodes=5, mr_am_heartbeat_s=interval)
            bed = Testbed(params=params, seed=63)
            bed.submit(MapReduceApplication("wc", num_maps=40))
            bed.run_until_all_finished(limit=5000)
            report = SDChecker().analyze(bed.log_store)
            return report.container_sample("acquisition").max()

        assert acquisition_max(0.25) <= 0.3
        assert acquisition_max(2.0) <= 2.1
        assert acquisition_max(2.0) > 0.5

    def test_rpc_counter_ticks(self, single_app_run):
        bed, _app, _report = single_app_run
        assert bed.rm.allocate_rpc_count > 0


class TestEvictionKnob:
    def test_zero_sensitivity_disables_eviction(self, sim):
        from repro.cluster.contention import cold_fraction
        from tests.test_cluster import make_node

        node = make_node(sim)
        node.begin_write(1e10)
        assert cold_fraction(node, 100 * 1024**2, 1024**3, sensitivity=0.0) == 0.0
