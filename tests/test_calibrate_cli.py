"""CLI suite for ``python -m repro.calibrate``.

Drives :func:`repro.calibrate.cli.main` in-process: fit writes a
loadable artifact and prints provenance, predict and whatif render
their tables, and every user error lands on stderr with exit code 2 —
no tracebacks.
"""

from __future__ import annotations

import json

import pytest

from repro.calibrate import FittedModel
from repro.calibrate.cli import main


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("calibrate-cli") / "fm.json"
    rc = main(
        [
            "fit",
            "--scenario",
            "diurnal-burst",
            "--grid",
            "0",
            "--random",
            "1",
            "--jobs",
            "1",
            "--out",
            str(path),
        ]
    )
    assert rc == 0
    return path


class TestFit:
    def test_writes_loadable_artifact(self, artifact):
        model = FittedModel.load(artifact)
        assert model.scenario == "diurnal-burst"
        assert model.best.error == 0.0

    def test_prints_provenance(self, artifact, capsys):
        rc = main(
            [
                "fit",
                "--scenario",
                "diurnal-burst",
                "--grid",
                "0",
                "--random",
                "1",
                "--jobs",
                "1",
                "--out",
                str(artifact),
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["format"] == "repro.calibrate/fitted-model"
        assert payload["best_error"] == 0.0

    def test_unknown_scenario_exits_2(self, capsys):
        rc = main(["fit", "--scenario", "nope"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "unknown scenario preset" in captured.err

    def test_bad_jobs_rejected(self, capsys):
        rc = main(["fit", "--jobs", "zero"])
        assert rc == 2


class TestPredict:
    def test_renders_table(self, artifact, capsys):
        rc = main(["predict", str(artifact)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "queue_wait_delay" in out
        assert "total_delay" in out

    def test_json_output(self, artifact, capsys):
        rc = main(["predict", str(artifact), "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert "total_delay" in payload
        assert "NaN" not in out

    def test_missing_model_exits_2(self, tmp_path, capsys):
        rc = main(["predict", str(tmp_path / "absent.json")])
        captured = capsys.readouterr()
        assert rc == 2
        assert "cannot read fitted model" in captured.err


class TestWhatIf:
    def test_scheduler_swap_table(self, artifact, capsys):
        rc = main(["whatif", str(artifact), "--set", "scheduler=opportunistic"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scheduler=opportunistic" in out
        assert "ramp_delay" in out

    def test_scale_halves_heartbeat(self, artifact, capsys):
        rc = main(
            ["whatif", str(artifact), "--scale", "nm_heartbeat_s=0.5", "--json"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        base_hb = FittedModel.load(artifact).fitted_params["nm_heartbeat_s"]
        assert payload["overrides"]["nm_heartbeat_s"] == pytest.approx(
            base_hb / 2
        )

    def test_unknown_knob_exits_2(self, artifact, capsys):
        rc = main(["whatif", str(artifact), "--set", "bogus=1"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "unknown knob" in captured.err

    def test_bad_scheduler_exits_2(self, artifact, capsys):
        rc = main(["whatif", str(artifact), "--set", "scheduler=mesos"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "unknown scheduler" in captured.err

    def test_no_overrides_exits_2(self, artifact, capsys):
        rc = main(["whatif", str(artifact)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "at least one override" in captured.err

    def test_scale_on_scheduler_exits_2(self, artifact, capsys):
        rc = main(["whatif", str(artifact), "--scale", "scheduler=0.5"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "cannot apply to the scheduler" in captured.err

    def test_malformed_set_exits_2(self, artifact, capsys):
        rc = main(["whatif", str(artifact), "--set", "nm_heartbeat_s"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "expects KNOB=VALUE" in captured.err
