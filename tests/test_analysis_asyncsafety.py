"""Tests for sdlint pass 4: the async-safety lint (SD401-SD403)."""

from pathlib import Path

from repro.analysis import asyncsafety

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"


def rules_of(sources):
    return [f.rule for f in asyncsafety.scan_sources(sources)]


class TestSD401Blocking:
    def test_direct_blocking_call_fires_once(self):
        findings = asyncsafety.scan_sources(
            {"repro/srv.py": "import time\nasync def h():\n    time.sleep(1)\n"}
        )
        assert [f.rule for f in findings] == ["SD401"]
        assert "time.sleep" in findings[0].message
        assert findings[0].path == "repro/srv.py"

    def test_async_sleep_is_sanctioned(self):
        assert (
            rules_of(
                {
                    "repro/srv.py": (
                        "import asyncio\n"
                        "async def h():\n"
                        "    await asyncio.sleep(1)\n"
                    )
                }
            )
            == []
        )

    def test_blocking_reachable_through_a_sync_chain(self):
        findings = asyncsafety.scan_sources(
            {
                "repro/a.py": (
                    "from repro.b import work\n"
                    "async def h():\n"
                    "    return work()\n"
                ),
                "repro/b.py": (
                    "def work():\n"
                    "    with open('x') as fh:\n"
                    "        return fh.read()\n"
                ),
            }
        )
        assert [f.rule for f in findings] == ["SD401"]
        assert "via work" in findings[0].message
        # Anchored at the async body's call site, in the async file.
        assert findings[0].path == "repro/a.py"

    def test_two_paths_to_the_same_blocking_call_dedupe(self):
        findings = asyncsafety.scan_sources(
            {
                "repro/a.py": (
                    "from repro.b import left, right\n"
                    "async def h():\n"
                    "    left()\n"
                    "    right()\n"
                ),
                "repro/b.py": (
                    "def left():\n"
                    "    return open('x')\n"
                    "def right():\n"
                    "    return open('y')\n"
                ),
            }
        )
        assert [f.rule for f in findings] == ["SD401"]

    def test_sync_functions_are_not_flagged(self):
        assert (
            rules_of({"repro/s.py": "import time\ndef h():\n    time.sleep(1)\n"})
            == []
        )


class TestSD402Unawaited:
    SOURCES = {
        "repro/c.py": (
            "import asyncio\n"
            "async def job():\n"
            "    return 1\n"
            "async def main():\n"
            "    job()\n"
            "    asyncio.create_task(job())\n"
        )
    }

    def test_bare_coroutine_call_and_dropped_task_handle(self):
        findings = asyncsafety.scan_sources(self.SOURCES)
        assert [f.rule for f in findings] == ["SD402", "SD402"]
        messages = " ".join(f.message for f in findings)
        assert "never awaited" in messages
        assert "create_task" in messages

    def test_awaited_and_retained_forms_are_clean(self):
        assert (
            rules_of(
                {
                    "repro/c.py": (
                        "import asyncio\n"
                        "async def job():\n"
                        "    return 1\n"
                        "async def main():\n"
                        "    await job()\n"
                        "    task = asyncio.create_task(job())\n"
                        "    await task\n"
                    )
                }
            )
            == []
        )


class TestSD403Queues:
    def test_unbounded_queue_construction(self):
        findings = asyncsafety.scan_sources(
            {
                "repro/q.py": (
                    "import asyncio\n"
                    "async def main():\n"
                    "    q = asyncio.Queue()\n"
                    "    await q.put(1)\n"
                )
            }
        )
        assert [f.rule for f in findings] == ["SD403"]
        assert "maxsize" in findings[0].message

    def test_explicit_zero_maxsize_is_still_unbounded(self):
        assert (
            rules_of(
                {
                    "repro/q.py": (
                        "import asyncio\n"
                        "async def main():\n"
                        "    q = asyncio.Queue(0)\n"
                    )
                }
            )
            == ["SD403"]
        )

    def test_bounded_queue_is_clean(self):
        assert (
            rules_of(
                {
                    "repro/q.py": (
                        "import asyncio\n"
                        "async def main():\n"
                        "    q = asyncio.Queue(maxsize=8)\n"
                    )
                }
            )
            == []
        )

    def test_join_without_timeout(self):
        findings = asyncsafety.scan_sources(
            {
                "repro/q.py": (
                    "import asyncio\n"
                    "async def drain(q: asyncio.Queue):\n"
                    "    await q.join()\n"
                )
            }
        )
        assert [f.rule for f in findings] == ["SD403"]
        assert "wait_for" in findings[0].message

    def test_join_wrapped_in_wait_for_is_clean(self):
        assert (
            rules_of(
                {
                    "repro/q.py": (
                        "import asyncio\n"
                        "async def drain(q: asyncio.Queue):\n"
                        "    await asyncio.wait_for(q.join(), timeout=5.0)\n"
                    )
                }
            )
            == []
        )


class TestRealTree:
    def test_only_the_baselined_serving_deviations_remain(self):
        # Two accepted deviations, both in the live server and both
        # baselined: the poll loop's tailing I/O, and the drain op's
        # end-of-life flush — single-threaded serving by design.
        findings = asyncsafety.run(SRC_ROOT)
        assert [f.rule for f in findings] == ["SD401", "SD401"]
        assert {f.path for f in findings} == {"repro/live/server.py"}
        messages = "\n".join(f.message for f in findings)
        assert "_poll_loop" in messages
        assert "_dispatch" in messages

    def test_live_and_faults_have_no_other_async_findings(self):
        paths = {f.path for f in asyncsafety.run(SRC_ROOT) if f.rule != "SD401"}
        assert not any(p.startswith("repro/live/") for p in paths)
        assert not any(p.startswith("repro/faults/") for p in paths)
