"""Statistics helpers for delay samples (CDFs, percentiles, etc.).

The paper reports delays as CDFs with 95th-percentile callouts
(Figs 4-9, 11-13), standard deviations (Fig 4c) and normalized ratios
(Figs 4b, 5b); :class:`DelaySample` provides exactly those views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DelaySample", "ratio_of"]


def ratio_of(base: float, new: float) -> float:
    """Slowdown factor ``new / base`` with honest edge semantics.

    ``0-vs-0`` is "unchanged" — ``1.0``, not undefined: components like
    ``preemption_delay`` are legitimately all-zero in calm runs (the
    scenario-pack ``compare()`` fix, shared here so the sample layer and
    every delta table agree).  A NaN on either side (an empty sample's
    percentile) or a nonzero-vs-zero comparison propagates NaN — callers
    rendering JSON must map it to null/"n/a", never serialize raw NaN.
    """
    if np.isnan(base) or np.isnan(new):
        return float("nan")
    if base:
        return new / base
    return 1.0 if new == base else float("nan")


class DelaySample:
    """An immutable sample of delay measurements (seconds)."""

    def __init__(self, values: Iterable[Optional[float]], name: str = ""):
        cleaned = [float(v) for v in values if v is not None]
        self.name = name
        self._values = np.sort(np.asarray(cleaned, dtype=float))

    def __len__(self) -> int:
        return int(self._values.size)

    def __bool__(self) -> bool:
        return self._values.size > 0

    @property
    def values(self) -> np.ndarray:
        return self._values

    # -- point statistics --------------------------------------------------
    def percentile(self, q: float) -> float:
        """q-th percentile (q in [0, 100]); NaN for empty samples."""
        if self._values.size == 0:
            return float("nan")
        return float(np.percentile(self._values, q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """The paper's headline tail statistic."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def mean(self) -> float:
        if self._values.size == 0:
            return float("nan")
        return float(np.mean(self._values))

    def std(self) -> float:
        """Standard deviation (Fig 4c)."""
        if self._values.size == 0:
            return float("nan")
        return float(np.std(self._values))

    def max(self) -> float:
        if self._values.size == 0:
            return float("nan")
        return float(self._values[-1])

    def min(self) -> float:
        if self._values.size == 0:
            return float("nan")
        return float(self._values[0])

    # -- distribution views ---------------------------------------------------
    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs tracing the empirical CDF."""
        n = self._values.size
        if n == 0:
            return []
        if n <= points:
            return [
                (float(v), (i + 1) / n) for i, v in enumerate(self._values)
            ]
        qs = np.linspace(0.0, 100.0, points)
        return [(float(np.percentile(self._values, q)), q / 100.0) for q in qs]

    def histogram(self, bins: int = 20) -> List[Tuple[float, int]]:
        """(bin left edge, count) pairs."""
        if self._values.size == 0:
            return []
        counts, edges = np.histogram(self._values, bins=bins)
        return [(float(edges[i]), int(counts[i])) for i in range(len(counts))]

    # -- combination ------------------------------------------------------------
    def ratio_to(self, other: "DelaySample", q: float = 50.0) -> float:
        """Percentile ratio self/other (slowdown factors in Figs 12-13).

        Edge semantics via :func:`ratio_of`: 0-vs-0 compares as 1.0
        (unchanged), while an empty sample on either side — or a
        nonzero numerator over a zero base — is NaN, which JSON
        renderers must show as "n/a", never raw ``nan``.
        """
        return ratio_of(other.percentile(q), self.percentile(q))

    def describe(self) -> str:
        """One-line summary used by the report tables."""
        if self._values.size == 0:
            return f"{self.name or 'sample'}: empty"
        return (
            f"{self.name or 'sample'}: n={len(self)} "
            f"median={self.p50:.3f}s p95={self.p95:.3f}s "
            f"mean={self.mean():.3f}s std={self.std():.3f}s"
        )

    def ascii_cdf(self, width: int = 56, height: int = 10) -> str:
        """A terminal rendering of the CDF (the paper's plot style).

        X axis: delay seconds (linear, min..max); Y axis: cumulative
        fraction.  Useful for eyeballing distributions in examples and
        the CLI without a plotting stack.
        """
        if self._values.size == 0:
            return "(empty sample)"
        lo, hi = float(self._values[0]), float(self._values[-1])
        span = max(hi - lo, 1e-9)
        rows = [[" "] * width for _ in range(height)]
        n = self._values.size
        for i, value in enumerate(self._values):
            x = min(width - 1, int((value - lo) / span * (width - 1)))
            y = min(height - 1, int((i + 1) / n * height) - (1 if (i + 1) == n else 0))
            y = max(0, y)
            rows[height - 1 - y][x] = "*"
        lines = [f"{self.name or 'delay'} CDF (n={n})"]
        for r, row in enumerate(rows):
            frac = (height - r) / height
            lines.append(f"{frac:4.0%} |" + "".join(row))
        lines.append("     +" + "-" * width)
        lines.append(f"      {lo:<10.2f}{'':{max(0, width - 22)}}{hi:>10.2f}  (s)")
        return "\n".join(lines)

    @staticmethod
    def of(values: Sequence[Optional[float]], name: str = "") -> "DelaySample":
        return DelaySample(values, name)
