"""AST extraction of log emitters: templates, tables, rendered samples.

The simulator and SDchecker deliberately share no code: the simulator
renders log4j text, the checker regex-mines it.  To cross-check the two
sides *statically* we pull the emitters out of the source with
:mod:`ast` — never by importing and running simulator code:

* state machines: classes carrying a ``TRANSITIONS`` dict literal (plus
  ``CLS``/``INITIAL``/``TEMPLATE``, inherited from same-module bases),
  as in :mod:`repro.yarn.state_machine`;
* free-form emissions: ``*.logger.info/warn/error(CLS, f"...")`` calls
  in :mod:`repro.spark`, :mod:`repro.mapreduce` and friends, with the
  f-string rendered into a representative sample line by substituting
  plausible global IDs for each interpolated expression.

Sample substitution is heuristic by design (it keys on the expression
text), but it is deterministic and it only has to produce lines *shaped*
like the real ones — the Table I regexes do the rest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "EmissionSite",
    "StateMachineSpec",
    "SAMPLE_APP_ID",
    "SAMPLE_ATTEMPT_ID",
    "SAMPLE_CONTAINER_ID",
    "SAMPLE_TASK_ATTEMPT_ID",
    "extract_emissions",
    "extract_state_machines",
    "iter_source_files",
    "render_joined_str",
]

#: Representative global IDs used when rendering sample lines.  They
#: follow the exact Hadoop shapes of :mod:`repro.yarn.ids`.
SAMPLE_APP_ID = "application_1515715200000_0042"
SAMPLE_CONTAINER_ID = "container_1515715200000_0042_01_000002"
SAMPLE_ATTEMPT_ID = "appattempt_1515715200000_0042_000001"
SAMPLE_TASK_ATTEMPT_ID = "attempt_1515715200000_0042_m_000000_0"

#: (needle, sample) pairs tried in order against the *source text* of an
#: interpolated expression; first hit wins.  Integers stay integers so
#: numeric format specs (``:04d``) keep working.
_EXPR_SAMPLES: Tuple[Tuple[str, Union[str, int]], ...] = (
    ("attempt(", SAMPLE_ATTEMPT_ID),
    ("container_id", SAMPLE_CONTAINER_ID),
    ("app_id", SAMPLE_APP_ID),
    ("task_id", 0),
    ("executor_id", 1),
    ("hostname", "worker01"),
    ("attempts", 1),
    ("attempt", SAMPLE_TASK_ATTEMPT_ID),
    ("granted", 4),
    ("total", 4),
    ("path", "/user/ubuntu/warehouse/lineitem/part-00000"),
    ("index", 0),
    ("task", 0),
)

_FALLBACK_SAMPLE = "X"


@dataclass(frozen=True, slots=True)
class StateMachineSpec:
    """One ``TRANSITIONS``-table state machine, as written in source."""

    name: str
    #: Emitting log4j class name (``CLS`` attribute), "" if unresolved.
    cls: str
    initial: str
    #: ``%``-format message template with entity/old/new/event keys.
    template: str
    #: (state, event) -> next state.
    transitions: Dict[Tuple[str, str], str]
    #: POSIX path relative to the scan root.
    path: str
    line: int

    @property
    def short_cls(self) -> str:
        """The bare class name of ``CLS`` (e.g. ``RMAppImpl``)."""
        return self.cls.rsplit(".", 1)[-1] if self.cls else ""


@dataclass(frozen=True, slots=True)
class EmissionSite:
    """One free-form ``logger.info(CLS, message)`` call site."""

    path: str
    line: int
    #: Resolved emitting log4j class, "" when not a static string.
    cls: str
    #: Sample rendered message line.
    rendered: str
    #: Source text of the message expression (for report context).
    source: str


def iter_source_files(root: Path) -> List[Path]:
    """All ``*.py`` files under ``root/repro`` (or ``root`` itself)."""
    root = Path(root)
    base = root / "repro" if (root / "repro").is_dir() else root
    return sorted(p for p in base.rglob("*.py") if p.is_file())


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(Path(root).resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _sample_for(expr_source: str) -> Union[str, int]:
    for needle, sample in _EXPR_SAMPLES:
        if needle in expr_source:
            return sample
    return _FALLBACK_SAMPLE


def render_joined_str(node: ast.JoinedStr) -> Optional[str]:
    """Render an f-string AST node into a representative sample line.

    Returns ``None`` when the node contains pieces that cannot be
    sampled (nested f-strings in dynamic format specs, etc.).
    """
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant):
            parts.append(str(value.value))
        elif isinstance(value, ast.FormattedValue):
            sample = _sample_for(ast.unparse(value.value))
            if value.conversion == ord("r"):
                sample = repr(sample)
            elif value.conversion == ord("s"):
                sample = str(sample)
            elif value.conversion == ord("a"):
                sample = ascii(sample)
            spec = ""
            if value.format_spec is not None:
                if all(
                    isinstance(v, ast.Constant) for v in value.format_spec.values
                ):
                    spec = "".join(str(v.value) for v in value.format_spec.values)
                else:
                    spec = ""
            try:
                parts.append(format(sample, spec))
            except (TypeError, ValueError):
                parts.append(str(sample))
        else:  # pragma: no cover - JoinedStr only holds the above
            return None
    return "".join(parts)


# -- state machines -----------------------------------------------------------

_LITERAL_ATTRS = ("CLS", "INITIAL", "TEMPLATE", "TRANSITIONS")


def _class_literal_attrs(node: ast.ClassDef) -> Dict[str, object]:
    """Literal class attributes (plain and annotated assignments)."""
    out: Dict[str, object] = {}
    for stmt in node.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        if target.id not in _LITERAL_ATTRS:
            continue
        try:
            out[target.id] = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            continue
    return out


def _valid_transitions(raw: object) -> Optional[Dict[Tuple[str, str], str]]:
    if not isinstance(raw, dict) or not raw:
        return None
    transitions: Dict[Tuple[str, str], str] = {}
    for key, value in raw.items():
        if (
            not isinstance(key, tuple)
            or len(key) != 2
            or not all(isinstance(part, str) for part in key)
            or not isinstance(value, str)
        ):
            return None
        transitions[(key[0], key[1])] = value
    return transitions


def extract_state_machines(root: Path) -> List[StateMachineSpec]:
    """Every class with a non-empty ``TRANSITIONS`` dict literal."""
    root = Path(root)
    specs: List[StateMachineSpec] = []
    for path in iter_source_files(root):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:
            continue
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }
        attrs = {name: _class_literal_attrs(node) for name, node in classes.items()}

        def resolve(name: str, attr: str, seen: frozenset = frozenset()) -> object:
            if name in seen or name not in classes:
                return None
            if attr in attrs[name]:
                return attrs[name][attr]
            for base in classes[name].bases:
                if isinstance(base, ast.Name):
                    found = resolve(base.id, attr, seen | {name})
                    if found is not None:
                        return found
            return None

        for name, node in sorted(classes.items()):
            transitions = _valid_transitions(resolve(name, "TRANSITIONS"))
            if transitions is None:
                continue
            specs.append(
                StateMachineSpec(
                    name=name,
                    cls=str(resolve(name, "CLS") or ""),
                    initial=str(resolve(name, "INITIAL") or ""),
                    template=str(resolve(name, "TEMPLATE") or ""),
                    transitions=transitions,
                    path=_rel(path, root),
                    line=node.lineno,
                )
            )
    return specs


# -- free-form emissions ------------------------------------------------------

_LOG_METHODS = {"info", "warn", "error"}


def _module_string_constants(tree: ast.Module) -> Dict[str, str]:
    consts: Dict[str, str] = {}
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            consts[stmt.targets[0].id] = stmt.value.value
    return consts


def _is_logger_call(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _LOG_METHODS:
        return False
    owner = func.value
    if isinstance(owner, ast.Attribute):
        return owner.attr.endswith("logger")
    if isinstance(owner, ast.Name):
        return owner.id.endswith("logger")
    return False


def extract_emissions(root: Path) -> List[EmissionSite]:
    """Sample-rendered lines for every static ``logger.<level>`` call.

    Calls whose message cannot be rendered statically (``%``-template
    application, variables) are skipped — the state-machine extractor
    covers the former, and the latter carry no checkable wording.
    """
    root = Path(root)
    sites: List[EmissionSite] = []
    for path in iter_source_files(root):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:
            continue
        consts = _module_string_constants(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not _is_logger_call(node):
                continue
            if len(node.args) != 2:
                continue
            cls_arg, msg_arg = node.args
            if isinstance(cls_arg, ast.Constant) and isinstance(cls_arg.value, str):
                cls = cls_arg.value
            elif isinstance(cls_arg, ast.Name):
                cls = consts.get(cls_arg.id, "")
            else:
                cls = ""
            if isinstance(msg_arg, ast.Constant) and isinstance(msg_arg.value, str):
                rendered: Optional[str] = msg_arg.value
            elif isinstance(msg_arg, ast.JoinedStr):
                rendered = render_joined_str(msg_arg)
            else:
                rendered = None
            if rendered is None:
                continue
            sites.append(
                EmissionSite(
                    path=_rel(path, root),
                    line=node.lineno,
                    cls=cls,
                    rendered=rendered,
                    source=ast.unparse(msg_arg),
                )
            )
    return sites
