"""Tests for sdlint pass 3: the determinism lint (SD301-SD303)."""

from pathlib import Path

from repro.analysis import determinism

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"


def rules_of(source: str, path: str = "repro/fake.py"):
    return [f.rule for f in determinism.scan_source(source, path)]


class TestUnseededRandom:
    def test_stdlib_random_call(self):
        assert rules_of("import random\nx = random.random()\n") == ["SD301"]

    def test_numpy_random_via_alias(self):
        assert rules_of("import numpy as np\nx = np.random.rand(3)\n") == ["SD301"]

    def test_from_import(self):
        assert rules_of("from random import shuffle\nshuffle([1, 2])\n") == ["SD301"]

    def test_distributions_module_is_exempt(self):
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert rules_of(source, "repro/simul/distributions.py") == []
        assert rules_of(source) == ["SD301"]

    def test_unrelated_module_attribute_ok(self):
        assert rules_of("import math\nx = math.sqrt(2)\n") == []


class TestWallClock:
    def test_time_time(self):
        assert rules_of("import time\nt = time.time()\n") == ["SD302"]

    def test_perf_counter(self):
        assert rules_of("import time\nt = time.perf_counter()\n") == ["SD302"]

    def test_datetime_now_from_import(self):
        source = "from datetime import datetime\nt = datetime.now()\n"
        assert rules_of(source) == ["SD302"]

    def test_datetime_module_form(self):
        source = "import datetime\nt = datetime.datetime.utcnow()\n"
        assert rules_of(source) == ["SD302"]


class TestUnorderedIteration:
    def test_for_over_set_literal(self):
        assert rules_of("for x in {1, 2, 3}:\n    print(x)\n") == ["SD303"]

    def test_for_over_set_call(self):
        assert rules_of("for x in set(items):\n    print(x)\n") == ["SD303"]

    def test_comprehension_over_set(self):
        assert rules_of("out = [x for x in set(items)]\n") == ["SD303"]

    def test_sorted_set_is_fine(self):
        assert rules_of("for x in sorted(set(items)):\n    print(x)\n") == []

    def test_list_iteration_is_fine(self):
        assert rules_of("for x in [1, 2]:\n    print(x)\n") == []


class TestCompletionOrderMerge:
    def test_as_completed_from_import(self):
        source = (
            "from concurrent.futures import as_completed\n"
            "for f in as_completed(futures):\n    f.result()\n"
        )
        assert rules_of(source) == ["SD304"]

    def test_as_completed_module_form(self):
        source = (
            "import concurrent.futures\n"
            "for f in concurrent.futures.as_completed(futures):\n    pass\n"
        )
        assert rules_of(source) == ["SD304"]

    def test_asyncio_as_completed(self):
        source = "import asyncio\nfor f in asyncio.as_completed(tasks):\n    pass\n"
        assert rules_of(source) == ["SD304"]

    def test_executor_map_is_sanctioned(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "with ProcessPoolExecutor() as pool:\n"
            "    results = list(pool.map(work, tasks))\n"
        )
        assert rules_of(source) == []


class TestWallClockLocaltimeFamily:
    """SD302 also covers the struct_time readers the live tailer could
    be tempted to stamp chunks with."""

    def test_time_localtime(self):
        assert rules_of("import time\nt = time.localtime()\n") == ["SD302"]

    def test_time_gmtime(self):
        assert rules_of("import time\nt = time.gmtime()\n") == ["SD302"]

    def test_time_ctime(self):
        assert rules_of("import time\ns = time.ctime()\n") == ["SD302"]

    def test_time_sleep_is_sanctioned(self):
        # Pacing a poll loop does not *read* the clock.
        assert rules_of("import time\ntime.sleep(0.1)\n") == []

    def test_asyncio_sleep_is_sanctioned(self):
        source = "import asyncio\nasync def f():\n    await asyncio.sleep(0.1)\n"
        assert rules_of(source) == []


class TestPristineTree:
    def test_simulator_source_is_deterministic(self):
        assert determinism.run(SRC_ROOT) == []

    def test_live_tree_is_scanned_and_clean(self):
        # The incremental miner/server promise replay byte-identity, so
        # the determinism lint must both reach them and find nothing.
        live_root = SRC_ROOT / "repro" / "live"
        scanned = {f.path for f in determinism.run(SRC_ROOT)}
        assert determinism.scan_tree(live_root) == []
        assert not any(p.startswith("repro/live/") for p in scanned)

    def test_syntax_errors_are_skipped(self):
        assert determinism.scan_source("def broken(:\n", "x.py") == []
