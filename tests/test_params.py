"""Tests for the calibration parameter container."""

import dataclasses

import pytest

from repro.params import GB, MB, SimulationParams


class TestValidation:
    def test_defaults_valid(self):
        SimulationParams().validate()  # no raise

    def test_with_overrides_returns_new_instance(self):
        base = SimulationParams()
        new = base.with_overrides(num_nodes=10)
        assert new.num_nodes == 10
        assert base.num_nodes == 25  # untouched

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_nodes", 0),
            ("min_registered_resources_ratio", 0.0),
            ("min_registered_resources_ratio", 1.5),
            ("hdfs_replication", 0),
            ("page_cache_bytes", -1.0),
            ("resource_calculator", "weird"),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            SimulationParams().with_overrides(**{field: value})

    def test_executor_must_fit_on_node(self):
        with pytest.raises(ValueError):
            SimulationParams(memory_per_node_mb=1024, executor_memory_mb=4096)

    def test_jvm_table_must_cover_all_instance_types(self):
        with pytest.raises(ValueError):
            SimulationParams(jvm_start_median_s={"spm": 0.5})

    def test_constructor_validates(self):
        with pytest.raises(ValueError):
            SimulationParams(num_nodes=-1)


class TestDerivedExpectations:
    """Sanity anchors the calibration depends on."""

    def test_paper_testbed_shape(self):
        p = SimulationParams()
        assert p.num_nodes == 25
        assert p.cores_per_node == 32
        assert p.executor_memory_mb == 4096 and p.executor_vcores == 8

    def test_units_are_bytes_per_second(self):
        p = SimulationParams()
        assert p.network_bandwidth == 1250 * MB  # 10 Gbps
        assert p.page_cache_bytes == 1 * GB

    def test_heartbeats(self):
        p = SimulationParams()
        assert p.mr_am_heartbeat_s == 1.0  # the Fig 7c cap
        assert p.spark_am_heartbeat_s < p.mr_am_heartbeat_s

    def test_gate_ratio_is_spark_default(self):
        assert SimulationParams().min_registered_resources_ratio == 0.8

    def test_dataclass_fields_have_defaults(self):
        for f in dataclasses.fields(SimulationParams):
            assert (
                f.default is not dataclasses.MISSING
                or f.default_factory is not dataclasses.MISSING
            ), f"{f.name} has no default"


class TestDictRoundTrip:
    """to_dict()/from_dict(): the fitted-model artifact contract."""

    def test_default_round_trip_is_exact(self):
        p = SimulationParams()
        d = p.to_dict()
        assert SimulationParams.from_dict(d) == p
        assert SimulationParams.from_dict(d).to_dict() == d

    def test_round_trip_preserves_overrides(self):
        p = SimulationParams(
            num_nodes=7, nm_heartbeat_s=0.5, queue_weights={"etl": 2.0}
        )
        q = SimulationParams.from_dict(p.to_dict())
        assert q.num_nodes == 7
        assert q.nm_heartbeat_s == 0.5
        assert q.queue_weights == {"etl": 2.0}

    def test_to_dict_covers_every_field(self):
        d = SimulationParams().to_dict()
        assert set(d) == {f.name for f in dataclasses.fields(SimulationParams)}

    def test_to_dict_does_not_alias_dict_fields(self):
        p = SimulationParams()
        d = p.to_dict()
        d["jvm_start_median_s"]["spm"] = 99.0
        assert p.jvm_start_median_s["spm"] != 99.0

    def test_from_dict_rejects_unknown_keys(self):
        d = SimulationParams().to_dict()
        d["nm_hearbeat_s"] = 0.5  # the typo-knob regression
        with pytest.raises(ValueError, match="nm_hearbeat_s"):
            SimulationParams.from_dict(d)

    def test_from_dict_rejects_ill_typed_values(self):
        base = SimulationParams().to_dict()
        for key, bad in [
            ("num_nodes", 2.5),
            ("num_nodes", True),
            ("nm_heartbeat_s", "fast"),
            ("jvm_reuse", 1),
            ("resource_calculator", 3),
            ("jvm_start_median_s", [1, 2]),
            ("jvm_start_median_s", {"spm": "slow"}),
            ("queue_weights", {"a": "heavy"}),
        ]:
            with pytest.raises(ValueError, match=key):
                SimulationParams.from_dict({**base, key: bad})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            SimulationParams.from_dict([("num_nodes", 5)])

    def test_from_dict_accepts_partial_payload(self):
        q = SimulationParams.from_dict({"num_nodes": 3})
        assert q.num_nodes == 3
        assert q.cores_per_node == SimulationParams().cores_per_node

    def test_with_overrides_rejects_unknown_knob(self):
        with pytest.raises(ValueError, match="unknown SimulationParams"):
            SimulationParams().with_overrides(nm_hearbeat_s=0.5)

    def test_with_overrides_rejects_ill_typed_knob(self):
        with pytest.raises(ValueError, match="num_nodes"):
            SimulationParams().with_overrides(num_nodes="many")

    def test_int_accepted_for_float_fields(self):
        assert SimulationParams().with_overrides(nm_heartbeat_s=2).nm_heartbeat_s == 2
