"""End-to-end tests for the sharded live deployment.

Covers the three layers separately and together: the pure partition /
merge helpers, a :class:`~repro.live.router.RouterServer` fanning out
to in-thread shard servers (fast, no processes), and the full
:class:`~repro.live.sharded.ShardedLiveService` with real worker
processes plus the HTTP metrics endpoint.  The headline assertion at
every layer is the sharded byte-identity contract: drained deployment,
merged state, rebuilt report == batch ``SDChecker`` over the union.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.core.checker import SDChecker
from repro.live import (
    LiveClient,
    LiveSession,
    QueryError,
    partition_directories,
    report_from_state_payload,
    serve_in_thread,
)
from repro.live.sharded import ShardedLiveService, serve_router_in_thread
from repro.logsys.record import LogRecord

DATA = Path(__file__).resolve().parent / "data"
GOLDEN = DATA / "golden"
APP_ID = "application_1515715200000_0001"


def _split_golden(tmp_path, shards):
    """Round-robin the golden files into ``shards`` directories."""
    shard_dirs = []
    for index in range(shards):
        shard_dir = tmp_path / f"shard{index}"
        shard_dir.mkdir()
        shard_dirs.append(shard_dir)
    files = sorted(p for p in GOLDEN.iterdir() if p.is_file())
    for index, path in enumerate(files):
        (shard_dirs[index % shards] / path.name).write_bytes(
            path.read_bytes()
        )
    return shard_dirs


def _union_batch_dict(shard_dirs, tmp_path):
    union = tmp_path / "union"
    union.mkdir()
    for shard_dir in shard_dirs:
        for path in shard_dir.iterdir():
            (union / path.name).write_bytes(path.read_bytes())
    report = SDChecker(jobs=1).analyze(union)
    return report.to_dict(include_diagnostics=True)


class TestPartition:
    def test_round_robin_is_deterministic(self):
        parts = partition_directories(["a", "b", "c", "d", "e"], 2)
        assert parts == [["a", "c", "e"], ["b", "d"]]
        assert parts == partition_directories(["a", "b", "c", "d", "e"], 2)

    def test_never_produces_an_empty_shard(self):
        parts = partition_directories(["a", "b"], 5)
        assert parts == [["a"], ["b"]]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            partition_directories(["a"], 0)

    def test_no_directories_rejected(self):
        with pytest.raises(ValueError, match="directory"):
            partition_directories([], 2)


@pytest.fixture()
def router_over_threads(tmp_path):
    """Two in-thread shard servers behind a router; no processes."""
    shard_dirs = _split_golden(tmp_path, 2)
    sessions = [LiveSession(shard_dir) for shard_dir in shard_dirs]
    shard_handles = [
        serve_in_thread(session, poll_interval=0.01) for session in sessions
    ]
    router = serve_router_in_thread(
        [(handle.host, handle.port) for handle in shard_handles]
    )
    yield router, shard_handles, shard_dirs, sessions
    router.stop()
    for handle in shard_handles:
        handle.stop()


class TestRouterMerging:
    def test_apps_merge_sorted(self, router_over_threads):
        router, _shards, _dirs, _sessions = router_over_threads
        with LiveClient(router.host, router.port) as client:
            apps = client.apps()
        assert [app["app_id"] for app in apps] == [APP_ID]
        assert apps[0]["status"] == "final"
        assert apps[0]["containers"] == 5

    def test_decomposition_routes_to_the_owning_shard(
        self, router_over_threads
    ):
        router, _shards, _dirs, _sessions = router_over_threads
        with LiveClient(router.host, router.port) as client:
            decomposition = client.decomposition(APP_ID)
        assert decomposition["app_id"] == APP_ID
        assert len(decomposition["containers"]) == 5

    def test_unknown_app_is_unknown_on_every_shard(self, router_over_threads):
        router, _shards, _dirs, _sessions = router_over_threads
        with LiveClient(router.host, router.port) as client:
            with pytest.raises(QueryError, match="unknown application"):
                client.decomposition("application_0_0000")

    def test_diagnostics_union_the_ledgers(self, router_over_threads):
        router, _shards, shard_dirs, _sessions = router_over_threads
        total_streams = sum(
            len(list(shard_dir.iterdir())) for shard_dir in shard_dirs
        )
        with LiveClient(router.host, router.port) as client:
            diagnostics = client.diagnostics()
        assert len(diagnostics["streams"]) == total_streams
        assert diagnostics["shards"] == 2
        assert diagnostics["degraded"] is False

    def test_metrics_aggregate_across_shards(self, router_over_threads):
        router, _shards, _dirs, sessions = router_over_threads
        with LiveClient(router.host, router.port) as client:
            text = client.metrics()
        expected_lines = int(
            sum(
                session.metrics.counter("repro_live_ingest_lines_total").value
                for session in sessions
            )
        )
        assert f"repro_live_ingest_lines_total {expected_lines}" in text
        # The router's own request counter is folded into the same scrape.
        assert "repro_live_queries_total" in text

    def test_drained_merge_is_byte_identical_to_batch(
        self, router_over_threads, tmp_path
    ):
        router, _shards, shard_dirs, _sessions = router_over_threads
        with LiveClient(router.host, router.port) as client:
            merged_state = client.drain()
        report = report_from_state_payload(merged_state)
        live = json.loads(
            json.dumps(report.to_dict(include_diagnostics=True))
        )
        assert live == json.loads(
            json.dumps(_union_batch_dict(shard_dirs, tmp_path))
        )

    def test_malformed_requests_counted_at_the_router(
        self, router_over_threads
    ):
        router, _shards, _dirs, _sessions = router_over_threads
        with socket.create_connection(
            (router.host, router.port), timeout=5.0
        ) as raw:
            reader = raw.makefile("rb")
            raw.sendall(b"not json\n")
            assert json.loads(reader.readline())["ok"] is False
            raw.sendall(b'{"op": "metrics"}\n')
            response = json.loads(reader.readline())
        assert "repro_live_malformed_requests_total 1" in response["result"]

    def test_shutdown_propagates_to_shards(self, router_over_threads):
        router, shard_handles, _dirs, _sessions = router_over_threads
        with LiveClient(router.host, router.port) as client:
            assert client.shutdown() == "shutting down"
        router.stop()
        for handle in shard_handles:
            handle.stop()
            with pytest.raises(OSError):
                socket.create_connection(
                    (handle.host, handle.port), timeout=1.0
                )


class TestShardedServiceProcesses:
    """The full supervisor: worker processes, router, HTTP metrics."""

    def test_two_shard_deployment_end_to_end(self, tmp_path):
        shard_dirs = _split_golden(tmp_path, 2)
        batch = _union_batch_dict(shard_dirs, tmp_path)
        service = ShardedLiveService(
            shard_dirs, shards=2, poll_interval=0.02, http_port=0
        )
        with service:
            assert len(service.partitions) == 2
            with service.client() as client:
                (app,) = client.apps()
                assert app["app_id"] == APP_ID
            host, port = service.http_address
            body = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10.0
            )
            assert body.status == 200
            text = body.read().decode("utf-8")
            assert "repro_live_ingest_lines_total" in text
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=10.0
                )
            merged = service.drained_report_dict()
        assert merged == json.loads(json.dumps(batch))

    def test_worker_startup_failure_is_reported(self, tmp_path):
        logdir = tmp_path / "logs"
        logdir.mkdir()
        # evict_after_polls=0 fails LiveSession validation inside the
        # worker process; the supervisor must relay that, not hang.
        service = ShardedLiveService([logdir], shards=1, evict_after_polls=0)
        with pytest.raises(RuntimeError, match="shard 0 failed to start"):
            service.start()
        service.stop()

    def test_stop_is_idempotent(self, tmp_path):
        shard_dirs = _split_golden(tmp_path, 2)
        service = ShardedLiveService(shard_dirs, shards=2, poll_interval=0.02)
        service.start()
        service.stop()
        service.stop()


class TestEvictionBoundsResidentState:
    """A rolling stream of finished apps must not grow resident state."""

    @staticmethod
    def _append(path, timestamp, cls, message):
        with path.open("a", encoding="utf-8") as handle:
            handle.write(LogRecord(timestamp, cls, message).render() + "\n")

    def test_rolling_finished_apps_stay_bounded(self, tmp_path):
        rm = tmp_path / "hadoop-resourcemanager.log"
        rm.touch()
        session = LiveSession(tmp_path, evict_after_polls=2)
        clock = [0.0]  # LogRecord timestamps are simulated seconds
        stream_high_water = 0
        total_apps = 12
        for i in range(1, total_apps + 1):
            clock[0] += 1.0
            app = f"application_1515715200000_{i:04d}"
            cid = f"container_1515715200000_{i:04d}_01_000001"
            self._append(
                rm, clock[0], "x.RMAppImpl",
                f"{app} State change from NEW to SUBMITTED on event = START",
            )
            self._append(
                rm, clock[0] + 0.1, "x.RMContainerImpl",
                f"{cid} Container Transitioned from NEW to ALLOCATED",
            )
            container_log = tmp_path / f"{cid}.log"
            self._append(
                container_log, clock[0] + 0.2,
                "org.apache.spark.executor.CoarseGrainedExecutorBackend",
                f"Started daemon with process name: 1@node01 for {cid}",
            )
            self._append(
                rm, clock[0] + 0.3, "x.RMAppImpl",
                f"{app} State change from RUNNING to FINISHED on event = X",
            )
            session.poll()
            stream_high_water = max(
                stream_high_water, len(session.miner.streams)
            )
        # Streams: the shared RM stream plus at most the containers of
        # the few apps still inside the eviction TTL — not one per app.
        assert stream_high_water <= 1 + 3
        assert len(session.evicted_apps) >= total_apps - 3
        # Evicted apps are gone from the served views for good.
        served = {app["app_id"] for app in session.apps_payload()}
        assert served.isdisjoint(set(session.evicted_apps))

    def test_evicted_streams_are_not_retailed(self, tmp_path):
        rm = tmp_path / "hadoop-resourcemanager.log"
        rm.touch()
        session = LiveSession(tmp_path, evict_after_polls=1)
        app = "application_1515715200000_0001"
        cid = "container_1515715200000_0001_01_000001"
        self._append(
            rm, 1.0, "x.RMAppImpl",
            f"{app} State change from RUNNING to FINISHED on event = X",
        )
        container_log = tmp_path / f"{cid}.log"
        self._append(
            container_log, 1.2,
            "org.apache.spark.executor.CoarseGrainedExecutorBackend",
            f"Started daemon with process name: 1@node01 for {cid}",
        )
        session.poll()
        session.poll()  # TTL expires: the app is evicted
        assert session.evicted_apps == [app]
        before = session.tailers[0].streams.keys()
        assert cid not in before
        session.poll()  # the file is still on disk; it must stay dead
        assert cid not in session.tailers[0].streams
        assert cid not in session.miner.streams
