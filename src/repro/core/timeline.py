"""ASCII timelines of one application's scheduling workflow (Fig 10).

The paper's Fig 10 shows the driver and executors as horizontal
lifelines — solid while working, dashed while *idle waiting for the
driver* — to explain where the executor delay goes.  This module
renders the same view from mined log events: one row per entity, one
column per time slice, with state-change markers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.events import EventKind
from repro.core.grouping import ApplicationTrace, ContainerTrace

__all__ = ["TimelineRow", "render_timeline"]

#: Container milestones drawn on each lifeline, with their glyphs.
_MILESTONES: Tuple[Tuple[EventKind, str, str], ...] = (
    (EventKind.CONTAINER_ALLOCATED, "A", "allocated"),
    (EventKind.CONTAINER_ACQUIRED, "Q", "acquired"),
    (EventKind.CONTAINER_LOCALIZING, "L", "localizing"),
    (EventKind.CONTAINER_SCHEDULED, "S", "scheduled"),
    (EventKind.CONTAINER_NM_RUNNING, "R", "running"),
    (EventKind.FIRST_TASK, "T", "first task"),
)


@dataclass(slots=True)
class TimelineRow:
    """One rendered lifeline."""

    label: str
    cells: List[str]

    def render(self) -> str:
        return f"{self.label:<12s}|{''.join(self.cells)}|"


def _place(
    cells: List[str], t: Optional[float], t0: float, scale: float, glyph: str
) -> None:
    if t is None:
        return
    index = min(len(cells) - 1, max(0, int((t - t0) * scale)))
    cells[index] = glyph


def _container_row(
    trace: ContainerTrace,
    label: str,
    t0: float,
    t_end: float,
    width: int,
    first_task_at: Optional[float],
) -> TimelineRow:
    scale = (width - 1) / max(t_end - t0, 1e-9)
    cells = [" "] * width
    allocated = trace.time_of(EventKind.CONTAINER_ALLOCATED)
    running = trace.time_of(EventKind.CONTAINER_NM_RUNNING) or trace.time_of(
        EventKind.INSTANCE_FIRST_LOG
    )
    own_first_task = trace.time_of(EventKind.FIRST_TASK)
    # Lifeline: '.' from allocation to launch, '-' while idle (launched
    # but no task yet — the paper's dashed idleness), '=' once working.
    if allocated is not None:
        start = int((allocated - t0) * scale)
        stop = int(((running if running is not None else t_end) - t0) * scale)
        for i in range(max(0, start), min(width, stop + 1)):
            cells[i] = "."
    if running is not None:
        busy_from = own_first_task if own_first_task is not None else first_task_at
        stop_idle = busy_from if busy_from is not None else t_end
        for i in range(
            max(0, int((running - t0) * scale)),
            min(width, int((stop_idle - t0) * scale) + 1),
        ):
            cells[i] = "-"
        if busy_from is not None:
            for i in range(
                max(0, int((busy_from - t0) * scale)), width
            ):
                cells[i] = "="
    for kind, glyph, _name in _MILESTONES:
        _place(cells, trace.time_of(kind), t0, scale, glyph)
    return TimelineRow(label, cells)


def render_timeline(trace: ApplicationTrace, width: int = 72) -> str:
    """The Fig 10 view of one application, from its mined events."""
    submitted = trace.time_of(EventKind.APP_SUBMITTED)
    times = [
        event.timestamp
        for container in trace.containers.values()
        for event in container.events
    ] + [e.timestamp for e in trace.events]
    if not times:
        return f"{trace.app_id}: no events"
    t0 = submitted if submitted is not None else min(times)
    t_end = max(times)
    if t_end <= t0:
        t_end = t0 + 1.0

    first_tasks = [
        t
        for c in trace.worker_containers
        if (t := c.time_of(EventKind.FIRST_TASK)) is not None
    ]
    first_task_at = min(first_tasks) if first_tasks else None

    rows: List[TimelineRow] = []
    am = trace.am_container
    if am is not None:
        rows.append(_container_row(am, "driver", t0, t_end, width, first_task_at))
    for i, container in enumerate(trace.worker_containers, start=1):
        rows.append(
            _container_row(container, f"executor-{i}", t0, t_end, width, first_task_at)
        )

    lines = [
        f"{trace.app_id}  (0s .. {t_end - t0:.1f}s after submission)",
        f"{'':12s}+{'-' * width}+",
    ]
    lines.extend(row.render() for row in rows)
    lines.append(f"{'':12s}+{'-' * width}+")
    legend = ", ".join(f"{glyph}={name}" for _k, glyph, name in _MILESTONES)
    lines.append(f"  .=pending  -=idle (waiting for driver)  ==working | {legend}")
    return "\n".join(lines)
