"""Cluster topology: the set of worker nodes plus lookup helpers.

The paper's testbed is flat 10 GbE (no oversubscription is mentioned),
so the topology is a single switch tier: any pair of nodes communicates
at min(sender NIC share, receiver NIC share).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.cluster.node import Node
from repro.cluster.profiles import HardwareProfile
from repro.params import SimulationParams
from repro.simul.engine import SimulationError, Simulator

__all__ = ["Cluster"]


class Cluster:
    """All worker nodes of the simulated testbed."""

    def __init__(
        self,
        sim: Simulator,
        params: SimulationParams,
        node_profiles: Optional[Sequence[Optional[HardwareProfile]]] = None,
    ):
        """``node_profiles``, when given, overrides the hardware shape
        of individual nodes by index (None entries keep the params
        defaults); extra nodes beyond ``params.num_nodes`` are NOT
        implied — the list is truncated/padded to ``num_nodes``.
        """
        self.sim = sim
        self.params = params
        profiles: List[Optional[HardwareProfile]] = list(node_profiles or [])
        profiles = (profiles + [None] * params.num_nodes)[: params.num_nodes]
        self.nodes: List[Node] = [
            self._make_node(i, profile) for i, profile in enumerate(profiles)
        ]
        self._by_hostname = {n.hostname: n for n in self.nodes}

    def _make_node(self, index: int, profile: Optional[HardwareProfile]) -> Node:
        params = self.params
        return Node(
            self.sim,
            index=index,
            cores=profile.cores if profile else params.cores_per_node,
            memory_mb=profile.memory_mb if profile else params.memory_per_node_mb,
            disk_bandwidth=(
                profile.disk_bandwidth if profile else params.disk_bandwidth
            ),
            network_bandwidth=(
                profile.network_bandwidth if profile else params.network_bandwidth
            ),
            page_cache_bytes=(
                profile.page_cache_bytes if profile else params.page_cache_bytes
            ),
            memory_only_fit=(params.resource_calculator == "memory"),
        )

    def add_node(self, profile: Optional[HardwareProfile] = None) -> Node:
        """Join a new node to the cluster (autoscaling)."""
        node = self._make_node(len(self.nodes), profile)
        self.nodes.append(node)
        self._by_hostname[node.hostname] = node
        return node

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def node(self, hostname: str) -> Node:
        """Node by hostname; raises for unknown hosts."""
        try:
            return self._by_hostname[hostname]
        except KeyError:
            raise SimulationError(f"unknown host {hostname!r}") from None

    # -- capacity queries --------------------------------------------------
    def total_memory_mb(self) -> int:
        return sum(n.memory_mb for n in self.nodes)

    def total_vcores(self) -> int:
        return sum(n.cores for n in self.nodes)

    def used_memory_mb(self) -> int:
        return sum(n.memory_mb - n.memory_available_mb for n in self.nodes)

    def memory_utilization(self) -> float:
        """Fraction of cluster memory currently reserved (0..1)."""
        return self.used_memory_mb() / self.total_memory_mb()

    def nodes_fitting(self, memory_mb: int, vcores: int) -> List[Node]:
        """Active nodes that could host a container of this shape now."""
        return [n for n in self.nodes if n.active and n.fits(memory_mb, vcores)]

    def least_loaded(self, memory_mb: int, vcores: int) -> Optional[Node]:
        """The fitting node with most free memory, or None."""
        fitting = self.nodes_fitting(memory_mb, vcores)
        if not fitting:
            return None
        return max(fitting, key=lambda n: (n.memory_available_mb, -n.index))
