"""Tests for the Hive metastore and TPC-H population pipeline."""

import pytest

from repro.core.checker import SDChecker
from repro.hive.metastore import HiveMetastore, HiveTable
from repro.hive.populate import HiveTpchLoader
from repro.params import GB, SimulationParams
from repro.simul.engine import SimulationError
from repro.spark.application import SparkApplication
from repro.testbed import Testbed
from repro.workloads.tpch import TPCH_TABLES, TPCHQueryWorkload


class TestMetastore:
    def test_database_and_table_lifecycle(self, bed):
        ms = HiveMetastore()
        ms.create_database("tpch")
        file = bed.hdfs.register_file("/w/tpch.db/nation", 1024.0)
        table = HiveTable("tpch", "nation", (("n_nationkey", "int"),), file)
        ms.register_table(table)
        assert ms.table("tpch", "nation").qualified_name == "tpch.nation"
        assert ms.total_bytes("tpch") == 1024.0

    def test_duplicate_database_rejected(self):
        ms = HiveMetastore()
        ms.create_database("db")
        with pytest.raises(SimulationError):
            ms.create_database("db")

    def test_duplicate_table_rejected(self, bed):
        ms = HiveMetastore()
        ms.create_database("db")
        file = bed.hdfs.register_file("/w/db.db/t", 1.0)
        ms.register_table(HiveTable("db", "t", (), file))
        with pytest.raises(SimulationError):
            ms.register_table(HiveTable("db", "t", (), file))

    def test_missing_lookups_raise(self):
        ms = HiveMetastore()
        with pytest.raises(SimulationError):
            ms.table("nope", "t")
        with pytest.raises(SimulationError):
            ms.tables("nope")


class TestPopulation:
    @pytest.fixture(scope="class")
    def populated(self):
        bed = Testbed(params=SimulationParams(num_nodes=5), seed=91)
        loader = HiveTpchLoader("tpch1g", total_bytes=1 * GB)
        loader.submit(bed)
        bed.run_until_all_finished(limit=10_000)
        return bed, loader

    def test_all_eight_tables_registered(self, populated):
        _bed, loader = populated
        assert loader.loaded
        assert set(loader.tables) == set(TPCH_TABLES)

    def test_table_sizes_follow_dbgen_fractions(self, populated):
        _bed, loader = populated
        lineitem = loader.table("lineitem").size_bytes
        assert lineitem == pytest.approx(1 * GB * TPCH_TABLES["lineitem"], rel=0.01)

    def test_metastore_knows_schemas(self, populated):
        _bed, loader = populated
        table = loader.metastore.table("tpch1g", "orders")
        assert ("o_orderkey", "bigint") in table.schema

    def test_access_before_load_rejected(self):
        loader = HiveTpchLoader("fresh", total_bytes=1 * GB)
        with pytest.raises(SimulationError, match="not populated"):
            _ = loader.tables

    def test_load_takes_real_time(self, populated):
        """The insert streams bytes through HDFS — not instantaneous."""
        bed, _loader = populated
        assert bed.sim.now > 3.0

    def test_query_against_hive_populated_tables(self, populated):
        """A Spark-SQL query runs against the loaded database unchanged."""
        bed, loader = populated
        app = SparkApplication(
            "q6-on-hive", TPCHQueryWorkload(loader, query=6), num_executors=2
        )
        bed.submit(app)
        bed.run_until_all_finished(limit=10_000)
        report = SDChecker().analyze(bed.log_store)
        delays = next(a for a in report.apps if a.app_id == str(app.app_id))
        assert delays.complete()

    def test_invalid_size_rejected(self):
        with pytest.raises(SimulationError):
            HiveTpchLoader("x", total_bytes=0)
