"""Miner throughput: streaming single-pass dispatch vs the pre-PR miner.

Generates a synthetic multi-application log corpus (RM + NM + one
stream per container, with realistic executor chatter as noise),
measures lines/sec for

* the **legacy** miner (the pre-streaming implementation: list
  materialization plus a cascade of up to five regex attempts per
  container-log line), kept here verbatim as the comparison baseline;
* the current **serial** miner (prefix-gated single alternation);
* the **legacy directory** path (``LogMiner(fast=False)``: text-mode
  record streaming off disk, per-daemon parallelism);
* the **fast directory** path (``LogMiner(fast=True)``: two-phase byte
  scanning, chunk partitioning), serial and at ``--jobs 4``;

asserts they all agree event-for-event, and appends a trajectory
point to ``benchmarks/results/BENCH_miner.json``.

Corpus size: ~500k lines under ``REPRO_SCALE=paper`` (the acceptance
corpus), ~120k under the default ``small`` scale, and ~4k when
``REPRO_BENCH_SMOKE=1`` (the CI smoke job, which checks equivalence
and that the fast path is never slower than the legacy directory
path).  The parallel-speedup assertion only runs with at least two
usable CPUs — on a single-CPU runner a worker pool cannot beat serial
and the recorded number simply documents that honestly.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List

from repro.core import messages as msg
from repro.core.events import EventKind, SchedulingEvent
from repro.core.parser import LogMiner, available_cpus
from repro.logsys.record import LogRecord
from repro.logsys.store import LogStore

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_FILE = RESULTS_DIR / "BENCH_miner.json"

_EXECUTORS_PER_APP = 4
#: Noise lines per executor stream — the corpus knob.  Application logs
#: dominate real collections, so throughput is decided by how fast the
#: miner rejects chatter lines.
_NOISE_LINES = {"smoke": 8, "small": 140, "paper": 600}

_EXEC_CHATTER = (
    "Starting executor heartbeat thread",
    "Finished task 3.0 in stage 1.0 (TID 7) in 23 ms on node02 (1/4)",
    "Running task 1.0 in stage 2.0 (TID 11)",
    "Block broadcast_3_piece0 stored as bytes in memory",
    "Told master about block broadcast_3_piece0",
    "Reading broadcast variable 3 took 2 ms",
    # Near misses: share a literal prefix with a real message but fail
    # its body, so the alternation (not just the gate) gets exercised.
    "Got assigned task slot on host node02",
    "Task attempt finished cleanly",
)


def corpus_apps(mode: str) -> int:
    return {"smoke": 2, "small": 35, "paper": 165}[mode]


def build_corpus(mode: str) -> LogStore:
    """A deterministic multi-app log collection of the requested scale."""
    store = LogStore()
    noise = _NOISE_LINES[mode]
    clock = [0.0]

    def tick() -> float:
        clock[0] += 0.001
        return clock[0]

    def emit(daemon: str, cls: str, message: str) -> None:
        store.append(daemon, LogRecord(tick(), cls, message))

    for i in range(1, corpus_apps(mode) + 1):
        app = f"application_1515715200000_{i:04d}"
        containers = [
            f"container_1515715200000_{i:04d}_01_{c:06d}"
            for c in range(1, _EXECUTORS_PER_APP + 2)
        ]
        am, executors = containers[0], containers[1:]
        rm = "hadoop-resourcemanager"
        emit(rm, "x.RMAppImpl", f"{app} State change from NEW to SUBMITTED on event = START")
        emit(rm, "x.RMAppImpl", f"{app} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED")
        for c_idx, cid in enumerate(containers):
            emit(rm, "x.RMContainerImpl", f"{cid} Container Transitioned from NEW to ALLOCATED")
            emit(rm, "x.RMContainerImpl", f"{cid} Container Transitioned from ALLOCATED to ACQUIRED")
            emit(rm, "x.ClientRMService", f"Allocated new applicationId: {i}")
            nm = f"hadoop-nodemanager-node{(i + c_idx) % 7 + 1:02d}"
            emit(nm, "x.ContainerImpl", f"Container {cid} transitioned from NEW to LOCALIZING")
            emit(nm, "x.ContainerImpl", f"Container {cid} transitioned from LOCALIZING to SCHEDULED")
            emit(nm, "x.ContainerImpl", f"Container {cid} transitioned from SCHEDULED to RUNNING")
            emit(nm, "x.ContainersMonitorImpl", f"Memory usage of ProcessTree for {cid}: 180MB")
        emit(rm, "x.RMAppImpl", f"{app} State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED")
        emit(am, "org.apache.spark.deploy.yarn.ApplicationMaster", "Preparing Local resources")
        emit(am, "org.apache.spark.deploy.yarn.ApplicationMaster", f"Registered ApplicationMaster for {app}")
        emit(am, "org.apache.spark.deploy.yarn.YarnAllocator", f"SDCHECKER START_ALLO Will request {_EXECUTORS_PER_APP} executor container(s) for {app}")
        emit(am, "org.apache.spark.deploy.yarn.YarnAllocator", f"SDCHECKER END_ALLO All requested containers allocated for {app} ({_EXECUTORS_PER_APP} granted)")
        for j, cid in enumerate(executors):
            cls = "org.apache.spark.executor.CoarseGrainedExecutorBackend"
            emit(cid, cls, f"Started daemon with process name: {j + 2}@node02 for container {cid}")
            for k in range(noise):
                emit(cid, "org.apache.spark.executor.Executor", _EXEC_CHATTER[k % len(_EXEC_CHATTER)])
            emit(cid, "org.apache.spark.executor.Executor", f"Got assigned task {j}")
            for k in range(noise // 4):
                emit(cid, "org.apache.spark.executor.Executor", _EXEC_CHATTER[k % len(_EXEC_CHATTER)])
        emit(rm, "x.RMAppImpl", f"{app} State change from RUNNING to FINISHED on event = ATTEMPT_FINISHED")
    return store


class LegacyLogMiner:
    """The pre-streaming miner, verbatim: the benchmark baseline.

    Materializes every stream, then classifies container-log lines with
    the cascaded ``classify_first_task_line`` →
    ``classify_mr_task_done_line`` → ``classify_driver_line`` battery
    (up to five regex attempts per line).
    """

    def mine(self, store: LogStore) -> List[SchedulingEvent]:
        events: List[SchedulingEvent] = []
        for daemon in store.daemons:
            records = list(store.records(daemon))
            if not records:
                continue
            if msg.CONTAINER_ID_RE.match(daemon):
                events.extend(self._mine_container_stream(daemon, records))
            elif daemon.startswith("hadoop-resourcemanager"):
                events.extend(self._mine_rm_stream(daemon, records))
            elif daemon.startswith("hadoop-nodemanager"):
                events.extend(self._mine_nm_stream(daemon, records))
        return events

    def _mine_rm_stream(self, daemon, records) -> List[SchedulingEvent]:
        events: List[SchedulingEvent] = []
        for record in records:
            if record.cls.endswith("RMAppImpl"):
                hit = msg.classify_rm_app_line(record.message)
                if hit is not None:
                    kind, app_id = hit
                    events.append(
                        SchedulingEvent(kind, record.timestamp, app_id, None, daemon)
                    )
            elif record.cls.endswith("RMContainerImpl"):
                hit = msg.classify_rm_container_line(record.message)
                if hit is not None:
                    kind, container_id = hit
                    events.append(
                        SchedulingEvent(
                            kind,
                            record.timestamp,
                            msg.app_id_of_container(container_id),
                            container_id,
                            daemon,
                        )
                    )
        return events

    def _mine_nm_stream(self, daemon, records) -> List[SchedulingEvent]:
        events: List[SchedulingEvent] = []
        for record in records:
            if not record.cls.endswith("ContainerImpl"):
                continue
            hit = msg.classify_nm_container_line(record.message)
            if hit is None:
                continue
            kind, container_id = hit
            events.append(
                SchedulingEvent(
                    kind,
                    record.timestamp,
                    msg.app_id_of_container(container_id),
                    container_id,
                    daemon,
                )
            )
        return events

    def _mine_container_stream(self, daemon, records) -> List[SchedulingEvent]:
        container_id = daemon
        app_id = msg.app_id_of_container(container_id)
        events: List[SchedulingEvent] = []
        first = records[0]
        events.append(
            SchedulingEvent(
                EventKind.INSTANCE_FIRST_LOG,
                first.timestamp,
                app_id,
                container_id,
                daemon,
                source_class=first.cls,
                detail=first.message,
            )
        )
        saw_task = False
        saw_mr_done = False
        for record in records:
            if not saw_task and msg.classify_first_task_line(record.message):
                saw_task = True
                events.append(
                    SchedulingEvent(
                        EventKind.FIRST_TASK,
                        record.timestamp,
                        app_id,
                        container_id,
                        daemon,
                        source_class=record.cls,
                    )
                )
                continue
            if not saw_mr_done and msg.classify_mr_task_done_line(record.message):
                saw_mr_done = True
                events.append(
                    SchedulingEvent(
                        EventKind.MR_TASK_DONE,
                        record.timestamp,
                        app_id,
                        container_id,
                        daemon,
                        source_class=record.cls,
                    )
                )
                continue
            hit = msg.classify_driver_line(record.message)
            if hit is not None:
                kind, line_app_id = hit
                events.append(
                    SchedulingEvent(
                        kind,
                        record.timestamp,
                        line_app_id,
                        container_id,
                        daemon,
                        source_class=record.cls,
                    )
                )
        return events


def _time(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def _time_best(fn, *args, rounds: int = 3):
    """Best-of-N timing: damps scheduler and page-cache flake in CI."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        result, elapsed = _time(fn, *args)
        best = min(best, elapsed)
    return result, best


def _record_point(point: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    history = []
    if BENCH_FILE.exists():
        history = json.loads(BENCH_FILE.read_text(encoding="utf-8"))
    history.append(point)
    BENCH_FILE.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def test_miner_throughput(benchmark, scale, tmp_path):
    mode = "smoke" if os.environ.get("REPRO_BENCH_SMOKE") else scale
    store = build_corpus(mode)
    lines = len(store)
    logdir = tmp_path / "corpus"
    store.dump(logdir)

    legacy_dir_miner = LogMiner(fast=False)
    fast_miner = LogMiner(fast=True)
    legacy_events, legacy_s = _time_best(LegacyLogMiner().mine, store)
    serial_events, serial_s = _time_best(legacy_dir_miner.mine, store)
    serial_dir_events, serial_dir_s = _time_best(legacy_dir_miner.mine, str(logdir))
    fast_serial_events, fast_serial_s = _time_best(fast_miner.mine, str(logdir))
    fast_parallel_events, fast_parallel_s = _time_best(
        fast_miner.mine_parallel, str(logdir), 4
    )
    benchmark.pedantic(fast_miner.mine, args=(str(logdir),), rounds=1, iterations=1)

    # Equivalence: every pipeline must reproduce the legacy miner
    # event-for-event.
    assert serial_events == legacy_events
    assert fast_serial_events == serial_dir_events
    assert fast_parallel_events == serial_dir_events
    assert [
        (e.kind, e.app_id, e.container_id, e.daemon) for e in serial_dir_events
    ] == [(e.kind, e.app_id, e.container_id, e.daemon) for e in serial_events]

    cpus = available_cpus()
    speedup = legacy_s / serial_s if serial_s > 0 else float("inf")
    fast_speedup = serial_dir_s / fast_serial_s if fast_serial_s > 0 else float("inf")
    parallel_ratio = (
        fast_serial_s / fast_parallel_s if fast_parallel_s > 0 else float("inf")
    )
    point = {
        "mode": mode,
        "corpus_lines": lines,
        "apps": corpus_apps(mode),
        "cpus": cpus,
        "legacy_store_lps": round(lines / legacy_s),
        "serial_store_lps": round(lines / serial_s),
        "serial_dir_lps": round(lines / serial_dir_s),
        "fast_serial_dir_lps": round(lines / fast_serial_s),
        "fast_parallel_dir_lps": round(lines / fast_parallel_s),
        "parallel_jobs": 4,
        "speedup_vs_legacy": round(speedup, 2),
        "fast_speedup_vs_dir": round(fast_speedup, 2),
        "fast_parallel_ratio": round(parallel_ratio, 2),
    }
    _record_point(point)
    print()
    print(json.dumps(point))

    assert lines / serial_s > 0
    # The fast path must never lose to the legacy directory path — the
    # regression bar the REPRO_BENCH_SMOKE=1 CI job enforces on every
    # push (best-of-3 timing keeps this stable on noisy runners).
    assert fast_serial_s <= serial_dir_s, (
        f"fast path slower than legacy directory path "
        f"({fast_serial_s:.3f}s vs {serial_dir_s:.3f}s)"
    )
    if mode == "paper":
        # The acceptance bars, stated on the ~500k-line paper corpus.
        # The store-miner ratio is environment-sensitive (the original
        # acceptance run recorded 3.7x, today's runner measures ~2.7x
        # for the unchanged seed code), so assert a conservative floor
        # rather than the historical high-water mark.
        assert speedup >= 2.0, f"only {speedup:.2f}x over the legacy miner"
        # The fast directory path is the bar this file exists for:
        # >= 3x the legacy directory path, per-run, no grandfathering.
        assert fast_speedup >= 3.0, (
            f"fast path only {fast_speedup:.2f}x over the legacy directory path"
        )
    if mode != "smoke" and cpus >= 2:
        # Chunk parallelism must win outright wherever there is a
        # second CPU to scale onto; on a single-CPU runner the pool can
        # only lose, and the recorded point documents that honestly
        # instead.  The wire-format transfer (repro.core.wire) is what
        # makes this bar holdable: per-event pickle used to eat the
        # whole speedup on small corpora.
        assert parallel_ratio > 1.0, (
            f"--jobs 4 only {parallel_ratio:.2f}x over the serial fast path"
        )
    if mode == "paper" and cpus >= 4:
        # With all four workers backed by real cores, demand real
        # scaling, not just a win.
        assert parallel_ratio >= 1.8, (
            f"--jobs 4 only {parallel_ratio:.2f}x over the serial fast path"
        )
