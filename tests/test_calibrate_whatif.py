"""What-if layer: counterfactual answers from a fitted model.

Pins the two ISSUE counterfactuals (scheduler swap, heartbeat halving)
end to end, plus the NaN discipline: a component with no measurements
renders ``n/a`` in the table and ``null`` in JSON — never a bare NaN —
and a 0-vs-0 component reads as change factor 1.0.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.calibrate import fit, predict, whatif
from repro.calibrate.space import Knob, ParameterSpace
from repro.calibrate.whatif import WhatIfAnswer, QUANTILES

SMALL_SPACE = ParameterSpace(
    (Knob("nm_heartbeat_s", low=0.5, high=2.0, scale="log", grid=2),)
)


@pytest.fixture(scope="module")
def model():
    # A minimal self-fit: the baseline wins at error 0, so what-ifs run
    # against the preset's own parameters.
    return fit(
        "diurnal-burst", seed=5, grid_limit=0, random_trials=1, jobs=1,
        space=SMALL_SPACE,
    )


class TestPredict:
    def test_decomposition_shape(self, model):
        result = predict(model)
        assert result["scenario"] == "diurnal-burst"
        assert set(result["components"]) == {
            "queue_wait_delay",
            "am_launch_delay",
            "driver_delay",
            "localization_delay",
            "preemption_delay",
            "ramp_delay",
        }
        for row in (*result["components"].values(), result["total_delay"]):
            assert set(row) == {"n", "p50", "p95", "p99"}
            assert row["n"] > 0

    def test_predict_is_json_safe(self, model):
        text = json.dumps(predict(model))
        assert "NaN" not in text

    def test_predict_accepts_overrides(self, model):
        base = predict(model)
        fast = predict(model, {"nm_heartbeat_s": 0.25})
        assert fast["overrides"] == {"nm_heartbeat_s": 0.25}
        assert (
            fast["components"]["queue_wait_delay"]["p50"]
            <= base["components"]["queue_wait_delay"]["p50"]
        )


class TestWhatIf:
    def test_scheduler_swap_answers_with_deltas(self, model):
        answer = whatif(model, {"scheduler": "opportunistic"})
        assert answer.overrides == {"scheduler": "opportunistic"}
        for component in answer.base:
            for q in QUANTILES:
                delta = answer.delta(component, q)
                assert delta is None or not math.isnan(delta)
        # The swap changes the mined decomposition somewhere.
        assert answer.base != answer.variant

    def test_heartbeat_halving_reduces_queue_wait(self, model):
        base_hb = model.fitted_params["nm_heartbeat_s"]
        answer = whatif(model, {"nm_heartbeat_s": base_hb / 2})
        delta = answer.delta("queue_wait_delay", 50)
        assert delta is not None and delta < 1.0

    def test_zero_vs_zero_component_reads_unchanged(self, model):
        # diurnal-burst mines preemption at exactly 0 on both sides.
        answer = whatif(model, {"nm_heartbeat_s": 1.9})
        assert answer.base["preemption_delay"]["p50"] == 0.0
        assert answer.variant["preemption_delay"]["p50"] == 0.0
        assert answer.delta("preemption_delay", 50) == 1.0

    def test_json_export_has_no_nan(self, model):
        answer = whatif(model, {"scheduler": "fair"})
        text = json.dumps(answer.to_dict())
        assert "NaN" not in text

    def test_table_renders_na_for_missing(self):
        empty_row = {"n": 0, "p50": None, "p95": None, "p99": None}
        full_row = {"n": 4, "p50": 1.0, "p95": 2.0, "p99": 3.0}
        rows = [
            "queue_wait_delay",
            "am_launch_delay",
            "driver_delay",
            "localization_delay",
            "preemption_delay",
            "ramp_delay",
            "total_delay",
        ]
        answer = WhatIfAnswer(
            scenario="unit",
            replay_seed=0,
            overrides={"scheduler": "fair"},
            base={c: dict(full_row) for c in rows},
            variant={
                c: dict(empty_row if c == "preemption_delay" else full_row)
                for c in rows
            },
        )
        table = answer.table()
        assert "n/a" in table
        assert "nan" not in table.lower()
        assert answer.delta("preemption_delay", 50) is None
        assert answer.delta("queue_wait_delay", 50) == 1.0

    def test_empty_overrides_rejected(self, model):
        with pytest.raises(ValueError, match="at least one override"):
            whatif(model, {})

    def test_unknown_scheduler_rejected(self, model):
        with pytest.raises(ValueError, match="unknown scheduler"):
            whatif(model, {"scheduler": "mesos"})
