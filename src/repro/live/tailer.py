"""Rotation-aware tailing of a growing log directory.

The batch pipeline reads a *finished* collection: every ``<daemon>.log``
plus its rotated ``<daemon>.log.N`` segments, oldest first.  The tailer
produces exactly the same byte stream **incrementally**, while the
directory is still growing, by keeping one cursor per physical file:

* a cursor is keyed by **inode**, not by name — log4j's
  RollingFileAppender rotates by *renaming* (``.1`` becomes ``.2``, the
  live file becomes ``.1``, a fresh live file appears), and inode
  identity is what survives the rename chain;
* the live file only ever surrenders *complete* lines
  (:func:`repro.logsys.store.tail_chunk`, the incremental half of the
  batch reader's line-ownership protocol): bytes after the last newline
  are a record a writer may still be mid-way through, so they are held
  back and re-read once terminated — or flushed at :meth:`drain`, when
  EOF ends the line exactly as :func:`~repro.logsys.store.iter_file_lines`
  treats an unterminated tail;
* a file whose name gained a rotation index is *closed*: it is read to
  EOF (unterminated tail included, newline-normalized so segment
  boundaries never glue two lines together) and finalized before any
  younger segment's bytes are emitted, preserving oldest-first order;
* **truncation** (the live file shrinking below its cursor — a writer
  restarted with a fresh file on the same name/inode) is detected by
  ``size < offset`` and re-synced from byte 0, counted in
  :attr:`StreamTailer.resyncs`;
* **recreation** (a writer that starts the file over on the same inode
  and grows it *past* the old offset between polls — ``size < offset``
  never fires) is detected by a small head fingerprint: the hash of the
  first consumed bytes (up to :data:`FINGERPRINT_BYTES`) is remembered
  per cursor, and a changed head forces the same re-sync from byte 0.
  The fingerprint survives checkpoints (``to_state``/``from_state``),
  so a resumed session detects a restart that happened while it was
  down.

Determinism: daemons are visited in sorted order and segments in the
batch reader's chronological order, so the concatenation of every
:class:`TailChunk` ever emitted for a daemon equals the line stream the
batch reader would produce over the final directory.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from stat import S_ISREG
from typing import Dict, List, Optional, Set, Tuple

from repro.logsys.store import _SEGMENT_RE

__all__ = [
    "DirectoryTailer",
    "FINGERPRINT_BYTES",
    "SegmentCursor",
    "StreamTailer",
    "TailChunk",
]

#: Upper bound on the per-cursor head fingerprint.  Small enough that
#: re-checking it every poll is one tiny read, long enough that a
#: restarted writer is only missed if its new log opens with the exact
#: same head bytes as the old one (a log4j stream opens with a
#: timestamped line, so same-head collisions require a same-millisecond
#: restart).
FINGERPRINT_BYTES = 64


@dataclass
class TailChunk:
    """Newly available complete-line bytes of one daemon stream."""

    daemon: str
    data: bytes
    #: Total rotation segments known for the stream so far (for the
    #: diagnostics ledger's ``segments`` count).
    segments: int


@dataclass
class SegmentCursor:
    """Read position inside one physical log file, keyed by inode."""

    inode: int
    name: str
    offset: int = 0
    #: A finalized segment is fully consumed and will never be read
    #: again (rotated files do not grow).
    final: bool = False
    #: Head fingerprint: SHA-1 of the first ``fp_len`` consumed bytes
    #: (``fp_len <= FINGERPRINT_BYTES``).  ``None`` until the cursor has
    #: consumed its first complete line.  A changed head means the
    #: writer recreated the file on the same inode — even if it has
    #: already grown past the old offset — and forces a re-sync.
    fp: Optional[str] = None
    fp_len: int = 0

    def fingerprint(self, head: bytes) -> None:
        """Remember the head of a file just consumed from byte 0."""
        self.fp_len = min(FINGERPRINT_BYTES, len(head))
        self.fp = hashlib.sha1(head[: self.fp_len]).hexdigest()

    def head_changed(self, head: bytes) -> bool:
        """True when the file's head no longer matches the fingerprint.

        ``head`` is the file's first ``fp_len`` bytes, read off the
        data read's already-open descriptor so the per-poll recreation
        check shares that single open instead of paying its own — the
        check itself cannot be skipped on any poll: a same-size
        same-inode rewrite is invisible to every stat-based heuristic.
        """
        if self.fp is None:
            return False
        if len(head) < self.fp_len:
            return True  # shrunk below the fingerprinted head
        return hashlib.sha1(head[: self.fp_len]).hexdigest() != self.fp

    def resync(self) -> None:
        """Start over from byte 0 (truncation or recreation detected)."""
        self.offset = 0
        self.fp = None
        self.fp_len = 0

    def to_state(self) -> dict:
        return {
            "inode": self.inode,
            "name": self.name,
            "offset": self.offset,
            "final": self.final,
            "fp": self.fp,
            "fp_len": self.fp_len,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SegmentCursor":
        return cls(
            inode=state["inode"],
            name=state["name"],
            offset=state["offset"],
            final=state["final"],
            fp=state.get("fp"),
            fp_len=state.get("fp_len", 0),
        )


def _normalized(buf: bytes) -> bytes:
    """Terminate a flushed tail so concatenation cannot merge lines."""
    if buf and not buf.endswith(b"\n"):
        return buf + b"\n"
    return buf


class StreamTailer:
    """Cursor chain of one daemon stream, in chronological segment order."""

    def __init__(self, daemon: str):
        self.daemon = daemon
        self.cursors: List[SegmentCursor] = []
        #: Live-file truncation re-syncs observed (writer restarts).
        self.resyncs = 0
        #: Rotation segments discovered after the stream was first seen.
        self.rotations = 0
        #: Bytes known to exist but not yet consumed, as of the last poll.
        self.lag_bytes = 0

    @property
    def segments(self) -> int:
        return max(1, len(self.cursors))

    def _live_name(self) -> str:
        return f"{self.daemon}.log"

    def advance(self, listing: List[Tuple[str, int, int]]) -> bytes:
        """Consume what the stream's files newly offer, in stream order.

        ``listing`` is the daemon's current directory entries as
        ``(name, inode, size)`` in chronological (oldest-first) order.
        Returns the newly consumed bytes, complete lines only.
        """
        by_inode: Dict[int, Tuple[str, int]] = {
            inode: (name, size) for name, inode, size in listing
        }
        known = {cursor.inode for cursor in self.cursors}
        # Rename tracking: a cursor follows its inode wherever the
        # rotation chain moved it.
        for cursor in self.cursors:
            entry = by_inode.get(cursor.inode)
            if entry is not None:
                cursor.name = entry[0]
            elif not cursor.final:
                # The file vanished (deleted mid-run): nothing more can
                # ever be read from it.
                cursor.final = True
        # Unseen inodes are new segments, appended after every existing
        # cursor (they are younger than anything already tracked) in
        # chronological order among themselves — the listing's order.
        fresh = [
            SegmentCursor(inode=inode, name=name)
            for name, inode, size in listing
            if inode not in known
        ]
        if fresh and self.cursors:
            self.rotations += len(fresh)
        self.cursors.extend(fresh)

        out: List[bytes] = []
        lag = 0
        live_name = self._live_name()
        for cursor in self.cursors:
            if cursor.final:
                continue
            entry = by_inode.get(cursor.inode)
            if entry is None:
                cursor.final = True
                continue
            name, size = entry
            if os.path.basename(name) == live_name:
                buf = self._advance_live(cursor, name, size)
                if buf:
                    out.append(buf)
                lag += size - cursor.offset
            else:
                # Rotated: closed for writing — read to EOF, tail and all.
                buf = _read_to_eof(name, cursor.offset)
                cursor.offset += len(buf)
                cursor.final = True
                if buf:
                    out.append(_normalized(buf))
        self.lag_bytes = lag
        return b"".join(out)

    def _advance_live(self, cursor: SegmentCursor, name: str, size: int) -> bytes:
        """Consume the live file's new complete lines, in **one** open.

        Folds the per-poll head-fingerprint recreation check and the
        complete-line tail read (``tail_chunk``'s protocol) into a
        single file open — the two separate opens per stream per poll
        were a measurable slice of live ingest cost.  The check still
        runs on *every* poll, even when ``size == offset``: a same-size
        same-inode rewrite is exactly the case the fingerprint exists
        for.
        """
        if cursor.fp is None and size <= cursor.offset:
            return b""  # nothing to check against, nothing to read
        try:
            fd = os.open(name, os.O_RDONLY)
        except OSError:
            return b""  # vanished mid-poll; the next listing finalizes it
        try:
            # Raw-fd pread: the hot loop pays one descriptor and two
            # positioned reads per stream per poll, with no buffered
            # reader object in between.
            head = os.pread(fd, cursor.fp_len, 0) if cursor.fp is not None else b""
            if size < cursor.offset or cursor.head_changed(head):
                # Truncation, or a writer that recreated the file on
                # the same inode (the head no longer matches, even
                # though the new content may already be larger than
                # the old offset): start over from byte 0.
                self.resyncs += 1
                cursor.resync()
            if size <= cursor.offset:
                return b""
            consumed_from_zero = cursor.offset == 0
            buf = os.pread(fd, size - cursor.offset, cursor.offset)
        finally:
            os.close(fd)
        # Hold back the trailing partial line — bytes after the last
        # newline are a record the writer may still be mid-way through.
        newline_at = buf.rfind(b"\n")
        if newline_at < 0:
            return b""
        buf = buf[: newline_at + 1]
        cursor.offset += newline_at + 1
        if consumed_from_zero:
            cursor.fingerprint(buf)
        return buf

    def flush(self, listing: List[Tuple[str, int, int]]) -> bytes:
        """Drain: surrender every held-back byte, unterminated tails included."""
        by_inode: Dict[int, Tuple[str, int]] = {
            inode: (name, size) for name, inode, size in listing
        }
        out: List[bytes] = []
        for cursor in self.cursors:
            if cursor.final or cursor.inode not in by_inode:
                cursor.final = True
                continue
            name = by_inode[cursor.inode][0]
            try:
                handle = open(name, "rb")
            except OSError:
                cursor.final = True
                continue
            with handle:
                if cursor.head_changed(handle.read(cursor.fp_len)):
                    # Recreated between the final poll and the drain
                    # flush (or while a checkpointed session was down):
                    # re-sync so the flush reads the new incarnation
                    # whole.
                    self.resyncs += 1
                    cursor.resync()
                handle.seek(cursor.offset)
                buf = handle.read()
            cursor.offset += len(buf)
            cursor.final = True
            if buf:
                out.append(_normalized(buf))
        self.lag_bytes = 0
        return b"".join(out)

    def to_state(self) -> dict:
        return {
            "cursors": [cursor.to_state() for cursor in self.cursors],
            "resyncs": self.resyncs,
            "rotations": self.rotations,
            "lag_bytes": self.lag_bytes,
        }

    @classmethod
    def from_state(cls, daemon: str, state: dict) -> "StreamTailer":
        tailer = cls(daemon)
        tailer.cursors = [SegmentCursor.from_state(s) for s in state["cursors"]]
        tailer.resyncs = state["resyncs"]
        tailer.rotations = state["rotations"]
        # Restored so `tail_lag_bytes` reads true immediately after a
        # checkpoint resume, not 0 until the first poll.
        tailer.lag_bytes = state.get("lag_bytes", 0)
        return tailer


def _read_to_eof(path: str, offset: int) -> bytes:
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            return handle.read()
    except OSError:
        return b""


class DirectoryTailer:
    """Follows every ``<daemon>.log[.N]`` stream of one directory."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.streams: Dict[str, StreamTailer] = {}
        #: Daemons evicted by the session's TTL policy: their files are
        #: ignored by every future poll (no cursors, no re-reads from
        #: byte 0), so eviction actually releases the memory instead of
        #: re-accumulating it on the next scan.
        self.evicted: Set[str] = set()
        self.drained = False
        #: name -> (daemon, index, full path) for segment-pattern
        #: matches, None for non-matching names.  A name's parse never
        #: changes, so the per-poll listing pays the regex and the path
        #: rendering once per distinct name, not once per poll.
        self._name_meta: Dict[str, Optional[Tuple[str, int, str]]] = {}

    # -- directory scanning ------------------------------------------------
    def _listing(self) -> Dict[str, List[Tuple[str, int, int]]]:
        """daemon -> [(name, inode, size)] in chronological order.

        One ``stat`` per matching file: the segment-name match runs on
        the entry name first, and a single ``stat`` answers regularity,
        inode, and size together — the previous version paid two
        ``stat`` calls per file per poll (``is_file`` plus ``stat``).
        """
        groups: Dict[str, List[Tuple[int, str, int, int]]] = {}
        try:
            paths = list(self.directory.iterdir())
        except OSError:
            return {}  # directory missing (or not a directory yet)
        meta_cache = self._name_meta
        for path in paths:
            name = path.name
            meta = meta_cache.get(name, False)
            if meta is False:
                m = _SEGMENT_RE.match(name)
                if m is None:
                    meta = None
                else:
                    index = -1 if m["index"] is None else int(m["index"])
                    meta = (m["daemon"], index, str(path))
                meta_cache[name] = meta
            if meta is None:
                continue
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with a rename/delete; next poll sees it
            if not S_ISREG(stat.st_mode):
                continue
            daemon, index, full = meta
            groups.setdefault(daemon, []).append(
                (index, full, stat.st_ino, stat.st_size)
            )
        out: Dict[str, List[Tuple[str, int, int]]] = {}
        for daemon in sorted(groups):
            # Highest index (oldest) first, the live file (index -1) last:
            # the batch reader's chronological order.
            entries = sorted(groups[daemon], key=lambda item: item[0], reverse=True)
            out[daemon] = [(name, inode, size) for _i, name, inode, size in entries]
        return out

    def _stream(self, daemon: str) -> StreamTailer:
        tailer = self.streams.get(daemon)
        if tailer is None:
            tailer = self.streams[daemon] = StreamTailer(daemon)
        return tailer

    # -- polling -----------------------------------------------------------
    def poll(self) -> List[TailChunk]:
        """One pass over the directory: every stream's new complete lines."""
        chunks: List[TailChunk] = []
        listing = self._listing()
        for daemon in sorted((set(listing) | set(self.streams)) - self.evicted):
            tailer = self._stream(daemon)
            data = tailer.advance(listing.get(daemon, []))
            chunks.append(TailChunk(daemon, data, tailer.segments))
        return chunks

    def evict_stream(self, daemon: str) -> bool:
        """Stop following ``daemon`` forever; True when it was tracked."""
        self.evicted.add(daemon)
        return self.streams.pop(daemon, None) is not None

    def drain(self) -> List[TailChunk]:
        """Final poll plus held-back tails: after this the tailer is done."""
        chunks = self.poll()
        listing = self._listing()
        for chunk in chunks:
            tailer = self.streams[chunk.daemon]
            chunk.data += tailer.flush(listing.get(chunk.daemon, []))
            chunk.segments = tailer.segments
        self.drained = True
        return chunks

    # -- observability -----------------------------------------------------
    @property
    def tail_lag_bytes(self) -> int:
        return sum(t.lag_bytes for t in self.streams.values())

    @property
    def resyncs(self) -> int:
        return sum(t.resyncs for t in self.streams.values())

    @property
    def rotations(self) -> int:
        return sum(t.rotations for t in self.streams.values())

    # -- checkpointing -----------------------------------------------------
    def to_state(self) -> dict:
        return {
            "directory": str(self.directory),
            "streams": {
                daemon: self.streams[daemon].to_state()
                for daemon in sorted(self.streams)
            },
            "evicted": sorted(self.evicted),
        }

    @classmethod
    def from_state(
        cls, state: dict, directory: Optional[str | Path] = None
    ) -> "DirectoryTailer":
        tailer = cls(directory if directory is not None else state["directory"])
        for daemon, stream_state in state["streams"].items():
            tailer.streams[daemon] = StreamTailer.from_state(daemon, stream_state)
        tailer.evicted = set(state.get("evicted", ()))
        return tailer
