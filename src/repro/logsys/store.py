"""Per-daemon log streams and directory round-tripping.

The store mirrors a real Hadoop log collection: one file for the
ResourceManager, one per NodeManager, and one per container (the Spark
driver's and each executor's stdout/stderr aggregation).  File names
follow the ``<daemon>.log`` convention so a directory of logs produced
by :meth:`LogStore.dump` is exactly what SDchecker's offline CLI
consumes.

Reading is streaming-first: :meth:`LogStore.iter_records` and
:func:`iter_file_records` yield one record at a time, so a million-line
log never has to be materialized to be mined.  :meth:`LogStore.records`
returns a cached immutable tuple view (rebuilt only after an append),
which makes repeated per-daemon reads O(1) instead of a list copy per
call.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Tuple

from repro.logsys.record import LogRecord

__all__ = ["DaemonLogger", "LogStore", "iter_file_lines", "iter_file_records"]

#: Default read size for the chunked file reader: large enough to
#: amortize syscalls, small enough to keep memory flat on huge logs.
_CHUNK_SIZE = 1 << 16


def iter_file_lines(path: str | Path, chunk_size: int = _CHUNK_SIZE) -> Iterator[str]:
    """Yield the text lines of ``path`` reading fixed-size chunks.

    Equivalent to ``path.read_text().splitlines()`` but with O(chunk)
    memory: the file is never fully materialized.
    """
    tail = ""
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            chunk = tail + chunk
            lines = chunk.split("\n")
            tail = lines.pop()
            yield from lines
    if tail:
        yield tail


def iter_file_records(
    path: str | Path, chunk_size: int = _CHUNK_SIZE
) -> Iterator[LogRecord]:
    """Yield the parseable :class:`LogRecord` lines of one log file.

    Unparseable lines (stack traces, wrapped output) are skipped, as a
    log miner must.
    """
    for line in iter_file_lines(path, chunk_size):
        record = LogRecord.try_parse(line)
        if record is not None:
            yield record


class DaemonLogger:
    """Bound logger for one daemon; stamps records with simulated time."""

    def __init__(self, store: "LogStore", daemon: str, clock: Callable[[], float]):
        self._store = store
        self.daemon = daemon
        self._clock = clock

    def info(self, cls: str, message: str) -> LogRecord:
        return self.log("INFO", cls, message)

    def warn(self, cls: str, message: str) -> LogRecord:
        return self.log("WARN", cls, message)

    def error(self, cls: str, message: str) -> LogRecord:
        return self.log("ERROR", cls, message)

    def log(self, level: str, cls: str, message: str) -> LogRecord:
        record = LogRecord(timestamp=self._clock(), cls=cls, message=message, level=level)
        self._store.append(self.daemon, record)
        return record


class LogStore:
    """All log streams of one simulated cluster run."""

    def __init__(self):
        self._streams: Dict[str, List[LogRecord]] = {}
        #: daemon -> cached immutable view, invalidated by append().
        self._views: Dict[str, Tuple[LogRecord, ...]] = {}
        self._sealed = False

    # -- writing ---------------------------------------------------------
    def logger(self, daemon: str, clock: Callable[[], float]) -> DaemonLogger:
        """A :class:`DaemonLogger` writing to the ``daemon`` stream."""
        self._streams.setdefault(daemon, [])
        return DaemonLogger(self, daemon, clock)

    def append(self, daemon: str, record: LogRecord) -> None:
        if self._sealed:
            raise RuntimeError("LogStore is sealed; offline logs are complete")
        self._streams.setdefault(daemon, []).append(record)
        self._views.pop(daemon, None)

    def seal(self) -> "LogStore":
        """Freeze the store: further appends raise.

        A sealed store models an offline log collection — the run is
        over, the files are what they are — so readers may hold onto
        the tuple views from :meth:`records` indefinitely.
        """
        self._sealed = True
        return self

    @property
    def sealed(self) -> bool:
        return self._sealed

    # -- reading ---------------------------------------------------------
    @property
    def daemons(self) -> List[str]:
        """Names of all streams, sorted for determinism."""
        return sorted(self._streams)

    def records(self, daemon: str) -> Tuple[LogRecord, ...]:
        """Records of one stream in emission order, as an immutable view.

        The tuple is cached: repeated calls between appends return the
        same object instead of copying the backing list each time.
        """
        view = self._views.get(daemon)
        if view is None:
            view = tuple(self._streams.get(daemon, ()))
            self._views[daemon] = view
        return view

    def iter_records(self, daemon: str) -> Iterator[LogRecord]:
        """Lazily yield one stream's records in emission order."""
        yield from self._streams.get(daemon, ())

    def iter_lines(self, daemon: str) -> Iterator[str]:
        """Lazily yield one stream's rendered text lines."""
        for record in self.iter_records(daemon):
            yield record.render()

    def all_records(self) -> Iterator[tuple[str, LogRecord]]:
        """(daemon, record) pairs across all streams, per-stream order."""
        for daemon in self.daemons:
            for record in self._streams[daemon]:
                yield daemon, record

    def render(self, daemon: str) -> List[str]:
        """The rendered text lines of one stream."""
        return [r.render() for r in self._streams.get(daemon, [])]

    def __len__(self) -> int:
        return sum(len(v) for v in self._streams.values())

    # -- file round-trip ---------------------------------------------------
    def dump(self, directory: str | Path) -> List[Path]:
        """Write each stream to ``<directory>/<daemon>.log`` (UTF-8).

        An empty stream becomes an empty file — not a lone newline —
        so ``load(dump(store))`` is an identity on stream structure.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for daemon in self.daemons:
            path = directory / f"{daemon}.log"
            path.write_text(
                "".join(line + "\n" for line in self.iter_lines(daemon)),
                encoding="utf-8",
            )
            written.append(path)
        return written

    @classmethod
    def load(cls, directory: str | Path) -> "LogStore":
        """Read every ``*.log`` file in ``directory`` back into a store.

        Unparseable lines (stack traces, wrapped output) are skipped, as
        a log miner must.  A file with no parseable lines still registers
        its (empty) stream, and the returned store is sealed — the files
        on disk are the complete run.
        """
        store = cls()
        for path in sorted(directory_glob(directory), key=lambda p: p.stem):
            daemon = path.stem
            store._streams.setdefault(daemon, [])
            for record in iter_file_records(path):
                store.append(daemon, record)
        return store.seal()

    @classmethod
    def from_lines(cls, named_lines: Iterable[tuple[str, str]]) -> "LogStore":
        """Build a store from (daemon, text-line) pairs."""
        store = cls()
        for daemon, line in named_lines:
            record = LogRecord.try_parse(line)
            if record is not None:
                store.append(daemon, record)
        return store


def directory_glob(directory: str | Path) -> List[Path]:
    """The ``*.log`` files of one log directory (unsorted)."""
    return [p for p in Path(directory).glob("*.log") if p.is_file()]
