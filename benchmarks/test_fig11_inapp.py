"""Figure 11: in-application delay — workloads and code optimization.

Shape claims: driver delay is workload-independent (~3 s for both
wordcount and Spark-SQL); the executor delay is markedly longer for
Spark-SQL (eight opened tables vs one file; paper: p95 9.5 s vs 6.0 s);
more opened files lengthen it further; Future-parallelized RDD init
cuts seconds off the tail (paper: ~2 s).
"""

from repro.experiments.fig11 import FIG11B_VARIANTS, run_fig11


def test_fig11_in_application_delay(benchmark, scale, seed, record_rows):
    result = benchmark.pedantic(run_fig11, args=(scale, seed), rounds=1, iterations=1)
    record_rows("fig11", result.rows())

    wc = result.by_workload["wordcount"]
    sql = result.by_workload["sql"]

    # (a) driver delays nearly identical; ~3 s scale.
    assert abs(wc["driver"].p50 - sql["driver"].p50) < 0.8
    assert 1.5 < sql["driver"].p50 < 4.5

    # (a) Spark-SQL pays a longer executor delay than wordcount.
    assert sql["executor"].p95 > wc["executor"].p95

    # (b) more opened files -> monotonically longer executor delay.
    medians = [result.by_variant[f"x{k}"].p50 for k in (1, 2, 3, 4)]
    assert medians == sorted(medians)
    assert medians[-1] > medians[0] * 1.5

    # (b) the Future optimization shortens the delay (paper: ~2 s off
    # the tail); the median gain is the robust signal at small scale.
    assert result.opt_tail_reduction() > 0.0
    assert (
        result.by_variant["x1"].p50 - result.by_variant["opt"].p50 > 1.0
    )
