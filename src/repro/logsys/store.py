"""Per-daemon log streams and directory round-tripping.

The store mirrors a real Hadoop log collection: one file for the
ResourceManager, one per NodeManager, and one per container (the Spark
driver's and each executor's stdout/stderr aggregation).  File names
follow the ``<daemon>.log`` convention so a directory of logs produced
by :meth:`LogStore.dump` is exactly what SDchecker's offline CLI
consumes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List

from repro.logsys.record import LogRecord

__all__ = ["DaemonLogger", "LogStore"]


class DaemonLogger:
    """Bound logger for one daemon; stamps records with simulated time."""

    def __init__(self, store: "LogStore", daemon: str, clock: Callable[[], float]):
        self._store = store
        self.daemon = daemon
        self._clock = clock

    def info(self, cls: str, message: str) -> LogRecord:
        return self.log("INFO", cls, message)

    def warn(self, cls: str, message: str) -> LogRecord:
        return self.log("WARN", cls, message)

    def error(self, cls: str, message: str) -> LogRecord:
        return self.log("ERROR", cls, message)

    def log(self, level: str, cls: str, message: str) -> LogRecord:
        record = LogRecord(timestamp=self._clock(), cls=cls, message=message, level=level)
        self._store.append(self.daemon, record)
        return record


class LogStore:
    """All log streams of one simulated cluster run."""

    def __init__(self):
        self._streams: Dict[str, List[LogRecord]] = {}

    # -- writing ---------------------------------------------------------
    def logger(self, daemon: str, clock: Callable[[], float]) -> DaemonLogger:
        """A :class:`DaemonLogger` writing to the ``daemon`` stream."""
        self._streams.setdefault(daemon, [])
        return DaemonLogger(self, daemon, clock)

    def append(self, daemon: str, record: LogRecord) -> None:
        self._streams.setdefault(daemon, []).append(record)

    # -- reading ---------------------------------------------------------
    @property
    def daemons(self) -> List[str]:
        """Names of all streams, sorted for determinism."""
        return sorted(self._streams)

    def records(self, daemon: str) -> List[LogRecord]:
        """Records of one stream in emission order."""
        return list(self._streams.get(daemon, []))

    def all_records(self) -> Iterator[tuple[str, LogRecord]]:
        """(daemon, record) pairs across all streams, per-stream order."""
        for daemon in self.daemons:
            for record in self._streams[daemon]:
                yield daemon, record

    def render(self, daemon: str) -> List[str]:
        """The rendered text lines of one stream."""
        return [r.render() for r in self._streams.get(daemon, [])]

    def __len__(self) -> int:
        return sum(len(v) for v in self._streams.values())

    # -- file round-trip ---------------------------------------------------
    def dump(self, directory: str | Path) -> List[Path]:
        """Write each stream to ``<directory>/<daemon>.log``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for daemon in self.daemons:
            path = directory / f"{daemon}.log"
            path.write_text("\n".join(self.render(daemon)) + "\n")
            written.append(path)
        return written

    @classmethod
    def load(cls, directory: str | Path) -> "LogStore":
        """Read every ``*.log`` file in ``directory`` back into a store.

        Unparseable lines (stack traces, wrapped output) are skipped, as
        a log miner must.
        """
        store = cls()
        directory = Path(directory)
        for path in sorted(directory.glob("*.log")):
            daemon = path.stem
            for line in path.read_text().splitlines():
                record = LogRecord.try_parse(line)
                if record is not None:
                    store.append(daemon, record)
        return store

    @classmethod
    def from_lines(cls, named_lines: Iterable[tuple[str, str]]) -> "LogStore":
        """Build a store from (daemon, text-line) pairs."""
        store = cls()
        for daemon, line in named_lines:
            record = LogRecord.try_parse(line)
            if record is not None:
                store.append(daemon, record)
        return store
