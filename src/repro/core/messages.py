"""Table I: the identified log messages and their extraction regexes.

SDchecker owns these patterns independently of the simulator — exactly
as the real tool owns regexes for logs produced by Hadoop and Spark
binaries it does not share code with.  The patterns target the stock
log4j wording of Hadoop 3.0.0-alpha3 / Spark 2.2.0 plus the two
SDCHECKER marker lines the paper adds to Spark's YarnAllocator
(messages 11 and 12).
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from repro.core.events import EventKind

__all__ = [
    "APP_ID_RE",
    "CONTAINER_ID_RE",
    "CONTAINER_LINE_PREFIXES",
    "NM_CONTAINER_LINE_PREFIX",
    "RM_APP_LINE_PREFIX",
    "RM_CONTAINER_LINE_PREFIX",
    "app_id_of_container",
    "catalog_states",
    "classify_rm_app_line",
    "classify_rm_container_line",
    "classify_nm_container_line",
    "classify_container_line",
    "classify_driver_line",
    "classify_first_task_line",
    "classify_mr_task_done_line",
    "instance_type_of_class",
]

#: Global-ID shapes (section III-C: "we group these workflows based on
#: their global IDs, such as application ID and container IDs").
APP_ID_RE = re.compile(r"application_\d+_\d{4,}")
#: The attempt-id segment is at least two digits: Hadoop renders it
#: %02d, so attempt 100 of a long-running recurring app widens the
#: field rather than truncating it (the §V-B JVM-reuse scenario).
CONTAINER_ID_RE = re.compile(r"container_(?:e\d+_)?(\d+)_(\d{4,})_\d{2,}_\d{6}")

_RMAPP_RE = re.compile(
    r"^(?P<app>application_\d+_\d{4,}) State change from "
    r"(?P<old>[A-Z_]+) to (?P<new>[A-Z_]+) on event = (?P<event>[A-Z_]+)$"
)
_RMCONTAINER_RE = re.compile(
    r"^(?P<container>container_\S+) Container Transitioned from "
    r"(?P<old>[A-Z_]+) to (?P<new>[A-Z_]+)$"
)
_NMCONTAINER_RE = re.compile(
    r"^Container (?P<container>container_\S+) transitioned from "
    r"(?P<old>[A-Z_]+) to (?P<new>[A-Z_]+)$"
)
_DRIVER_REGISTER_RE = re.compile(
    r"^Registered ApplicationMaster for (?P<app>application_\d+_\d{4,})\b"
)
_START_ALLO_RE = re.compile(
    r"^SDCHECKER START_ALLO\b.*?(?P<app>application_\d+_\d{4,})"
)
_END_ALLO_RE = re.compile(
    r"^SDCHECKER END_ALLO\b.*?(?P<app>application_\d+_\d{4,})"
)
_FIRST_TASK_RE = re.compile(r"^Got assigned task (?P<task>\d+)$")
_MR_TASK_DONE_RE = re.compile(r"^Task attempt_\d+_\d+_[mr]_\d+_\d+ is done$")

#: Literal prefixes of every delay-relevant line of each stream type.
#: A daemon-log line not starting with its stream's prefix cannot match
#: any Table I classifier, so the miner's hot loop rejects it with one
#: C-level ``str.startswith`` instead of a cascade of regex attempts.
RM_APP_LINE_PREFIX = "application_"
RM_CONTAINER_LINE_PREFIX = "container_"
NM_CONTAINER_LINE_PREFIX = "Container container_"
CONTAINER_LINE_PREFIXES = (
    "Registered ApplicationMaster for ",
    "SDCHECKER ",
    "Got assigned task ",
    "Task attempt_",
)

#: Single-pass alternation over every container-log classifier
#: (messages 10-12, 14 and the MR task-done line).  Branch order mirrors
#: the cascade in :func:`classify_driver_line` /
#: :func:`classify_first_task_line` / :func:`classify_mr_task_done_line`;
#: the branches are mutually exclusive (distinct literal heads), so one
#: ``match`` is equivalent to trying all five regexes in order.
_CONTAINER_LINE_RE = re.compile(
    r"^(?:"
    r"Registered ApplicationMaster for (?P<reg_app>application_\d+_\d{4,})\b"
    r"|SDCHECKER (?P<marker>START_ALLO|END_ALLO)\b.*?(?P<marker_app>application_\d+_\d{4,})"
    r"|Got assigned task (?P<task>\d+)$"
    r"|Task (?P<mr_done>attempt_\d+_\d+_[mr]_\d+_\d+) is done$"
    r")"
)

#: RMAppImpl new-state -> event kind (messages 1-3 + job end).
_RMAPP_STATES = {
    "SUBMITTED": EventKind.APP_SUBMITTED,
    "ACCEPTED": EventKind.APP_ACCEPTED,
    "RUNNING": EventKind.APP_ATTEMPT_REGISTERED,
    "FINISHED": EventKind.APP_FINISHED,
}

#: RMContainerImpl new-state -> event kind (messages 4-5 + lifecycle).
_RMCONTAINER_STATES = {
    "ALLOCATED": EventKind.CONTAINER_ALLOCATED,
    "ACQUIRED": EventKind.CONTAINER_ACQUIRED,
    "RUNNING": EventKind.CONTAINER_RM_RUNNING,
    "COMPLETED": EventKind.CONTAINER_RM_COMPLETED,
    "RELEASED": EventKind.CONTAINER_RELEASED,
    # Table I′ extension: forced kills (preemption / node loss).
    "KILLED": EventKind.CONTAINER_PREEMPTED,
}

#: ContainerImpl new-state -> event kind (messages 6-8).
_NMCONTAINER_STATES = {
    "LOCALIZING": EventKind.CONTAINER_LOCALIZING,
    "SCHEDULED": EventKind.CONTAINER_SCHEDULED,
    "RUNNING": EventKind.CONTAINER_NM_RUNNING,
    # Table I′ extension: the NM acknowledging a forced kill.
    "KILLING": EventKind.CONTAINER_NM_KILLED,
}

#: First-log class substrings -> Fig 9a instance-type code.
_INSTANCE_CLASSES = (
    ("spark.deploy.yarn.ApplicationMaster", "spm"),
    ("spark.executor.CoarseGrainedExecutorBackend", "spe"),
    ("mapreduce.v2.app.MRAppMaster", "mrm"),
    ("hadoop.mapred.YarnChild", "mrs"),  # map/reduce child; refined by caller
)


def catalog_states() -> Dict[str, Dict[str, EventKind]]:
    """The delay-relevant new-state tables, keyed by state-machine class.

    This is the checker side of the simulator/checker contract that
    ``repro.analysis`` (sdlint) cross-checks statically: a transition
    entering one of these states must render a line matched by exactly
    one classifier above.
    """
    return {
        "RMAppImpl": dict(_RMAPP_STATES),
        "RMContainerImpl": dict(_RMCONTAINER_STATES),
        "ContainerImpl": dict(_NMCONTAINER_STATES),
    }


def app_id_of_container(container_id: str) -> Optional[str]:
    """Derive the owning application ID from a container ID.

    The container ID embeds the cluster timestamp and application
    sequence number — the structural link SDchecker uses to group
    container workflows under their application.
    """
    m = CONTAINER_ID_RE.match(container_id)
    if m is None:
        return None
    return f"application_{m.group(1)}_{m.group(2)}"


def classify_rm_app_line(message: str) -> Optional[Tuple[EventKind, str]]:
    """(kind, app_id) for an RMAppImpl transition line, if relevant."""
    m = _RMAPP_RE.match(message)
    if m is None:
        return None
    kind = _RMAPP_STATES.get(m["new"])
    if kind is None:
        return None
    return kind, m["app"]


def classify_rm_container_line(message: str) -> Optional[Tuple[EventKind, str]]:
    """(kind, container_id) for an RMContainerImpl transition line."""
    m = _RMCONTAINER_RE.match(message)
    if m is None:
        return None
    kind = _RMCONTAINER_STATES.get(m["new"])
    if kind is None:
        return None
    return kind, m["container"]


def classify_nm_container_line(message: str) -> Optional[Tuple[EventKind, str]]:
    """(kind, container_id) for a NodeManager ContainerImpl line."""
    m = _NMCONTAINER_RE.match(message)
    if m is None:
        return None
    kind = _NMCONTAINER_STATES.get(m["new"])
    if kind is None:
        return None
    return kind, m["container"]


def classify_driver_line(message: str) -> Optional[Tuple[EventKind, str]]:
    """(kind, app_id) for driver-log registration/allocation markers."""
    for regex, kind in (
        (_DRIVER_REGISTER_RE, EventKind.DRIVER_REGISTERED),
        (_START_ALLO_RE, EventKind.START_ALLO),
        (_END_ALLO_RE, EventKind.END_ALLO),
    ):
        m = regex.search(message)
        if m is not None:
            return kind, m["app"]
    return None


def classify_container_line(
    message: str,
) -> Optional[Tuple[EventKind, Optional[str]]]:
    """Single-pass classification of a container-log line.

    Returns ``(kind, app_id)`` — ``app_id`` is None for the positional
    FIRST_TASK / MR_TASK_DONE lines, which bind through their stream's
    container ID instead.  Agrees line-for-line with the cascaded
    :func:`classify_driver_line` → :func:`classify_first_task_line` →
    :func:`classify_mr_task_done_line` battery (the catalog contract
    sdlint checks), but costs one literal prefix test plus at most one
    regex match.
    """
    if not message.startswith(CONTAINER_LINE_PREFIXES):
        return None
    m = _CONTAINER_LINE_RE.match(message)
    if m is None:
        return None
    if m["task"] is not None:
        return EventKind.FIRST_TASK, None
    if m["mr_done"] is not None:
        return EventKind.MR_TASK_DONE, None
    if m["reg_app"] is not None:
        return EventKind.DRIVER_REGISTERED, m["reg_app"]
    kind = EventKind.START_ALLO if m["marker"] == "START_ALLO" else EventKind.END_ALLO
    return kind, m["marker_app"]


def classify_first_task_line(message: str) -> bool:
    """True for an executor "Got assigned task N" line (message 14)."""
    return _FIRST_TASK_RE.match(message) is not None


def classify_mr_task_done_line(message: str) -> bool:
    """True for a MapReduce child's task-completion line."""
    return _MR_TASK_DONE_RE.match(message) is not None


def instance_type_of_class(cls: str) -> Optional[str]:
    """Fig 9a instance-type code from a first-log emitting class."""
    for needle, code in _INSTANCE_CLASSES:
        if needle in cls:
            return code
    return None
