"""sdlint — static contract checking for the SDchecker reproduction.

SDchecker's correctness rests on an implicit contract between two sides
that share no code: the simulator's log emitters (log4j templates in
``repro.logsys`` users, the ``TEMPLATE``/``TRANSITIONS`` tables of
``repro.yarn.state_machine``, the driver/executor messages of
``repro.spark`` and ``repro.mapreduce``) must render lines that the
Table I regexes in ``repro.core.messages`` match *unambiguously*.  A
one-word template drift silently drops a delay component from every
report — end-to-end runs are the only thing that would notice, and only
if someone stares at the numbers.

PRs 2-5 added a second implicit contract: the miner's parallel fast
path and the live asyncio server promise byte-identical, low-latency
answers, which only holds if nothing blocks the event loop and nothing
leaks state across the process boundary.  A whole-program resolver
(:mod:`repro.analysis.callgraph`) indexes every module once — relative
imports, chained re-export aliases, best-effort receiver types — and
computes a call graph with reachability, so the concurrency passes can
reason across files.

This package machine-checks both contracts with five static passes:

* **catalog cross-check** (:mod:`repro.analysis.catalog`, rules SD1xx)
  — AST-extract every emission template, synthesize representative
  rendered lines, and verify each delay-relevant emission is matched by
  exactly one Table I classifier (coverage, ambiguity, and global-ID
  round-trip).
* **state-machine analysis** (:mod:`repro.analysis.statemachines`,
  rules SD2xx) — transition-graph checks over the ``TRANSITIONS``
  tables: unreachable states, dead transitions, missing terminal
  states, and transitions invisible to SDchecker.
* **determinism lint** (:mod:`repro.analysis.determinism`, rules
  SD3xx) — AST walk flagging unseeded ``random``/``np.random`` calls
  that bypass :class:`repro.simul.distributions.RandomSource`,
  wall-clock reads, and iteration over unordered sets.
* **async safety** (:mod:`repro.analysis.asyncsafety`, rules SD4xx) —
  blocking calls reachable from ``async def`` bodies (with the call
  chain named), un-awaited coroutines and discarded task handles, and
  unbounded queues / ``queue.join()`` without a timeout.
* **process-boundary safety** (:mod:`repro.analysis.procsafety`, rules
  SD5xx) — executor-submitted functions that transitively mutate
  module globals, ``__slots__`` payloads crossing the worker boundary
  without a pickle contract, and shared ``RandomSource`` streams
  without a ``.child()`` substream split.

The static passes are paired with an opt-in *runtime* sanitizer
(:mod:`repro.analysis.sanitizer`, rules SD6xx, env ``REPRO_SANITIZE=1``)
that times every event-loop callback and spot-checks executor payload
picklability and worker determinism, reporting through the same
:class:`Finding` model.

Run it as ``python -m repro.analysis`` (see :mod:`repro.analysis.cli`);
known-accepted findings live in the checked-in ``sdlint.baseline``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.analysis.findings import Finding, RULES, sort_findings

__all__ = ["Finding", "RULES", "run_all", "sort_findings"]


def run_all(root: Optional[Path] = None) -> List[Finding]:
    """Run all five passes over ``root`` (the directory holding ``repro``)."""
    from repro.analysis import (
        asyncsafety,
        catalog,
        determinism,
        procsafety,
        statemachines,
    )
    from repro.analysis.cli import default_root

    root = Path(root) if root is not None else default_root()
    findings: List[Finding] = []
    findings.extend(catalog.run(root))
    findings.extend(statemachines.run(root))
    findings.extend(determinism.run(root))
    findings.extend(asyncsafety.run(root))
    findings.extend(procsafety.run(root))
    return sort_findings(findings)
