"""Google-trace-style submission patterns.

The paper replays two subsets of the Google cluster trace [21] as query
*submission patterns*: a long trace of 2000 queries (overall delays,
Fig 4) and a short trace of 200 (per-component studies).  The trace's
salient property for scheduling delay is bursty arrivals: heavy-tailed
inter-arrival times produce the submission clumps that stress the
allocation path.  We generate arrivals with lognormal inter-arrival
times (coefficient of variation ~2, matching published analyses of the
trace) normalized to a target mean rate.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.simul.distributions import RandomSource

__all__ = [
    "google_trace_arrivals",
    "tpch_query_mix",
    "save_trace_csv",
    "load_trace_csv",
    "LONG_TRACE_QUERIES",
    "SHORT_TRACE_QUERIES",
]

#: Sizes of the paper's two trace subsets (section IV-A).
LONG_TRACE_QUERIES = 2000
SHORT_TRACE_QUERIES = 200

#: Lognormal sigma giving CV ~= 2.1 for inter-arrival times.
_BURSTY_SIGMA = 1.1


def google_trace_arrivals(
    n: int,
    mean_interarrival_s: float,
    rng: RandomSource,
    sigma: float = _BURSTY_SIGMA,
) -> List[float]:
    """``n`` submission times (seconds), bursty, starting near zero."""
    if n < 1:
        raise ValueError("need at least one arrival")
    if mean_interarrival_s <= 0:
        raise ValueError("mean_interarrival_s must be positive")
    # Normalize the lognormal so its *mean* (not median) hits the target.
    mu = math.log(mean_interarrival_s) - sigma * sigma / 2.0
    times: List[float] = []
    t = 0.0
    for _ in range(n):
        times.append(t)
        t += float(rng.rng.lognormal(mean=mu, sigma=sigma))
    return times


def tpch_query_mix(
    n: int, rng: RandomSource, queries: Optional[Sequence[int]] = None
) -> List[int]:
    """``n`` query-template numbers drawn uniformly from ``queries``."""
    pool = list(queries) if queries is not None else list(range(1, 23))
    return [pool[rng.integers(0, len(pool))] for _ in range(n)]


def save_trace_csv(
    path: Union[str, Path], arrivals: Sequence[float], queries: Sequence[int]
) -> Path:
    """Persist a submission trace as ``arrival_s,query`` rows.

    The on-disk format stands in for the paper's google-trace subsets:
    one row per job with its submission offset and TPC-H template.
    """
    if len(arrivals) != len(queries):
        raise ValueError("arrivals and queries must align")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("arrival_s", "query"))
        for t, q in zip(arrivals, queries):
            writer.writerow((f"{t:.3f}", q))
    return path


def load_trace_csv(path: Union[str, Path]) -> tuple:
    """(arrivals, queries) from a trace CSV written by save_trace_csv."""
    arrivals: List[float] = []
    queries: List[int] = []
    with Path(path).open() as handle:
        for row in csv.DictReader(handle):
            arrivals.append(float(row["arrival_s"]))
            queries.append(int(row["query"]))
    if not arrivals:
        raise ValueError(f"empty trace file: {path}")
    if arrivals != sorted(arrivals):
        raise ValueError(f"trace arrivals not sorted: {path}")
    return arrivals, queries
