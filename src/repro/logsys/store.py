"""Per-daemon log streams and directory round-tripping.

The store mirrors a real Hadoop log collection: one file for the
ResourceManager, one per NodeManager, and one per container (the Spark
driver's and each executor's stdout/stderr aggregation).  File names
follow the ``<daemon>.log`` convention so a directory of logs produced
by :meth:`LogStore.dump` is exactly what SDchecker's offline CLI
consumes.

Reading is streaming-first: :meth:`LogStore.iter_records` and
:func:`iter_file_records` yield one record at a time, so a million-line
log never has to be materialized to be mined.  :meth:`LogStore.records`
returns a cached immutable tuple view (rebuilt only after an append),
which makes repeated per-daemon reads O(1) instead of a list copy per
call.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.logsys.diagnostics import StreamDiagnostics
from repro.logsys.record import PARSE_BAD_TIMESTAMP, LogRecord

try:  # pragma: no cover - exercised indirectly by the fallback tests
    import mmap as _mmap
except ImportError:  # platforms built without mmap support
    _mmap = None  # type: ignore[assignment]

__all__ = [
    "ChunkReader",
    "DaemonLogger",
    "LogStore",
    "MMAP_ENV_VAR",
    "SealedStoreError",
    "chunk_window",
    "iter_file_lines",
    "map_readonly",
    "mmap_enabled",
    "tail_chunk",
    "iter_file_records",
    "iter_segment_records",
    "partition_file",
    "read_chunk",
    "read_chunk_fast",
    "stream_segments",
    "directory_glob",
    "FAST_SPLIT_THRESHOLD",
    "FAST_CHUNK_TARGET",
]

#: Default read size for the chunked file reader: large enough to
#: amortize syscalls, small enough to keep memory flat on huge logs.
_CHUNK_SIZE = 1 << 16

#: Files larger than this are split into byte-range chunks so several
#: workers can mine one daemon file concurrently (a multi-GB
#: ResourceManager log no longer serializes on a single worker).
FAST_SPLIT_THRESHOLD = 8 * 1024 * 1024

#: Aimed size of each split chunk.  Half the threshold, so a file just
#: over the threshold still yields at least two meaningful chunks.
FAST_CHUNK_TARGET = 4 * 1024 * 1024

#: ``<daemon>.log`` (live) or ``<daemon>.log.N`` (rotated segment, the
#: log4j RollingFileAppender convention: higher N is older).
_SEGMENT_RE = re.compile(r"^(?P<daemon>.+)\.log(?:\.(?P<index>\d+))?$")


class SealedStoreError(RuntimeError):
    """Raised by :meth:`LogStore.append` after :meth:`LogStore.seal`.

    A ``RuntimeError`` subclass so pre-existing callers that caught the
    old generic exception keep working.
    """


def iter_file_lines(path: str | Path, chunk_size: int = _CHUNK_SIZE) -> Iterator[str]:
    """Yield the text lines of ``path`` reading fixed-size chunks.

    Equivalent to ``path.read_text().splitlines()`` but with O(chunk)
    memory: the file is never fully materialized.  Invalid UTF-8 bytes
    (a crashed writer, bit rot, a truncated multi-byte character) are
    replaced with U+FFFD instead of raising — real log collections are
    not guaranteed to decode cleanly.

    Lines are terminated by ``\\n`` only (``newline="\\n"`` disables
    universal-newline translation): this is the log4j convention the
    simulator writes, and it keeps the text reader line-for-line
    identical with the byte-oriented fast path, which splits raw bytes
    on ``\\n``.
    """
    tail = ""
    with open(path, "r", encoding="utf-8", errors="replace", newline="\n") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            chunk = tail + chunk
            lines = chunk.split("\n")
            tail = lines.pop()
            yield from lines
    if tail:
        yield tail


def partition_file(
    path: str | Path,
    threshold: int = FAST_SPLIT_THRESHOLD,
    target: int = FAST_CHUNK_TARGET,
) -> List[Tuple[int, int]]:
    """Deterministic byte-range partition of one log file.

    Returns ``[(start, end), ...]`` half-open byte ranges covering the
    file: a single range for files of at most ``threshold`` bytes,
    otherwise ranges of roughly ``target`` bytes each.  Boundaries are
    pure arithmetic over the file *size* — no bytes are read — so the
    partition of a given file is identical on every run and process.
    Line alignment is the reader's job: :func:`read_chunk` assigns each
    line to exactly one range via the line-ownership protocol.
    """
    size = Path(path).stat().st_size
    if size <= threshold or target <= 0:
        return [(0, size)]
    chunks = -(-size // target)  # ceil division
    bounds = [size * i // chunks for i in range(chunks + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(chunks)]


def read_chunk(
    path: str | Path, start: int, end: int, read_size: int = _CHUNK_SIZE
) -> bytes:
    """The raw bytes of every line *owned* by the range ``[start, end)``.

    Ownership protocol: a line belongs to the range containing its
    first byte.  The returned buffer therefore starts at a line start
    and runs through the final newline of the last owned line (a line
    straddling ``end`` is read to completion here and skipped by the
    next range; the file's unterminated tail line has no trailing
    newline).  Splitting the buffer on ``\\n`` yields exactly the lines
    :func:`iter_file_lines` would yield for this region, so
    concatenating all ranges of :func:`partition_file` reconstructs the
    whole file with every line appearing exactly once.

    Detecting whether a line starts exactly at ``start`` requires one
    byte of lookbehind (is ``start - 1`` a newline?), which is why the
    reader seeks to ``start - 1`` rather than ``start``.
    """
    if end <= start:
        return b""
    with open(path, "rb") as handle:
        if start > 0:
            handle.seek(start - 1)
            head = handle.read(end - start + 1)
            if not head:
                return b""
            if head[0] == 0x0A:  # a line starts exactly at `start`
                buf = head[1:]
            else:
                # Mid-line: the straddling line is owned upstream.  Our
                # first owned line starts after the next newline — if
                # that is at or past `end`, this range owns nothing.
                newline_at = head.find(b"\n")
                if newline_at < 0 or start + newline_at >= end:
                    return b""
                buf = head[newline_at + 1 :]
        else:
            buf = handle.read(end)
        if buf.endswith(b"\n"):
            return buf
        # Complete the line that straddles `end` (EOF also ends it).
        parts = [buf]
        while True:
            block = handle.read(read_size)
            if not block:
                break
            newline_at = block.find(b"\n")
            if newline_at >= 0:
                parts.append(block[: newline_at + 1])
                break
            parts.append(block)
        return b"".join(parts)


#: Kill-switch for the mmap-backed chunk reader: ``REPRO_MMAP=0`` forces
#: every chunk through the plain ``read()`` path.  Consulted at call
#: time so benchmarks can compare both paths in one process.
MMAP_ENV_VAR = "REPRO_MMAP"


def mmap_enabled() -> bool:
    """Whether chunk reads may go through ``mmap`` (default: yes)."""
    return _mmap is not None and os.environ.get(MMAP_ENV_VAR, "1") != "0"


def map_readonly(path: str | Path):
    """A read-only ``mmap`` of ``path``, or ``None`` when unmappable.

    The file descriptor is closed immediately — a POSIX mapping outlives
    it — and the mapping itself is released by refcounting once the last
    exported :func:`chunk_window` view dies.  ``None`` covers the cases
    the fast path must fall back on: an empty file (zero-length mappings
    raise), a filesystem that refuses to map, or a vanished path.
    """
    if _mmap is None:
        return None
    try:
        with open(path, "rb") as handle:
            mm = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
    except (ValueError, OSError):
        return None
    try:
        # Sequential-scan advice doubles readahead and lets the kernel
        # drop pages behind the scan; purely an optimization, so any
        # platform that lacks or refuses it is fine.
        mm.madvise(_mmap.MADV_SEQUENTIAL)
    except (AttributeError, ValueError, OSError):
        pass
    return mm


def chunk_window(mm, start: int, end: int) -> memoryview:
    """Zero-copy :func:`read_chunk` over a mapping: the owned lines of
    ``[start, end)`` as a ``memoryview`` window.

    Implements the same line-ownership protocol — one byte of
    lookbehind decides whether a line starts exactly at ``start``, and
    a line straddling ``end`` is extended to its newline (or EOF) — but
    with ``mm.find`` boundary probes instead of read+copy, so no
    intermediate buffer is materialized.  The returned view keeps the
    mapping alive; the bytes it exposes are exactly
    ``read_chunk(path, start, end)``.
    """
    size = len(mm)
    end = min(end, size)
    if end <= start:
        return memoryview(b"")
    if start == 0:
        first = 0
    elif mm[start - 1] == 0x0A:  # a line starts exactly at `start`
        first = start
    else:
        # Mid-line: the straddling line is owned upstream.  Our first
        # owned line starts after the next newline — at or past `end`
        # means this range owns nothing.
        newline_at = mm.find(b"\n", start, end)
        if newline_at < 0 or newline_at + 1 >= end:
            return memoryview(b"")
        first = newline_at + 1
    if end == size or mm[end - 1] == 0x0A:
        last = end
    else:
        # Complete the line that straddles `end` (EOF also ends it).
        newline_at = mm.find(b"\n", end)
        last = size if newline_at < 0 else newline_at + 1
    return memoryview(mm)[first:last]


def read_chunk_fast(path: str | Path, start: int, end: int) -> Union[bytes, memoryview]:
    """:func:`read_chunk`, mmap-backed when possible.

    Returns a zero-copy ``memoryview`` window over the file's mapped
    pages, or plain :func:`read_chunk` bytes when mapping is off
    (``REPRO_MMAP=0``), unavailable, or impossible (empty file).
    Either return value scans byte-identically.
    """
    if mmap_enabled():
        mm = map_readonly(path)
        if mm is not None:
            return chunk_window(mm, start, end)
    return read_chunk(path, start, end)


class ChunkReader:
    """Chunk windows with the *current* file's mapping cached.

    The serial fast path scans a directory file-by-file, so the reader
    holds exactly one mapping — the file whose ~4 MiB ranges are
    arriving — and drops it the moment the scan moves to the next
    file.  Dropping promptly is what keeps mmap competitive at
    multi-GB scale: caching every mapping for the whole pass leaves
    the entire corpus resident in the process (page-table and TLB
    growth that made the mapped path *slower* than read(2) past
    ~1 GiB), while a single slot bounds resident mapped memory by one
    file.  Files that cannot be mapped (or a run with
    ``REPRO_MMAP=0``) fall back to :func:`read_chunk` per chunk.  The
    displaced mapping is freed by refcounting once the last chunk
    window handed out over it dies.
    """

    __slots__ = ("_key", "_mm", "_enabled")

    def __init__(self):
        self._key: Optional[str] = None
        self._mm: Optional[object] = None
        self._enabled = mmap_enabled()

    def chunk(self, path: str | Path, start: int, end: int) -> Union[bytes, memoryview]:
        if not self._enabled:
            return read_chunk(path, start, end)
        key = str(path)
        if key != self._key:
            self._key = key
            self._mm = map_readonly(key)
        if self._mm is None:
            return read_chunk(path, start, end)
        return chunk_window(self._mm, start, end)


def tail_chunk(path: str | Path, offset: int, size: int) -> Tuple[bytes, int]:
    """The *complete* lines appended to ``path`` in ``[offset, size)``.

    The incremental half of :func:`read_chunk`'s line-ownership
    protocol, for a file that is still growing: returns ``(buf,
    new_offset)`` where ``buf`` runs from ``offset`` (which must sit at
    a line start) through the final newline at or before ``size``, and
    ``new_offset`` is the byte after that newline.  The trailing
    partial line — bytes after the last newline — is *held back*: a
    writer may still be mid-record, so those bytes are not yet a line.
    The tailer re-reads them once the terminating newline lands (or
    flushes them at drain time, when EOF itself ends the line, exactly
    as :func:`iter_file_lines` treats an unterminated tail).
    """
    if size <= offset:
        return b"", offset
    with open(path, "rb") as handle:
        handle.seek(offset)
        buf = handle.read(size - offset)
    newline_at = buf.rfind(b"\n")
    if newline_at < 0:
        return b"", offset
    return buf[: newline_at + 1], offset + newline_at + 1


def iter_file_records(
    path: str | Path,
    chunk_size: int = _CHUNK_SIZE,
    diagnostics: Optional[StreamDiagnostics] = None,
) -> Iterator[LogRecord]:
    """Yield the parseable :class:`LogRecord` lines of one log file.

    Unparseable lines (stack traces, wrapped output, a final record
    truncated by a crash) are skipped, as a log miner must.  When a
    :class:`StreamDiagnostics` is passed, every skipped line is counted
    there by reason instead of disappearing silently.
    """
    for line in iter_file_lines(path, chunk_size):
        record, outcome = LogRecord.classify_parse(line)
        if diagnostics is not None:
            diagnostics.lines_total += 1
            if "�" in line:
                diagnostics.encoding_replacements += 1
            if record is not None:
                diagnostics.records_parsed += 1
            elif outcome == PARSE_BAD_TIMESTAMP:
                diagnostics.dropped_bad_timestamp += 1
            else:
                diagnostics.dropped_garbled += 1
        if record is not None:
            yield record


def iter_segment_records(
    paths: Sequence[str | Path],
    chunk_size: int = _CHUNK_SIZE,
    diagnostics: Optional[StreamDiagnostics] = None,
) -> Iterator[LogRecord]:
    """Yield the records of one stream's rotation segments, oldest first."""
    if diagnostics is not None:
        diagnostics.segments = max(1, len(paths))
    for path in paths:
        yield from iter_file_records(path, chunk_size, diagnostics)


def stream_segments(directory: str | Path) -> List[Tuple[str, List[Path]]]:
    """The log streams of one directory, with rotation segments merged.

    Returns ``(daemon, [segment paths in chronological order])`` pairs
    sorted by daemon name.  A stream rotated by log4j's
    RollingFileAppender is ``<daemon>.log.N`` (oldest) down through
    ``<daemon>.log.1`` and finally the live ``<daemon>.log``; reading
    the segments in that order reconstructs the original stream.
    """
    groups: Dict[str, List[Tuple[int, Path]]] = {}
    for path in Path(directory).iterdir():
        if not path.is_file():
            continue
        m = _SEGMENT_RE.match(path.name)
        if m is None:
            continue
        # Live files (no index) sort after every rotated segment; rotated
        # segments sort highest-index (oldest) first.
        index = -1 if m["index"] is None else int(m["index"])
        groups.setdefault(m["daemon"], []).append((index, path))
    out: List[Tuple[str, List[Path]]] = []
    for daemon in sorted(groups):
        segments = sorted(groups[daemon], key=lambda item: item[0], reverse=True)
        out.append((daemon, [path for _index, path in segments]))
    return out


class DaemonLogger:
    """Bound logger for one daemon; stamps records with simulated time."""

    def __init__(self, store: "LogStore", daemon: str, clock: Callable[[], float]):
        self._store = store
        self.daemon = daemon
        self._clock = clock

    def info(self, cls: str, message: str) -> LogRecord:
        return self.log("INFO", cls, message)

    def warn(self, cls: str, message: str) -> LogRecord:
        return self.log("WARN", cls, message)

    def error(self, cls: str, message: str) -> LogRecord:
        return self.log("ERROR", cls, message)

    def log(self, level: str, cls: str, message: str) -> LogRecord:
        record = LogRecord(timestamp=self._clock(), cls=cls, message=message, level=level)
        self._store.append(self.daemon, record)
        return record


class LogStore:
    """All log streams of one simulated cluster run."""

    def __init__(self):
        self._streams: Dict[str, List[LogRecord]] = {}
        #: daemon -> cached immutable view, invalidated by append().
        self._views: Dict[str, Tuple[LogRecord, ...]] = {}
        self._sealed = False
        #: daemon -> what :meth:`load` tolerated while reading that
        #: stream off disk.  Empty for stores built in memory, where
        #: every record arrived well-formed by construction.
        self.stream_diagnostics: Dict[str, StreamDiagnostics] = {}

    # -- writing ---------------------------------------------------------
    def logger(self, daemon: str, clock: Callable[[], float]) -> DaemonLogger:
        """A :class:`DaemonLogger` writing to the ``daemon`` stream."""
        self._streams.setdefault(daemon, [])
        return DaemonLogger(self, daemon, clock)

    def append(self, daemon: str, record: LogRecord) -> None:
        if self._sealed:
            raise SealedStoreError(
                f"cannot append to stream {daemon!r}: the LogStore is "
                "sealed — an offline log collection is complete and "
                "immutable (build a new store for new records)"
            )
        self._streams.setdefault(daemon, []).append(record)
        self._views.pop(daemon, None)

    def seal(self) -> "LogStore":
        """Freeze the store: further appends raise.

        A sealed store models an offline log collection — the run is
        over, the files are what they are — so readers may hold onto
        the tuple views from :meth:`records` indefinitely.
        """
        self._sealed = True
        return self

    @property
    def sealed(self) -> bool:
        return self._sealed

    # -- reading ---------------------------------------------------------
    @property
    def daemons(self) -> List[str]:
        """Names of all streams, sorted for determinism."""
        return sorted(self._streams)

    def records(self, daemon: str) -> Tuple[LogRecord, ...]:
        """Records of one stream in emission order, as an immutable view.

        The tuple is cached: repeated calls between appends return the
        same object instead of copying the backing list each time.
        """
        view = self._views.get(daemon)
        if view is None:
            view = tuple(self._streams.get(daemon, ()))
            self._views[daemon] = view
        return view

    def iter_records(self, daemon: str) -> Iterator[LogRecord]:
        """Lazily yield one stream's records in emission order."""
        yield from self._streams.get(daemon, ())

    def iter_lines(self, daemon: str) -> Iterator[str]:
        """Lazily yield one stream's rendered text lines."""
        for record in self.iter_records(daemon):
            yield record.render()

    def all_records(self) -> Iterator[tuple[str, LogRecord]]:
        """(daemon, record) pairs across all streams, per-stream order."""
        for daemon in self.daemons:
            for record in self._streams[daemon]:
                yield daemon, record

    def render(self, daemon: str) -> List[str]:
        """The rendered text lines of one stream."""
        return [r.render() for r in self._streams.get(daemon, [])]

    def __len__(self) -> int:
        return sum(len(v) for v in self._streams.values())

    # -- file round-trip ---------------------------------------------------
    def dump(self, directory: str | Path) -> List[Path]:
        """Write each stream to ``<directory>/<daemon>.log`` (UTF-8).

        An empty stream becomes an empty file — not a lone newline —
        so ``load(dump(store))`` is an identity on stream structure.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for daemon in self.daemons:
            path = directory / f"{daemon}.log"
            path.write_text(
                "".join(line + "\n" for line in self.iter_lines(daemon)),
                encoding="utf-8",
            )
            written.append(path)
        return written

    @classmethod
    def load(cls, directory: str | Path) -> "LogStore":
        """Read every log stream in ``directory`` back into a store.

        Rotated segments (``<daemon>.log.N``) are merged into their
        stream in chronological order.  Unparseable lines (stack traces,
        wrapped output, truncated trailing records, invalid bytes) are
        skipped and counted in :attr:`stream_diagnostics`, as a log
        miner must.  A file with no parseable lines still registers its
        (empty) stream, and the returned store is sealed — the files on
        disk are the complete run.
        """
        store = cls()
        for daemon, paths in stream_segments(directory):
            store._streams.setdefault(daemon, [])
            diagnostics = StreamDiagnostics(daemon=daemon)
            for record in iter_segment_records(paths, diagnostics=diagnostics):
                store.append(daemon, record)
            store.stream_diagnostics[daemon] = diagnostics
        return store.seal()

    @classmethod
    def from_lines(cls, named_lines: Iterable[tuple[str, str]]) -> "LogStore":
        """Build a store from (daemon, text-line) pairs.

        Unparseable lines are skipped and counted per stream in
        :attr:`stream_diagnostics`, mirroring :meth:`load`.
        """
        store = cls()
        for daemon, line in named_lines:
            diagnostics = store.stream_diagnostics.setdefault(
                daemon, StreamDiagnostics(daemon=daemon)
            )
            diagnostics.lines_total += 1
            record, outcome = LogRecord.classify_parse(line)
            if record is not None:
                diagnostics.records_parsed += 1
                store.append(daemon, record)
            elif outcome == PARSE_BAD_TIMESTAMP:
                diagnostics.dropped_bad_timestamp += 1
            else:
                diagnostics.dropped_garbled += 1
        return store


def directory_glob(directory: str | Path) -> List[Path]:
    """The ``*.log`` files of one log directory (unsorted)."""
    return [p for p in Path(directory).glob("*.log") if p.is_file()]
