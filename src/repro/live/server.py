"""An asyncio JSON-lines query/metrics server over a live session.

Wire protocol: one JSON object per line in each direction.  A request
is ``{"op": <name>, ...params}``; the response carries ``ok`` (bool),
the echoed ``op``, and either ``result`` or ``error``::

    {"op": "apps"}
    {"ok": true, "op": "apps", "result": [...]}

Operations: ``apps`` (status rows), ``decomposition`` (one app's full
breakdown, requires ``app_id``), ``diagnostics`` (mining ledger plus
tailer counters), ``metrics`` (Prometheus text exposition), and
``shutdown`` (stop the server after responding).

**Backpressure**: responses are never written directly from the read
loop.  Each connection owns a bounded :class:`asyncio.Queue` drained by
a dedicated writer task; when a consumer reads slower than it queries
and the queue fills, the connection is *dropped* (and counted in
``repro_live_slow_consumer_disconnects_total``) rather than letting one
slow client grow unbounded buffers or stall the poll loop.

All session access happens on the event-loop thread — the poll loop,
the dispatchers, and the metrics reads are serialized by construction,
so :class:`~repro.live.incremental.LiveSession` needs no locks.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from typing import Optional

from repro.live.incremental import LiveSession

__all__ = ["LiveServer", "ServerHandle", "serve_in_thread"]

#: Responses a connection may have in flight before it is considered a
#: slow consumer and disconnected.
DEFAULT_QUEUE_DEPTH = 64

#: Upper bound on waiting for a connection's response queue to drain.
#: If the writer task died (e.g. the peer reset the connection) with
#: items still queued, ``queue.join()`` would otherwise wait forever.
DRAIN_TIMEOUT = 5.0


class LiveServer:
    """Serves one :class:`LiveSession` over JSON lines, polling as it goes."""

    def __init__(
        self,
        session: LiveSession,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.25,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        poll: bool = True,
    ):
        self.session = session
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.queue_depth = queue_depth
        self._poll_enabled = poll
        self._server: Optional[asyncio.AbstractServer] = None
        self._poll_task: Optional[asyncio.Task] = None
        self._shutdown: Optional[asyncio.Event] = None
        #: The actually bound port (useful with ``port=0``).
        self.bound_port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "LiveServer":
        from repro.analysis import sanitizer

        if sanitizer.enabled():
            sanitizer.install_loop_monitor()
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        if self._poll_enabled:
            self._poll_task = asyncio.create_task(self._poll_loop())
        return self

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        assert self._shutdown is not None, "start() first"
        await self._shutdown.wait()
        await self._close()

    def request_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    async def _close(self) -> None:
        if self._poll_task is not None:
            self._poll_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._poll_task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _poll_loop(self) -> None:
        while not self._shutdown.is_set():
            self.session.poll()
            try:
                await asyncio.wait_for(
                    self._shutdown.wait(), timeout=self.poll_interval
                )
            except asyncio.TimeoutError:
                continue

    # -- connections -------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_depth)
        writer_task = asyncio.create_task(self._write_loop(queue, writer))
        dropped = False
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = self._dispatch(line)
                try:
                    queue.put_nowait(response)
                except asyncio.QueueFull:
                    # Slow consumer: drop the connection rather than
                    # buffer without bound.
                    self.session.metrics.counter(
                        "repro_live_slow_consumer_disconnects_total"
                    ).inc()
                    dropped = True
                    break
                if response.get("op") == "shutdown" and response.get("ok"):
                    # Let the response flush, then stop the server.
                    with contextlib.suppress(asyncio.TimeoutError):
                        await asyncio.wait_for(
                            queue.join(), timeout=DRAIN_TIMEOUT
                        )
                    self.request_shutdown()
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            if not dropped:
                with contextlib.suppress(Exception):
                    await asyncio.wait_for(queue.join(), timeout=DRAIN_TIMEOUT)
            writer_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await writer_task
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _write_loop(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            response = await queue.get()
            try:
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return
            finally:
                queue.task_done()

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self, raw: bytes) -> dict:
        try:
            request = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {
                "ok": False,
                "op": None,
                "error": "malformed request: expected one JSON object per line",
            }
        if not isinstance(request, dict):
            return {
                "ok": False,
                "op": None,
                "error": "malformed request: expected a JSON object",
            }
        op = request.get("op")
        self.session.metrics.counter("repro_live_queries_total").inc()
        if op == "apps":
            return {"ok": True, "op": op, "result": self.session.apps_payload()}
        if op == "decomposition":
            app_id = request.get("app_id")
            if not app_id:
                return {
                    "ok": False,
                    "op": op,
                    "error": "decomposition requires an app_id",
                }
            payload = self.session.decomposition_payload(app_id)
            if payload is None:
                return {
                    "ok": False,
                    "op": op,
                    "error": f"unknown application {app_id!r}",
                }
            return {"ok": True, "op": op, "result": payload}
        if op == "diagnostics":
            return {
                "ok": True,
                "op": op,
                "result": self.session.diagnostics_payload(),
            }
        if op == "metrics":
            return {"ok": True, "op": op, "result": self.session.metrics.render()}
        if op == "shutdown":
            return {"ok": True, "op": op, "result": "shutting down"}
        return {
            "ok": False,
            "op": op,
            "error": (
                f"unknown op {op!r} (expected apps, decomposition, "
                "diagnostics, metrics, shutdown)"
            ),
        }


class ServerHandle:
    """A server running on a background thread; address plus ``stop()``."""

    def __init__(self, server: LiveServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self._server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        assert self._server.bound_port is not None
        return self._server.bound_port

    def stop(self, timeout: float = 10.0) -> None:
        try:
            self._loop.call_soon_threadsafe(self._server.request_shutdown)
        except RuntimeError:
            pass  # loop already closed (a client's shutdown op won)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    session: LiveSession,
    host: str = "127.0.0.1",
    port: int = 0,
    poll_interval: float = 0.05,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    poll: bool = True,
) -> ServerHandle:
    """Run a :class:`LiveServer` on a daemon thread; returns its handle.

    The embedding entry point (tests, benchmarks, notebooks): the
    caller keeps its thread, the session lives entirely on the server's
    event loop.
    """
    started = threading.Event()
    holder: dict = {}

    async def _main() -> None:
        server = LiveServer(
            session,
            host=host,
            port=port,
            poll_interval=poll_interval,
            queue_depth=queue_depth,
            poll=poll,
        )
        await server.start()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        await server.serve_until_shutdown()

    def _run() -> None:
        asyncio.run(_main())

    thread = threading.Thread(target=_run, name="repro-live-server", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("live server failed to start within 30s")
    return ServerHandle(holder["server"], holder["loop"], thread)
