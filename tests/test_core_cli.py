"""Tests for the sdchecker command-line interface."""

import json

import pytest

from repro.core.cli import main


@pytest.fixture(scope="module")
def logdir(tmp_path_factory, single_app_run):
    bed, _app, _report = single_app_run
    path = tmp_path_factory.mktemp("logs")
    bed.dump_logs(path)
    return path


class TestCli:
    def test_summary_output(self, logdir, capsys):
        assert main([str(logdir)]) == 0
        out = capsys.readouterr().out
        assert "SDchecker report: 1 application(s)" in out

    def test_json_output(self, logdir, capsys):
        assert main([str(logdir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["applications"] == 1
        assert "total_delay" in payload["metrics"]

    def test_metric_mode(self, logdir, capsys):
        assert main([str(logdir), "--metric", "total_delay"]) == 0
        out = capsys.readouterr().out
        assert "total_delay" in out and "p95" in out

    def test_metric_json(self, logdir, capsys):
        assert main([str(logdir), "--metric", "am_delay", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "am_delay"
        assert payload["n"] == 1

    def test_graph_mode(self, logdir, capsys, single_app_run):
        _bed, app, _report = single_app_run
        assert main([str(logdir), "--graph", str(app.app_id)]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_graph_unknown_app(self, logdir, capsys):
        assert main([str(logdir), "--graph", "application_1_9999"]) == 2

    def test_bug_check_mode(self, logdir, capsys):
        assert main([str(logdir), "--bug-check"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_missing_directory(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_offline_round_trip_matches_in_memory(self, logdir, single_app_run):
        """Mining the dumped text files reproduces the in-memory report."""
        from repro.core.checker import SDChecker

        _bed, _app, live_report = single_app_run
        offline = SDChecker().analyze(logdir)
        assert len(offline) == len(live_report)
        live = live_report.sample("total_delay").p50
        dumped = offline.sample("total_delay").p50
        assert dumped == pytest.approx(live, abs=0.002)  # 1 ms log precision
