"""Unit suite for the calibration objective.

Covers the scoring semantics (exact match → 0, empty-vs-empty free,
one-sided missing penalised, relative-error floor), the serialized
target/trial payloads, and the override-to-scenario compilation
(including the scheduler knob).
"""

from __future__ import annotations

import pytest

from repro.calibrate.objective import (
    COMPONENTS,
    DEFAULT_WEIGHTS,
    ComponentStats,
    TargetDecomposition,
    TrialResult,
    _weighted_error,
    apply_overrides,
    component_error,
)
from repro.workloads.scenarios import get_scenario


def stats(n=8, p50=1.0, p95=2.0, mean=1.2):
    return ComponentStats(n=n, p50=p50, p95=p95, mean=mean)


EMPTY = ComponentStats(n=0, p50=None, p95=None, mean=None)


def target_of(**overrides):
    components = tuple(
        (c, overrides.get(c, stats())) for c in COMPONENTS
    )
    return TargetDecomposition(source="unit", apps=8, components=components)


class TestComponentError:
    def test_exact_match_is_zero(self):
        assert component_error(stats(), stats()) == 0.0

    def test_zero_vs_zero_is_zero(self):
        z = stats(p50=0.0, p95=0.0, mean=0.0)
        assert component_error(z, z) == 0.0

    def test_both_empty_is_free(self):
        assert component_error(EMPTY, EMPTY) == 0.0

    def test_one_sided_missing_penalised(self):
        assert component_error(EMPTY, stats()) == 1.0
        assert component_error(stats(), EMPTY) == 1.0

    def test_relative_error(self):
        # p50 off by 50%, p95 exact → mean of (0.5, 0.0).
        got = stats(p50=1.5, p95=2.0)
        assert component_error(stats(), got) == pytest.approx(0.25)

    def test_floor_damps_tiny_targets(self):
        # A 2 ms disagreement around a 1 ms target is scored against
        # the 50 ms floor, not the 1 ms denominator.
        t = stats(p50=0.001, p95=0.001)
        g = stats(p50=0.003, p95=0.001)
        assert component_error(t, g) == pytest.approx(0.5 * 0.002 / 0.05)


class TestWeightedError:
    def test_exact_decomposition_scores_zero(self):
        error, per_component = _weighted_error(
            target_of(), target_of(), DEFAULT_WEIGHTS
        )
        assert error == 0.0
        assert set(per_component) == set(COMPONENTS)
        assert all(v == 0.0 for v in per_component.values())

    def test_weights_focus_components(self):
        got = target_of(queue_wait_delay=stats(p50=2.0, p95=4.0))
        only_queue = {c: 1.0 if c == "queue_wait_delay" else 0.0 for c in COMPONENTS}
        only_ramp = {c: 1.0 if c == "ramp_delay" else 0.0 for c in COMPONENTS}
        e_queue, _ = _weighted_error(target_of(), got, only_queue)
        e_ramp, _ = _weighted_error(target_of(), got, only_ramp)
        assert e_queue == pytest.approx(1.0)  # p50 and p95 both 100% off
        assert e_ramp == 0.0

    def test_zero_weight_sum_rejected(self):
        with pytest.raises(ValueError, match="weights must sum > 0"):
            _weighted_error(target_of(), target_of(), {})


class TestPayloads:
    def test_target_round_trip(self):
        t = target_of(preemption_delay=EMPTY)
        assert TargetDecomposition.from_dict(t.to_dict()) == t

    def test_target_missing_component_rejected(self):
        payload = target_of().to_dict()
        del payload["components"]["ramp_delay"]
        with pytest.raises(ValueError, match="missing component"):
            TargetDecomposition.from_dict(payload)

    def test_target_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed target"):
            TargetDecomposition.from_dict({"source": "x"})

    def test_trial_round_trip(self):
        t = TrialResult(
            index=3,
            kind="random",
            overrides={"nm_heartbeat_s": 0.5},
            error=0.25,
            component_errors={c: 0.0 for c in COMPONENTS},
            decomposition=target_of().to_dict(),
        )
        assert TrialResult.from_dict(t.to_dict()) == t

    def test_failed_trial_round_trip(self):
        t = TrialResult(index=1, kind="grid", overrides={}, failure="boom")
        back = TrialResult.from_dict(t.to_dict())
        assert back.error is None and back.failure == "boom"

    def test_trial_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed trial"):
            TrialResult.from_dict({"kind": "grid"})


class TestApplyOverrides:
    def test_scheduler_knob_swaps_scheduler(self):
        base = get_scenario("diurnal-burst")
        variant = apply_overrides(base, {"scheduler": "opportunistic"})
        assert variant.scheduler == "opportunistic"
        assert variant.params == base.params
        assert variant.arrivals == base.arrivals

    def test_param_knobs_merge_on_top(self):
        base = get_scenario("diurnal-burst")
        variant = apply_overrides(base, {"nm_heartbeat_s": 0.5})
        assert variant.params["nm_heartbeat_s"] == 0.5
        for key, value in base.params.items():
            if key != "nm_heartbeat_s":
                assert variant.params[key] == value
        assert variant.scheduler == base.scheduler

    def test_empty_overrides_is_identity_point(self):
        base = get_scenario("diurnal-burst")
        variant = apply_overrides(base, {})
        assert variant.params == base.params
        assert variant.scheduler == base.scheduler

    def test_build_rejects_bogus_param_override(self):
        base = get_scenario("diurnal-burst")
        variant = apply_overrides(base, {"nm_hearbeat_s": 0.5})
        with pytest.raises((TypeError, ValueError)):
            variant.build(11)
