"""Simulated HDFS: replicated block storage with bandwidth contention.

Only the aspects the paper's delays depend on are modelled: namenode
block lookups (client-CPU-bound, Fig 13d), replica placement, and data
movement through the shared disk/NIC resources (localization in Fig 8,
IO interference in Figs 5 and 12).
"""

from repro.hdfs.filesystem import Hdfs, HdfsFile

__all__ = ["Hdfs", "HdfsFile"]
