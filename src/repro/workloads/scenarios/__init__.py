"""Production-scale scenario packs.

Declarative, seeded scenarios composing arrival processes, tenant
mixes, schedulers, preemption, hardware profiles, and mid-run cluster
events into single runs the unmodified miner consumes.  See
:mod:`repro.workloads.scenarios.presets` for the named packs.
"""

from repro.workloads.scenarios.arrivals import (
    diurnal_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
)
from repro.workloads.scenarios.presets import (
    SCENARIO_PRESETS,
    get_scenario,
    list_scenarios,
)
from repro.workloads.scenarios.scenario import (
    ArrivalSpec,
    ClusterEvent,
    Scenario,
    ScenarioRun,
    TenantSpec,
)

__all__ = [
    "ArrivalSpec",
    "ClusterEvent",
    "Scenario",
    "ScenarioRun",
    "TenantSpec",
    "SCENARIO_PRESETS",
    "get_scenario",
    "list_scenarios",
    "poisson_arrivals",
    "mmpp_arrivals",
    "diurnal_arrivals",
]
