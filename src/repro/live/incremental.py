"""Incremental mining over a tailed log directory.

:class:`LiveMiner` feeds each newly tailed byte chunk through the batch
fast path's phase-1/2 scanner (:func:`repro.core.parser._scan_chunk`)
and folds the result into the *same*
:class:`~repro.core.parser.StreamEventAccumulator` the batch chunk
merge uses.  Because the accumulator's stitching is independent of how
the stream's bytes were cut into chunks, a live session that has
consumed a directory in any number of polls holds exactly the state a
batch run over the finished directory would compute — that is the
replay-equivalence contract the hypothesis suite pins.

:class:`LiveSession` adds the serving-side bookkeeping on top:

* one session can tail **several directories** (the unit a sharded
  deployment partitions by): one :class:`~repro.live.tailer.DirectoryTailer`
  per directory feeding a single miner, with daemon names required to
  be disjoint across directories — the same precondition under which
  "batch over the union" is even well defined;
* per-application status — **provisional** while events are still
  arriving, upgraded to **final** exactly when the paper's terminal
  transition (``APP_FINISHED``, message "State change from RUNNING to
  FINISHED") is mined for the app;
* optional **eviction** (``evict_after_polls=N``): an application that
  has been final for N polls is dropped — its container streams stop
  being tailed (and their accumulators are freed), its events are
  pruned from the shared daemon streams — so resident state stays
  bounded over days of tailing a rolling workload.  Eviction is off by
  default because it deliberately forgets: the batch-identity contract
  only covers sessions that never evicted;
* a canonical :class:`~repro.core.report.AnalysisReport` rebuilt on
  demand through :func:`repro.core.checker.analyze_events` (the same
  tail the batch :class:`~repro.core.checker.SDChecker` runs), cached
  per revision so a query storm between two polls costs one rebuild;
* online :class:`~repro.live.metrics.MetricsRegistry` instrumentation
  (ingest counters, tail lag, per-component delay histograms observed
  at app finality);
* checkpoint/resume: cursors plus accumulator state serialize to one
  JSON file, and a resumed session converges to the same final report
  as an uninterrupted one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core import messages as msg
from repro.core.checker import analyze_events
from repro.core.diagnostics import MiningDiagnostics
from repro.core.events import EventKind
from repro.core.parser import StreamEventAccumulator, _gate_kind, _scan_chunk
from repro.core.report import AnalysisReport
from repro.live.metrics import MetricsRegistry, build_live_registry
from repro.live.tailer import DirectoryTailer, TailChunk
from repro.logsys.record import TimestampMemo

__all__ = ["LiveMiner", "LiveSession", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1

_APP_FINISHED_VALUE = EventKind.APP_FINISHED.value

#: Per-application delay components observed into the metrics
#: histograms when the application reaches finality.
_APP_COMPONENTS = ("allocation", "driver", "executor")
_CONTAINER_COMPONENTS = ("acquisition", "localization", "launching")


class LiveMiner:
    """Chunk-at-a-time mining with batch-identical accumulated state."""

    def __init__(self):
        self.streams: Dict[str, StreamEventAccumulator] = {}
        # Shared memo pair, exactly like the batch serial fast path: a
        # timestamp second or head span seen in any chunk stays warm.
        self._ts_memo = TimestampMemo()
        self._head_memo: dict = {}

    def ensure_stream(self, daemon: str, segments: int) -> StreamEventAccumulator:
        """Register a stream (even an empty one — the ledger lists it)."""
        acc = self.streams.get(daemon)
        if acc is None:
            acc = self.streams[daemon] = StreamEventAccumulator(
                daemon, _gate_kind(daemon), segments=segments
            )
        elif segments > acc.segments:
            acc.segments = segments
        return acc

    def feed(
        self, daemon: str, data: bytes, segments: int = 1
    ) -> Tuple[List[tuple], Tuple[int, ...], Set[str]]:
        """Mine one tailed chunk into the stream's accumulator.

        Returns ``(accepted event tuples, scan counters, touched app
        IDs)`` — the session uses them for metrics and cache
        invalidation; correctness lives entirely in the accumulator.
        """
        acc = self.ensure_stream(daemon, segments)
        had_first = acc.first_key is not None
        scan = _scan_chunk(daemon, acc.gate, data, self._ts_memo, self._head_memo)
        accepted = acc.absorb(scan)
        touched: Set[str] = set()
        for event in accepted:
            if event[2] is not None:
                touched.add(event[2])
        if not had_first and acc.first_key is not None and acc.gate == "container":
            # The stream's positional INSTANCE_FIRST_LOG just came into
            # existence: the owning app gained an event too.
            app_id = msg.app_id_of_container(daemon)
            if app_id is not None:
                touched.add(app_id)
        return accepted, scan[1], touched

    def evict_app(self, app_id: str) -> List[str]:
        """Forget one application's mined state.

        Container streams owned by the app are dropped whole (their
        accumulators are the bulk of the resident footprint), and the
        app's event tuples are pruned from the shared daemon streams
        (RM, NMs) whose logs keep growing with other tenants' traffic.
        Returns the daemons dropped entirely, so the tailer can stop
        following their files too.
        """
        dropped = [
            daemon
            for daemon in self.streams
            if msg.app_id_of_container(daemon) == app_id
        ]
        for daemon in dropped:
            del self.streams[daemon]
        for acc in self.streams.values():
            if acc.compact:
                acc.compact = [
                    event for event in acc.compact if event[2] != app_id
                ]
        return dropped

    # -- canonical views ---------------------------------------------------
    def events(self) -> list:
        """All mined events in batch order (sorted daemon, stream order)."""
        out = []
        for daemon in sorted(self.streams):
            out.extend(self.streams[daemon].events())
        return out

    def diagnostics(self) -> MiningDiagnostics:
        """A fresh ledger over every stream, in sorted daemon order."""
        diagnostics = MiningDiagnostics()
        for daemon in sorted(self.streams):
            diagnostics.streams[daemon] = self.streams[daemon].diagnostics()
        return diagnostics

    def counter_totals(self) -> Tuple[int, int, int, int]:
        """(lines, records, dropped, events) summed over all streams."""
        lines = records = dropped = events = 0
        for acc in self.streams.values():
            c = acc.counters
            lines += c[0]
            records += c[1]
            dropped += c[2] + c[3]
            events += len(acc.compact)
        return lines, records, dropped, events

    # -- checkpointing -----------------------------------------------------
    def to_state(self) -> dict:
        return {
            daemon: self.streams[daemon].to_state()
            for daemon in sorted(self.streams)
        }

    @classmethod
    def from_state(cls, state: dict) -> "LiveMiner":
        miner = cls()
        for daemon, stream_state in state.items():
            miner.streams[daemon] = StreamEventAccumulator.from_state(stream_state)
        return miner


class LiveSession:
    """One live mining-and-serving session over growing log directories."""

    def __init__(
        self,
        directory: Union[str, Path, Sequence[Union[str, Path]]],
        checkpoint_path: Optional[str | Path] = None,
        registry: Optional[MetricsRegistry] = None,
        evict_after_polls: Optional[int] = None,
        checkpoint_every_polls: int = 1,
    ):
        if isinstance(directory, (str, Path)):
            directories: List[Path] = [Path(directory)]
        else:
            directories = [Path(entry) for entry in directory]
        if not directories:
            raise ValueError("LiveSession needs at least one directory")
        self.directories = directories
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        if checkpoint_every_polls < 1:
            raise ValueError("checkpoint_every_polls must be a positive poll count")
        #: Checkpoint write cadence: 1 persists after every poll (the
        #: strictest durability), N amortizes the full-state JSON write
        #: over N polls — ``drain`` and :meth:`save_checkpoint` always
        #: write immediately, so at most N-1 polls of progress are
        #: re-tailed after a crash (cursors and miner state are saved
        #: together, so a resume is consistent, just older).
        self.checkpoint_every_polls = checkpoint_every_polls
        self._polls_since_checkpoint = 0
        self.tailers: List[DirectoryTailer] = [
            DirectoryTailer(path) for path in self.directories
        ]
        self.miner = LiveMiner()
        self.metrics = registry if registry is not None else build_live_registry()
        # Per-poll counter handles, bound once: name-hashing four
        # registry lookups per chunk was measurable at poll rates.
        self._lines_counter = self.metrics.counter("repro_live_ingest_lines_total")
        self._records_counter = self.metrics.counter(
            "repro_live_ingest_records_total"
        )
        self._dropped_counter = self.metrics.counter("repro_live_dropped_lines_total")
        self._events_counter = self.metrics.counter("repro_live_events_total")
        self._polls_counter = self.metrics.counter("repro_live_polls_total")
        self._lag_gauge = self.metrics.gauge("repro_live_tail_lag_bytes")
        self._streams_gauge = self.metrics.gauge("repro_live_streams")
        if evict_after_polls is not None and evict_after_polls < 1:
            raise ValueError("evict_after_polls must be a positive poll count")
        #: Polls an app may stay resident after finality; None disables
        #: eviction (the default — eviction trades the batch-identity
        #: contract for bounded memory).
        self.evict_after_polls = evict_after_polls
        #: Apps whose terminal transition has been mined.
        self._final_apps: Set[str] = set()
        #: Newly final apps whose delay components have not yet been
        #: observed into the metrics histograms.  Observation needs a
        #: built report; deferring it to the next :meth:`report` (or
        #: metrics render) means a poll that finalizes apps no longer
        #: pays a full analysis rebuild inline — the single largest
        #: cost in the live ingest profile.
        self._pending_component_apps: List[str] = []
        #: app -> poll counter value at which it became final.
        self._final_at: Dict[str, int] = {}
        #: Apps evicted by the TTL policy (never resurrected).
        self._evicted_apps: Set[str] = set()
        self._poll_count = 0
        #: Bumped whenever mining state changes; keys the report cache.
        self.revision = 0
        self._report_cache: Optional[Tuple[int, AnalysisReport]] = None
        self.drained = False

    # -- directory plumbing ------------------------------------------------
    @property
    def directory(self) -> Path:
        """The first (for most sessions, only) tailed directory."""
        return self.directories[0]

    @property
    def tailer(self) -> DirectoryTailer:
        """The sole tailer of a single-directory session."""
        if len(self.tailers) != 1:
            raise AttributeError(
                "session tails multiple directories; use .tailers"
            )
        return self.tailers[0]

    @property
    def tail_lag_bytes(self) -> int:
        return sum(t.tail_lag_bytes for t in self.tailers)

    @property
    def resyncs(self) -> int:
        return sum(t.resyncs for t in self.tailers)

    @property
    def rotations(self) -> int:
        return sum(t.rotations for t in self.tailers)

    @property
    def evicted_apps(self) -> List[str]:
        return sorted(self._evicted_apps)

    def _collect(self, chunk_lists: List[List[TailChunk]]) -> List[TailChunk]:
        """Concatenate per-directory chunks, rejecting daemon collisions.

        Two directories contributing the same daemon name would
        interleave two different byte streams through one accumulator —
        and make "batch over the union" ill-defined — so it is a loud
        error, not a silent merge.
        """
        owner: Dict[str, Path] = {}
        merged: List[TailChunk] = []
        for tailer, chunks in zip(self.tailers, chunk_lists):
            for chunk in chunks:
                held = owner.get(chunk.daemon)
                if held is not None:
                    raise ValueError(
                        f"daemon {chunk.daemon!r} appears in both {held} "
                        f"and {tailer.directory}; tailed directories must "
                        "have disjoint stream names"
                    )
                owner[chunk.daemon] = tailer.directory
                merged.append(chunk)
        return merged

    # -- ingest ------------------------------------------------------------
    def poll(self) -> int:
        """Tail every directory once and mine what arrived; new events."""
        chunk_lists: List[List[TailChunk]] = []
        for tailer in self.tailers:
            chunk_lists.append(tailer.poll())
        return self._ingest(self._collect(chunk_lists))

    def drain(self) -> AnalysisReport:
        """Flush held-back tails and return the canonical final report.

        After the directories have stopped growing, this report is
        byte-identical to batch ``SDChecker`` over the union of their
        files — provided the session never evicted.
        """
        chunk_lists: List[List[TailChunk]] = []
        for tailer in self.tailers:
            chunk_lists.append(tailer.drain())
        self._ingest(self._collect(chunk_lists))
        self.drained = True
        self._checkpoint(force=True)
        return self.report()

    def _ingest(self, chunks: List[TailChunk]) -> int:
        new_events = 0
        changed = False
        lines = records = dropped = 0
        finished_apps: Set[str] = set()
        for chunk in chunks:
            if not chunk.data:
                # Even a silent stream changes the ledger the first
                # time it is seen (and whenever its segment count grows).
                known = self.miner.streams.get(chunk.daemon)
                if known is None or chunk.segments > known.segments:
                    changed = True
                self.miner.ensure_stream(chunk.daemon, chunk.segments)
                continue
            changed = True
            accepted, counters, _touched = self.miner.feed(
                chunk.daemon, chunk.data, chunk.segments
            )
            new_events += len(accepted)
            lines += counters[0]
            records += counters[1]
            dropped += counters[2] + counters[3]
            for event in accepted:
                if event[0] == _APP_FINISHED_VALUE and event[2] is not None:
                    finished_apps.add(event[2])
        if changed:
            self.revision += 1
        if lines:
            self._lines_counter.inc(lines)
        if records:
            self._records_counter.inc(records)
        if dropped:
            self._dropped_counter.inc(dropped)
        if new_events:
            self._events_counter.inc(new_events)
        self._poll_count += 1
        self._polls_counter.inc()
        self._lag_gauge.set(self.tail_lag_bytes)
        self._streams_gauge.set(len(self.miner.streams))
        self._upgrade_finished_apps(finished_apps)
        self._evict_expired()
        self._polls_since_checkpoint += 1
        self._checkpoint()
        return new_events

    def _upgrade_finished_apps(self, finished_apps: Set[str]) -> None:
        """Provisional -> final upgrades for apps whose terminal arrived.

        ``finished_apps`` is collected from this poll's *accepted*
        ``APP_FINISHED`` tuples — terminals absorbed before a
        checkpoint resume are already in ``_final_apps`` — so finality
        tracking costs O(new events), not a rescan of every stream's
        accumulated event list per poll.
        """
        newly_final = sorted(
            app_id
            for app_id in finished_apps
            if app_id not in self._final_apps
        )
        for app_id in newly_final:
            self._final_apps.add(app_id)
            self._final_at[app_id] = self._poll_count
        self.metrics.gauge("repro_live_apps_final").set(
            len(self._final_apps - self._evicted_apps)
        )
        if newly_final:
            self._pending_component_apps.extend(newly_final)

    def _evict_expired(self) -> None:
        """TTL policy: drop apps final for ``evict_after_polls`` polls.

        Keeps resident state bounded under a rolling stream of finished
        applications: each evicted app releases its container-stream
        accumulators and tail cursors, and its events leave the shared
        daemon streams.  The evicted set itself (one string per app) is
        the only thing that still grows.
        """
        if self.evict_after_polls is None:
            return
        expired = sorted(
            app_id
            for app_id, final_poll in self._final_at.items()
            if app_id not in self._evicted_apps
            and self._poll_count - final_poll >= self.evict_after_polls
        )
        if not expired:
            return
        for app_id in expired:
            dropped = self.miner.evict_app(app_id)
            for tailer in self.tailers:
                for daemon in dropped:
                    tailer.evict_stream(daemon)
            self._evicted_apps.add(app_id)
            self._final_at.pop(app_id, None)
        self.revision += 1
        self.metrics.counter("repro_live_apps_evicted_total").inc(len(expired))
        self.metrics.gauge("repro_live_streams").set(len(self.miner.streams))

    def _observe_final_components(
        self, report: AnalysisReport, app_ids: List[str]
    ) -> None:
        """Feed a newly final app's delay components into the histograms.

        Observed once per app, after its provisional->final upgrade:
        the operational view of the paper's per-component
        decomposition.  Observation is *deferred* — it queues at the
        upgrade and runs against the next report actually built (a
        query, a metrics render, the drain), so a quiet poll loop
        never rebuilds the analysis just to fill histograms.  (The
        analytical truth remains the report — events that straggle in
        from other streams after finality still update it.)
        """
        by_id = {app.app_id: app for app in report.apps}
        histogram = self.metrics.histogram("repro_live_component_delay_seconds")
        for app_id in app_ids:
            app = by_id.get(app_id)
            if app is None:
                continue
            for component in _APP_COMPONENTS:
                value = getattr(app, f"{component}_delay")
                if value is not None:
                    histogram.labels(component=component).observe(value)
            for container in app.containers:
                for component in _CONTAINER_COMPONENTS:
                    value = getattr(container, f"{component}_delay")
                    if value is not None:
                        histogram.labels(component=component).observe(value)

    # -- serving views -----------------------------------------------------
    def report(self) -> AnalysisReport:
        """The canonical analysis over everything mined so far (cached)."""
        cached = self._report_cache
        if cached is not None and cached[0] == self.revision:
            report = cached[1]
        else:
            events = self.miner.events()
            if self._evicted_apps:
                # Stragglers mined for an already-evicted app (late
                # lines in a shared daemon log) must not resurrect it
                # half-analyzed.
                events = [e for e in events if e.app_id not in self._evicted_apps]
            report = analyze_events(events, self.miner.diagnostics())
            self._report_cache = (self.revision, report)
            self.metrics.gauge("repro_live_apps").set(len(report.apps))
        if self._pending_component_apps:
            pending = sorted(set(self._pending_component_apps))
            self._pending_component_apps = []
            self._observe_final_components(report, pending)
        return report

    def metrics_text(self) -> str:
        """Prometheus text exposition, pending observations flushed."""
        if self._pending_component_apps:
            self.report()
        return self.metrics.render()

    def metrics_state(self) -> dict:
        """The registry's mergeable state, pending observations flushed."""
        if self._pending_component_apps:
            self.report()
        return self.metrics.to_state()

    def app_status(self, app_id: str) -> str:
        return "final" if app_id in self._final_apps else "provisional"

    def apps_payload(self) -> List[dict]:
        """The ``apps`` query: one status row per application, sorted."""
        report = self.report()
        return [
            {
                "app_id": app.app_id,
                "status": self.app_status(app.app_id),
                "containers": len(app.containers),
                "total_delay": app.total_delay,
                "job_runtime": app.job_runtime,
            }
            for app in report.apps
        ]

    def decomposition_payload(self, app_id: str) -> Optional[dict]:
        """The ``decomposition <app_id>`` query: one app's full breakdown."""
        report = self.report()
        for entry in report.to_dict()["applications"]:
            if entry["app_id"] == app_id:
                return {"status": self.app_status(app_id), **entry}
        return None

    def diagnostics_payload(self) -> dict:
        report = self.report()
        payload = report.diagnostics.to_dict()
        payload["tail_lag_bytes"] = self.tail_lag_bytes
        payload["resyncs"] = self.resyncs
        payload["rotations"] = self.rotations
        payload["drained"] = self.drained
        if self._evicted_apps:
            payload["evicted_apps"] = self.evicted_apps
        return payload

    def state_payload(self) -> dict:
        """The ``state`` op: everything a merging front end needs.

        The miner state is the same JSON the checkpoint persists; a
        router unions these across shards (daemon names are disjoint by
        the multi-directory precondition), rebuilds one
        :class:`LiveMiner`, and runs the same analysis tail — which is
        why the merged report is byte-identical to batch.
        """
        return {
            "miner": self.miner.to_state(),
            "final_apps": sorted(self._final_apps),
            "evicted_apps": self.evicted_apps,
            "tail_lag_bytes": self.tail_lag_bytes,
            "resyncs": self.resyncs,
            "rotations": self.rotations,
            "drained": self.drained,
        }

    # -- checkpoint / resume -----------------------------------------------
    def _checkpoint(self, force: bool = False) -> None:
        if self.checkpoint_path is None:
            return
        if not force and self._polls_since_checkpoint < self.checkpoint_every_polls:
            return
        self.save_checkpoint(self.checkpoint_path)
        self._polls_since_checkpoint = 0

    def save_checkpoint(self, path: str | Path) -> Path:
        """Atomically persist cursors + mining state + app finality."""
        path = Path(path)
        state = {
            "version": CHECKPOINT_VERSION,
            # "directory"/"tailer" (singular) kept for pre-multi-dir
            # readers of single-directory checkpoints.
            "directory": str(self.directory),
            "directories": [str(p) for p in self.directories],
            "revision": self.revision,
            "drained": self.drained,
            "tailers": [t.to_state() for t in self.tailers],
            "miner": self.miner.to_state(),
            "final_apps": sorted(self._final_apps),
            "final_at": dict(sorted(self._final_at.items())),
            "evicted_apps": sorted(self._evicted_apps),
            "poll_count": self._poll_count,
        }
        if len(self.tailers) == 1:
            state["tailer"] = state["tailers"][0]
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(state), encoding="utf-8")
        tmp.replace(path)
        return path

    @classmethod
    def from_checkpoint(
        cls,
        path: str | Path,
        directory: Optional[Union[str, Path, Sequence[Union[str, Path]]]] = None,
        registry: Optional[MetricsRegistry] = None,
        checkpoint_path: Optional[str | Path] = None,
        evict_after_polls: Optional[int] = None,
        checkpoint_every_polls: int = 1,
    ) -> "LiveSession":
        """Rebuild a session from a checkpoint file and keep tailing.

        Ingest counters are re-primed from the restored accumulators and
        the tail-lag gauge from the restored cursors (the backlog is
        still there after a restart; reading 0 until the next poll was a
        lie); cadence series (polls, latency histograms) restart from
        zero — the analysis state is what the contract covers.
        """
        state = json.loads(Path(path).read_text(encoding="utf-8"))
        if state.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {state.get('version')!r}"
            )
        if directory is not None:
            target = directory
        else:
            target = state.get("directories", state["directory"])
        session = cls(
            target,
            checkpoint_path=checkpoint_path,
            registry=registry,
            evict_after_polls=evict_after_polls,
            checkpoint_every_polls=checkpoint_every_polls,
        )
        tailer_states = state.get("tailers")
        if tailer_states is None:
            tailer_states = [state["tailer"]]
        if len(tailer_states) != len(session.directories):
            raise ValueError(
                f"checkpoint holds {len(tailer_states)} tailer(s) but "
                f"{len(session.directories)} directories were given"
            )
        session.tailers = [
            DirectoryTailer.from_state(tailer_state, directory=path_)
            for tailer_state, path_ in zip(tailer_states, session.directories)
        ]
        session.miner = LiveMiner.from_state(state["miner"])
        session._final_apps = set(state["final_apps"])
        session._final_at = {
            app_id: int(poll)
            for app_id, poll in state.get("final_at", {}).items()
        }
        session._evicted_apps = set(state.get("evicted_apps", ()))
        session._poll_count = int(state.get("poll_count", 0))
        session.revision = state["revision"]
        session.drained = state["drained"]
        lines, records, dropped, events = session.miner.counter_totals()
        session.metrics.counter("repro_live_ingest_lines_total").inc(lines)
        session.metrics.counter("repro_live_ingest_records_total").inc(records)
        session.metrics.counter("repro_live_dropped_lines_total").inc(dropped)
        session.metrics.counter("repro_live_events_total").inc(events)
        session.metrics.gauge("repro_live_tail_lag_bytes").set(
            session.tail_lag_bytes
        )
        session.metrics.gauge("repro_live_apps_final").set(
            len(session._final_apps - session._evicted_apps)
        )
        return session
