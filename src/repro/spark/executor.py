"""The Spark executor backend.

Each executor container runs one :class:`SparkExecutor`: it logs its
FIRST_LOG line (Table I message 13) the moment the JVM is up, registers
with the driver, then runs one worker loop per task slot pulling tasks
from the driver's queue.  The first "Got assigned task" line is Table I
message 14 — the end of the total scheduling delay for the application.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, TYPE_CHECKING

from repro.cluster.contention import cold_fraction
from repro.simul.engine import Event, Interrupt, Process
from repro.simul.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spark.application import SparkApplication
    from repro.yarn.app import ContainerContext

__all__ = ["SparkExecutor", "STOP"]

#: Sentinel the driver enqueues to shut a worker down.
STOP = object()

_BACKEND_CLS = "org.apache.spark.executor.CoarseGrainedExecutorBackend"
_EXECUTOR_CLS = "org.apache.spark.executor.Executor"


class SparkExecutor:
    """One executor instance inside a YARN container."""

    def __init__(self, app: "SparkApplication", ctx: "ContainerContext", executor_id: int):
        self.app = app
        self.ctx = ctx
        self.executor_id = executor_id
        self.tasks_run = 0
        #: Tasks the driver has assigned to this executor (round-robin
        #: dispatch, like Spark's spread-out task placement).
        self.inbox: Store = Store(ctx.sim)
        self._logged_first_task = False
        #: Worker processes, populated at registration (kill targets).
        self._workers: List[Process] = []
        #: Outstanding inbox gets by worker slot — a kill must reclaim
        #: a task already handed to a get() the worker hasn't woken for.
        self._gets: Dict[int, Event] = {}
        #: Tasks mid-execution by worker slot.
        self._running: Dict[int, Any] = {}

    def run(self) -> Generator[Event, Any, None]:
        """Container process body (invoked by the NM at launch)."""
        try:
            yield from self._run_body()
        except Interrupt:
            # Killed before registration completed (the registered path
            # interrupts the workers instead); same farewell either way.
            self.ctx.logger.info(_BACKEND_CLS, "Driver commanded a shutdown")
            return

    def kill(self, reason: str) -> List[Any]:
        """Forcibly stop a registered executor; return the lost tasks.

        Reclaims every task this executor would otherwise strand: queued
        in the inbox, handed to a not-yet-woken inbox get, or
        mid-execution — then interrupts the worker loops (each catches
        its Interrupt and returns, so the executor's shutdown barrier
        still completes normally).
        """
        lost: List[Any] = [t for t in self.inbox._items if t is not STOP]
        self.inbox._items.clear()
        for ev in self._gets.values():
            # A put() may have handed a task straight to this get(); the
            # worker never wakes (we interrupt it below), so take it back.
            if ev.triggered and ev.ok and ev.value is not STOP:
                lost.append(ev.value)
        lost.extend(self._running.values())
        for worker in self._workers:
            if worker.is_alive:
                worker.interrupt(reason)
        return lost

    def _run_body(self) -> Generator[Event, Any, None]:
        ctx = self.ctx
        sim = ctx.sim
        params = ctx.services.params
        # FIRST_LOG — Table I message 13.
        ctx.logger.info(
            _BACKEND_CLS,
            f"Started daemon with process name: "
            f"{20000 + self.executor_id}@{ctx.node.hostname} "
            f"for container {ctx.container_id}",
        )
        # Executor-side initialization after the JVM is up: SparkEnv,
        # BlockManager registration, shuffle/serializer setup.  Partly
        # CPU-bound (class loading + JIT), so it stretches under CPU
        # interference like the rest of the in-application path.
        rng = ctx.services.rng.child(f"executor-init.{ctx.container_id}")
        init = rng.lognormal_median(
            params.executor_init_median_s, params.executor_init_sigma
        )
        if ctx.warm_jvm:
            # JVM reuse (section V-B): SparkEnv classes hot, JIT warm.
            init *= 1.0 - params.jvm_reuse_discount
        cpu_part = init * params.jvm_start_cpu_fraction
        if cpu_part > 0:
            yield ctx.node.cpu.submit(cpu_part, demand=1.0)
        if init > cpu_part:
            yield sim.timeout(init - cpu_part)
        # Lazily-loaded classes/jars: free when page-cache-hot, but a
        # contended disk read under dfsIO pressure (Fig 12c).
        cold = params.executor_init_class_load_bytes * cold_fraction(
            ctx.node,
            params.executor_init_class_load_bytes,
            params.page_cache_bytes,
            params.page_cache_eviction_sensitivity,
        )
        if cold > 0:
            yield ctx.node.disk.submit(cold)
        # Connect back to the driver and register.
        yield sim.timeout(self.app.rpc_latency())
        accepted = yield from self.app.register_executor(self)
        if not accepted:
            # Job already finished (stragglers of a short job): exit.
            ctx.logger.info(_BACKEND_CLS, "Driver commanded a shutdown")
            return
        ctx.logger.info(
            _EXECUTOR_CLS,
            f"Starting executor ID {self.executor_id} on host {ctx.node.hostname}",
        )
        slots = max(1, self.app.task_threads_per_executor())
        self._workers = [
            sim.process(self._worker(w), name=f"worker-{ctx.container_id}-{w}")
            for w in range(slots)
        ]
        yield sim.all_of(self._workers)
        ctx.logger.info(_BACKEND_CLS, "Driver commanded a shutdown")

    def _worker(self, wid: int) -> Generator[Event, Any, None]:
        """One task slot: pull, log, execute (or fail), report."""
        ctx = self.ctx
        sim = ctx.sim
        params = ctx.services.params
        fail_rng = ctx.services.rng.child(f"task-fail.{ctx.container_id}")
        while True:
            get_ev = self.inbox.get()
            self._gets[wid] = get_ev
            try:
                task = yield get_ev
            except Interrupt:
                return  # executor killed while idle
            finally:
                self._gets.pop(wid, None)
            if task is STOP:
                return
            self._running[wid] = task
            try:
                yield sim.timeout(self.app.rpc_latency())
                # "Got assigned task N" — the first one is Table I msg 14.
                ctx.logger.info(_EXECUTOR_CLS, f"Got assigned task {task.task_id}")
                self._logged_first_task = True
                if params.spark_task_failure_prob > 0 and fail_rng.bernoulli(
                    params.spark_task_failure_prob
                ):
                    # Fail partway through: the wasted work still burned
                    # real resources; the driver re-offers the task.
                    yield from task.execute(ctx, completion=fail_rng.uniform(0.1, 0.9))
                    ctx.logger.error(
                        _EXECUTOR_CLS,
                        f"Exception in task {task.task_id} (attempt {task.attempts})",
                    )
                    self.app.task_failed(task, self)
                    continue
                yield from task.execute(ctx)
                self.tasks_run += 1
                self.app.task_finished(task, self)
            except Interrupt:
                # Executor killed mid-task; kill() already reclaimed the
                # task for re-dispatch elsewhere.
                return
            finally:
                self._running.pop(wid, None)
