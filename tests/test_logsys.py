"""Tests for log records, log4j formatting and the log store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logsys.diagnostics import StreamDiagnostics
from repro.logsys.record import LogRecord, format_timestamp, parse_timestamp
from repro.logsys.store import (
    LogStore,
    SealedStoreError,
    iter_file_records,
    stream_segments,
    tail_chunk,
)


class TestTimestampFormat:
    def test_zero_renders_epoch_midnight(self):
        assert format_timestamp(0.0) == "2018-01-12 00:00:00,000"

    def test_millisecond_rounding(self):
        assert format_timestamp(1.23456).endswith(",235")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_timestamp(-0.001)

    def test_day_rollover(self):
        rendered = format_timestamp(86_400.0 + 3600.0)
        assert rendered.startswith("2018-01-13 01:00:00")

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=0.0, max_value=86_400.0 * 10))
    def test_round_trip_at_ms_precision(self, seconds):
        rendered = format_timestamp(seconds)
        record = LogRecord.parse(f"{rendered} INFO X: y")
        assert record.timestamp == pytest.approx(seconds, abs=0.0005 + 1e-9)


class TestLogRecord:
    def test_render_layout(self):
        r = LogRecord(1.5, "org.apache.Foo", "hello world")
        assert r.render() == "2018-01-12 00:00:01,500 INFO org.apache.Foo: hello world"

    def test_parse_round_trip(self):
        r = LogRecord(12.345, "RMAppImpl", "a: b: c", level="WARN")
        back = LogRecord.parse(r.render())
        assert back.cls == "RMAppImpl"
        assert back.message == "a: b: c"
        assert back.level == "WARN"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            LogRecord.parse("java.lang.NullPointerException")

    def test_try_parse_returns_none_for_noise(self):
        assert LogRecord.try_parse("   at Foo.bar(Foo.java:42)") is None

    def test_parse_class_with_dollar_sign(self):
        line = "2018-01-12 00:00:00,001 INFO a.b.C$D: inner class logger"
        assert LogRecord.parse(line).cls == "a.b.C$D"


class TestLogStore:
    def test_logger_stamps_with_clock(self):
        store = LogStore()
        now = [0.0]
        logger = store.logger("daemon-a", lambda: now[0])
        logger.info("Cls", "first")
        now[0] = 2.0
        logger.warn("Cls", "second")
        records = store.records("daemon-a")
        assert [r.timestamp for r in records] == [0.0, 2.0]
        assert records[1].level == "WARN"

    def test_daemons_sorted(self):
        store = LogStore()
        store.logger("zeta", lambda: 0.0).info("C", "m")
        store.logger("alpha", lambda: 0.0).info("C", "m")
        assert store.daemons == ["alpha", "zeta"]

    def test_len_counts_all_records(self):
        store = LogStore()
        log = store.logger("d", lambda: 0.0)
        for i in range(5):
            log.info("C", f"m{i}")
        assert len(store) == 5

    def test_dump_and_load_round_trip(self, tmp_path):
        store = LogStore()
        log = store.logger("hadoop-resourcemanager", lambda: 1.0)
        log.info("RMAppImpl", "application_1_0001 State change from NEW to SUBMITTED on event = START")
        log.error("Other", "unrelated")
        paths = store.dump(tmp_path)
        assert [p.name for p in paths] == ["hadoop-resourcemanager.log"]
        loaded = LogStore.load(tmp_path)
        assert len(loaded) == 2
        assert loaded.records("hadoop-resourcemanager")[0].cls == "RMAppImpl"

    def test_load_skips_unparseable_lines(self, tmp_path):
        (tmp_path / "daemon.log").write_text(
            "2018-01-12 00:00:00,100 INFO A: ok\n"
            "java.io.IOException: broken pipe\n"
            "\tat Foo.bar(Foo.java:1)\n"
            "2018-01-12 00:00:00,200 INFO B: also ok\n"
        )
        store = LogStore.load(tmp_path)
        assert [r.cls for r in store.records("daemon")] == ["A", "B"]

    def test_from_lines(self):
        store = LogStore.from_lines(
            [
                ("d1", "2018-01-12 00:00:00,000 INFO X: m"),
                ("d1", "not a log line"),
                ("d2", "2018-01-12 00:00:01,000 INFO Y: n"),
            ]
        )
        assert len(store.records("d1")) == 1
        assert len(store.records("d2")) == 1

    def test_all_records_iterates_in_daemon_order(self):
        store = LogStore()
        store.logger("b", lambda: 0.0).info("C", "m1")
        store.logger("a", lambda: 0.0).info("C", "m2")
        daemons = [d for d, _r in store.all_records()]
        assert daemons == ["a", "b"]


class TestReaderTolerance:
    """The readers never raise on imperfect files — they skip and count.

    Regression tests for two crashes the fault-injection catalog
    exposed: invalid UTF-8 bytes (bit rot, mixed encodings) used to
    abort :meth:`LogStore.load` with ``UnicodeDecodeError``, and a
    final record truncated mid-write used to depend on luck.
    """

    def test_invalid_bytes_are_replaced_not_fatal(self, tmp_path):
        (tmp_path / "daemon.log").write_bytes(
            b"2018-01-12 00:00:00,100 INFO A: ok\n"
            b"2018-01-12 00:00:00,200 INFO B: bit\xfe\xffrot\n"
            b"2018-01-12 00:00:00,300 INFO C: ok again\n"
        )
        store = LogStore.load(tmp_path)  # must not raise
        records = store.records("daemon")
        assert [r.cls for r in records] == ["A", "B", "C"]
        assert "�" in records[1].message
        diagnostics = store.stream_diagnostics["daemon"]
        assert diagnostics.encoding_replacements == 1

    def test_truncated_trailing_record_is_skipped(self, tmp_path):
        complete = "2018-01-12 00:00:00,100 INFO A: first record\n"
        truncated = "2018-01-12 00:00:00,2"  # crash mid-timestamp, no newline
        (tmp_path / "daemon.log").write_text(complete + truncated)
        store = LogStore.load(tmp_path)  # must not raise
        assert [r.cls for r in store.records("daemon")] == ["A"]
        diagnostics = store.stream_diagnostics["daemon"]
        assert diagnostics.lines_total == 2
        assert diagnostics.records_parsed == 1
        assert diagnostics.dropped_garbled == 1

    def test_iter_file_records_counts_into_diagnostics(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_bytes(
            b"2018-01-12 00:00:00,100 INFO A: ok\n"
            b"garbage line\n"
            b"2018-02-12 00:00:00,100 INFO B: drifted month\n"
        )
        diagnostics = StreamDiagnostics(daemon="d")
        records = list(iter_file_records(path, diagnostics=diagnostics))
        assert [r.cls for r in records] == ["A"]
        assert diagnostics.lines_total == 3
        assert diagnostics.dropped_garbled == 1
        assert diagnostics.dropped_bad_timestamp == 1

    def test_rotation_segments_merge_oldest_first(self, tmp_path):
        (tmp_path / "daemon.log.2").write_text(
            "2018-01-12 00:00:00,100 INFO Old: oldest\n"
        )
        (tmp_path / "daemon.log.1").write_text(
            "2018-01-12 00:00:00,200 INFO Mid: middle\n"
        )
        (tmp_path / "daemon.log").write_text(
            "2018-01-12 00:00:00,300 INFO New: live\n"
        )
        streams = stream_segments(tmp_path)
        assert [(d, [p.name for p in paths]) for d, paths in streams] == [
            ("daemon", ["daemon.log.2", "daemon.log.1", "daemon.log"])
        ]
        store = LogStore.load(tmp_path)
        assert [r.cls for r in store.records("daemon")] == ["Old", "Mid", "New"]
        assert store.stream_diagnostics["daemon"].segments == 3


class TestRecordsView:
    """records() is an immutable cached view, not a per-call copy."""

    def test_returns_tuple(self):
        store = LogStore()
        store.logger("d", lambda: 0.0).info("C", "m")
        assert isinstance(store.records("d"), tuple)

    def test_repeated_calls_share_the_view(self):
        store = LogStore()
        store.logger("d", lambda: 0.0).info("C", "m")
        assert store.records("d") is store.records("d")

    def test_append_invalidates_the_view(self):
        store = LogStore()
        log = store.logger("d", lambda: 0.0)
        log.info("C", "m1")
        before = store.records("d")
        log.info("C", "m2")
        after = store.records("d")
        assert len(before) == 1 and len(after) == 2

    def test_sealed_store_rejects_appends(self):
        store = LogStore()
        store.logger("d", lambda: 0.0).info("C", "m")
        store.seal()
        with pytest.raises(RuntimeError):
            store.append("d", LogRecord(1.0, "C", "late"))

    def test_load_returns_sealed_store(self, tmp_path):
        LogStore().dump(tmp_path)
        (tmp_path / "d.log").write_text(
            "2018-01-12 00:00:00,000 INFO C: m\n", encoding="utf-8"
        )
        assert LogStore.load(tmp_path).sealed


class TestRoundTripIdentity:
    """dump() then load() preserves the exact stream structure."""

    def test_empty_stream_survives(self, tmp_path):
        store = LogStore()
        store.logger("quiet-daemon", lambda: 0.0)  # registered, never wrote
        store.logger("noisy", lambda: 1.0).info("C", "m")
        store.dump(tmp_path)
        assert (tmp_path / "quiet-daemon.log").read_text(encoding="utf-8") == ""
        loaded = LogStore.load(tmp_path)
        assert loaded.daemons == ["noisy", "quiet-daemon"]
        assert loaded.records("quiet-daemon") == ()

    def test_utf8_messages_survive(self, tmp_path):
        store = LogStore()
        store.logger("d", lambda: 0.5).info("C", "métriques λ≤∞ 完了")
        store.dump(tmp_path)
        loaded = LogStore.load(tmp_path)
        assert loaded.records("d")[0].message == "métriques λ≤∞ 完了"

    @settings(max_examples=60, deadline=None)
    @given(
        streams=st.dictionaries(
            keys=st.text(alphabet="abcdefghij0123456789-", min_size=1, max_size=12),
            values=st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=86_400_000),  # millis
                    st.text(alphabet="ABCDEFG", min_size=1, max_size=4),  # level
                    st.text(
                        alphabet="abcXYZ012._$-", min_size=1, max_size=16
                    ),  # class
                    st.text(
                        st.characters(codec="utf-8", exclude_characters="\n\r"),
                        max_size=40,
                    ),  # message
                ),
                max_size=8,
            ),
            max_size=4,
        )
    )
    def test_dump_load_is_identity(self, streams, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("roundtrip")
        store = LogStore()
        for daemon, rows in streams.items():
            store._streams.setdefault(daemon, [])
            for millis, level, cls, message in rows:
                store.append(
                    daemon,
                    LogRecord(
                        timestamp=millis / 1000.0, cls=cls, message=message, level=level
                    ),
                )
        store.dump(tmp_path)
        loaded = LogStore.load(tmp_path)
        assert loaded.daemons == store.daemons
        for daemon in store.daemons:
            # Timestamps are quantized to the shared ms precision, so
            # identity is judged on the rendered lines plus the exact
            # (level, class, message) triples.
            assert loaded.render(daemon) == store.render(daemon)
            assert [(r.level, r.cls, r.message) for r in loaded.records(daemon)] == [
                (r.level, r.cls, r.message) for r in store.records(daemon)
            ]


class TestSealedStoreError:
    """seal() makes appends fail with the dedicated exception type."""

    def test_append_after_seal_raises_sealed_store_error(self):
        store = LogStore()
        store.logger("d", lambda: 0.0).info("C", "m")
        store.seal()
        with pytest.raises(SealedStoreError) as exc_info:
            store.append("d", LogRecord(1.0, "C", "late"))
        assert "sealed" in str(exc_info.value)

    def test_sealed_store_error_is_a_runtime_error(self):
        # Callers that predate the dedicated type catch RuntimeError.
        assert issubclass(SealedStoreError, RuntimeError)

    def test_unsealed_store_still_appends(self):
        store = LogStore()
        store._streams.setdefault("d", [])
        store.append("d", LogRecord(1.0, "C", "fine"))
        assert len(store.records("d")) == 1


class TestTailChunk:
    """tail_chunk only surrenders complete lines; the tail is held back."""

    def test_complete_lines_are_returned(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_bytes(b"one\ntwo\n")
        buf, offset = tail_chunk(path, 0, 8)
        assert buf == b"one\ntwo\n" and offset == 8

    def test_partial_tail_is_held_back(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_bytes(b"one\ntwo\npart")
        buf, offset = tail_chunk(path, 0, 12)
        assert buf == b"one\ntwo\n" and offset == 8
        # The writer finishes the line; the next call picks it up whole.
        path.write_bytes(b"one\ntwo\npartial line\n")
        buf, offset = tail_chunk(path, offset, 21)
        assert buf == b"partial line\n" and offset == 21

    def test_no_newline_yet_means_no_bytes(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_bytes(b"still typing")
        buf, offset = tail_chunk(path, 0, 12)
        assert buf == b"" and offset == 0

    def test_offset_resumes_mid_file(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_bytes(b"a\nb\nc\n")
        buf, offset = tail_chunk(path, 2, 6)
        assert buf == b"b\nc\n" and offset == 6
