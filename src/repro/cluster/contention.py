"""Contention helpers: pipelined transfers and CPU bursts.

A data transfer traverses several shared resources (source disk, source
NIC, destination NIC, destination disk).  In a pipelined transfer the
achieved rate at any instant is the minimum of the per-resource shares.
We approximate this by submitting the full byte count to every resource
on the path concurrently and completing when the slowest finishes —
exact when shares are constant, and conservative-but-close when they
change mid-flight.  Resources that are not a factor for a particular
transfer (e.g. the source disk for a page-cache-resident file) are
simply omitted from the path.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional

from repro.cluster.node import Node
from repro.simul.engine import Event, Simulator
from repro.simul.resources import FairShareResource

__all__ = ["pipelined_transfer", "cpu_burst", "cold_fraction"]


def cold_fraction(
    node: Node, nbytes: float, page_cache_bytes: float, sensitivity: float = 3.0
) -> float:
    """Fraction of an ``nbytes`` read that misses the page cache.

    When the node's disks are clean, anything smaller than the cache
    budget is hot (repeatedly-localized Spark jars, freshly-written
    class files).  Sustained *write* pressure — dfsIO streams — dirties
    and evicts the cache, shrinking the effective budget; this is the
    coupling that makes IO interference hit localization and JVM class
    loading so hard in Fig 12.  Read pressure does not evict
    recently-written hot files, which is why huge-input scans (Fig 5)
    leave localization largely intact while dfsIO devastates it.
    """
    if nbytes <= 0:
        return 0.0
    effective = page_cache_bytes / (1.0 + sensitivity * node.write_pressure())
    return max(0.0, nbytes - effective) / nbytes


def pipelined_transfer(
    sim: Simulator,
    nbytes: float,
    path: Iterable[FairShareResource],
    demand: Optional[float] = None,
) -> Event:
    """Move ``nbytes`` across every resource in ``path`` concurrently.

    Returns an event that fires when the slowest leg finishes.  ``demand``
    caps the per-resource rate of this flow (e.g. a throttled dfsIO
    stream); by default the flow can absorb each resource fully.
    """
    legs = [res.submit(nbytes, demand=demand) for res in path]
    if not legs:
        done = Event(sim)
        done.succeed(0.0)
        return done
    if len(legs) == 1:
        return legs[0]
    return sim.all_of(legs)


def cpu_burst(
    node: Node, cpu_seconds: float, cores: float = 1.0
) -> Generator[Event, None, float]:
    """Process helper: run ``cpu_seconds`` of single-thread-equivalent
    CPU work on ``node`` using up to ``cores`` parallel threads.

    Work is expressed in core-seconds (``cpu_seconds`` at one core); the
    run-queue stretches it under contention.  Returns the elapsed wall
    time.
    """
    start = node.sim.now
    if cpu_seconds > 0:
        yield node.cpu.submit(cpu_seconds, demand=cores)
    return node.sim.now - start
