"""Cluster hardware model: nodes, topology, and contention helpers."""

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.cluster.contention import pipelined_transfer, cpu_burst

__all__ = ["Cluster", "Node", "pipelined_transfer", "cpu_burst"]
