"""Pass 2 — state-machine analysis (rules SD201-SD204).

Builds the transition graph of every ``TRANSITIONS``-table machine in
the simulator source and checks structural invariants SDchecker's delay
decomposition silently relies on:

* **SD201 unreachable-state** — a state no event sequence from
  ``INITIAL`` can reach; its timestamps can never appear in a log.
* **SD202 dead-transition** — a transition out of an unreachable state:
  dead wiring that will rot unnoticed.
* **SD203 no-terminal-state** — no reachable state with out-degree 0;
  every entity would spin forever and job-runtime endpoints would never
  fire.
* **SD204 invisible-transition** — a reachable transition whose target
  state has no Table I classifier entry: the simulator logs it, but
  SDchecker cannot see it.  Several of these are *intentional*
  (NEW_SAVING, FINAL_SAVING, the NM cleanup tail) — they are accepted
  via the checked-in baseline rather than silenced in code, so adding a
  new one is a conscious decision.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.extract import StateMachineSpec, extract_state_machines
from repro.analysis.findings import Finding, make_finding
from repro.core import messages as msg
from repro.core.events import EventKind

__all__ = ["analyze_machine", "reachable_states", "run"]


def reachable_states(
    transitions: Dict[Tuple[str, str], str], initial: str
) -> Set[str]:
    """States reachable from ``initial`` following the transition table."""
    edges: Dict[str, Set[str]] = {}
    for (src, _event), dst in transitions.items():
        edges.setdefault(src, set()).add(dst)
    seen: Set[str] = set()
    frontier = [initial] if initial else []
    while frontier:
        state = frontier.pop()
        if state in seen:
            continue
        seen.add(state)
        frontier.extend(edges.get(state, ()))
    return seen


def analyze_machine(
    machine: StateMachineSpec,
    catalog: Optional[Dict[str, Dict[str, EventKind]]] = None,
) -> List[Finding]:
    """All SD2xx findings for one machine."""
    catalog = catalog if catalog is not None else msg.catalog_states()
    findings: List[Finding] = []
    transitions = machine.transitions
    states: Set[str] = set()
    if machine.initial:
        states.add(machine.initial)
    for (src, _event), dst in transitions.items():
        states.update((src, dst))
    reachable = reachable_states(transitions, machine.initial)

    for state in sorted(states - reachable):
        findings.append(
            make_finding(
                "SD201",
                machine.path,
                machine.line,
                f"{machine.name}: state {state} is unreachable from "
                f"{machine.initial or '<no INITIAL>'}",
            )
        )
    for (src, event), dst in sorted(transitions.items()):
        if src not in reachable:
            findings.append(
                make_finding(
                    "SD202",
                    machine.path,
                    machine.line,
                    f"{machine.name}: transition {src} --{event}--> {dst} "
                    f"can never fire (source state unreachable)",
                )
            )
    sources = {src for (src, _event) in transitions}
    if reachable and not any(state not in sources for state in reachable):
        findings.append(
            make_finding(
                "SD203",
                machine.path,
                machine.line,
                f"{machine.name}: no reachable terminal state — every "
                f"entity would transition forever",
            )
        )

    states_table = catalog.get(machine.short_cls)
    if states_table is None:
        findings.append(
            make_finding(
                "SD204",
                machine.path,
                machine.line,
                f"{machine.name}: class {machine.cls or '<no CLS>'} has no "
                f"Table I classifier; every transition is invisible to "
                f"SDchecker",
            )
        )
    else:
        for (src, event), dst in sorted(transitions.items()):
            if src in reachable and dst not in states_table:
                findings.append(
                    make_finding(
                        "SD204",
                        machine.path,
                        machine.line,
                        f"{machine.name}: transition {src} --{event}--> {dst} "
                        f"is invisible to SDchecker (no catalog event for "
                        f"state {dst})",
                    )
                )
    return findings


def run(root: Path) -> List[Finding]:
    """SD2xx analysis of every state machine under ``root``."""
    findings: List[Finding] = []
    for machine in extract_state_machines(root):
        findings.extend(analyze_machine(machine))
    return findings
