"""Metamorphic replay-equivalence suite for the live miner.

The contract under test: once a log directory stops growing, a drained
:class:`~repro.live.incremental.LiveSession` produces an
:class:`~repro.core.report.AnalysisReport` *byte-identical* to the
batch :class:`~repro.core.checker.SDChecker` over the same directory —
no matter how the bytes arrived.  Hypothesis drives the arrival
schedule: files grow by arbitrary byte increments (mid-line, mid-record
— timestamps get split across polls), streams interleave in arbitrary
order, rotation renames happen between polls, and sessions get
checkpointed and resumed mid-stream.  Every schedule must converge to
the same report dict (diagnostics ledger included).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.checker import SDChecker
from repro.live import LiveSession

DATA = Path(__file__).resolve().parent / "data"
GOLDEN = DATA / "golden"


def _corpus():
    """(name, bytes) for every golden stream file, sorted."""
    return [
        (path.name, path.read_bytes())
        for path in sorted(GOLDEN.iterdir())
        if path.is_file()
    ]


def _batch_dict(directory):
    report = SDChecker(jobs=1).analyze(directory)
    return report.to_dict(include_diagnostics=True)


def _drained_dict(session):
    return session.drain().to_dict(include_diagnostics=True)


@pytest.fixture(scope="module")
def golden_batch_dict():
    return _batch_dict(GOLDEN)


class TestWholeCorpusAtOnce:
    def test_single_poll_then_drain_matches_batch(
        self, tmp_path, golden_batch_dict
    ):
        for name, data in _corpus():
            (tmp_path / name).write_bytes(data)
        session = LiveSession(tmp_path)
        session.poll()
        assert _drained_dict(session) == golden_batch_dict

    def test_drain_without_any_poll_matches_batch(
        self, tmp_path, golden_batch_dict
    ):
        for name, data in _corpus():
            (tmp_path / name).write_bytes(data)
        assert _drained_dict(LiveSession(tmp_path)) == golden_batch_dict

    def test_report_on_the_real_golden_directory(self, golden_batch_dict):
        # Read-only session over the committed corpus itself.
        session = LiveSession(GOLDEN)
        session.poll()
        report = session.report()
        assert report.to_dict(include_diagnostics=True) == golden_batch_dict


class TestRandomizedSchedules:
    """Any chunk-arrival schedule converges to the batch report."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_random_increments_match_batch(
        self, data, tmp_path_factory, golden_batch_dict
    ):
        tmp_path = tmp_path_factory.mktemp("replay")
        corpus = _corpus()
        # Draw per-file cut offsets: arbitrary byte positions, so lines,
        # records, and even timestamp fields split across arrivals.
        plans = {}
        for name, blob in corpus:
            cuts = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(blob)),
                    max_size=4,
                ),
                label=f"cuts:{name}",
            )
            plans[name] = sorted(set(cuts)) + [len(blob)]
        session = LiveSession(tmp_path)
        written = {name: 0 for name, _ in corpus}
        pending = {name: list(plan) for name, plan in plans.items()}
        blob_of = dict(corpus)
        while any(pending.values()):
            candidates = sorted(name for name in pending if pending[name])
            name = data.draw(st.sampled_from(candidates), label="next stream")
            target = pending[name].pop(0)
            # Unconditional append-open: even a zero-byte step creates
            # the file, the way a daemon opens its log before writing
            # (the golden layout has a genuinely empty stream).
            with (tmp_path / name).open("ab") as handle:
                handle.write(blob_of[name][written[name] : target])
            written[name] = max(written[name], target)
            if data.draw(st.booleans(), label="poll now"):
                session.poll()
        assert _drained_dict(session) == golden_batch_dict

    def test_line_by_line_arrival_matches_batch(
        self, tmp_path, golden_batch_dict
    ):
        corpus = _corpus()
        session = LiveSession(tmp_path)
        # Round-robin one line per stream per poll: the steady-trickle
        # schedule a real cluster produces.
        remaining = {
            name: blob.splitlines(keepends=True) for name, blob in corpus
        }
        for name, _blob in corpus:
            (tmp_path / name).write_bytes(b"")
        while any(remaining.values()):
            for name in sorted(remaining):
                if remaining[name]:
                    with (tmp_path / name).open("ab") as handle:
                        handle.write(remaining[name].pop(0))
            session.poll()
        assert _drained_dict(session) == golden_batch_dict

    def test_byte_at_a_time_on_one_stream(self, tmp_path):
        # The cruelest schedule, on a corpus small enough to afford it:
        # the RM log arrives one byte per poll.
        blob = (GOLDEN / "hadoop-resourcemanager.log").read_bytes()[:1200]
        (tmp_path / "hadoop-resourcemanager.log").write_bytes(b"")
        session = LiveSession(tmp_path)
        target = tmp_path / "hadoop-resourcemanager.log"
        for i in range(len(blob)):
            with target.open("ab") as handle:
                handle.write(blob[i : i + 1])
            if i % 40 == 0:
                session.poll()
        assert _drained_dict(session) == _batch_dict(tmp_path)


class TestRotationSchedules:
    """Rename rotation mid-session still converges to the batch view."""

    def _write_with_rotation(self, tmp_path, session, name, blob, cuts):
        """Write ``blob`` into ``name`` rotating at each cut offset."""
        live = tmp_path / name
        daemon = name[: -len(".log")]
        start = 0
        pieces = sorted(set(c for c in cuts if 0 < c < len(blob)))
        for piece_end in pieces + [len(blob)]:
            live.write_bytes(blob[start:piece_end])
            session.poll()
            if piece_end < len(blob):
                # Rotate: shift every index up, live becomes .1.
                indices = sorted(
                    (
                        int(p.name.rsplit(".", 1)[1])
                        for p in tmp_path.glob(f"{daemon}.log.*")
                    ),
                    reverse=True,
                )
                for index in indices:
                    os.rename(
                        tmp_path / f"{daemon}.log.{index}",
                        tmp_path / f"{daemon}.log.{index + 1}",
                    )
                os.rename(live, tmp_path / f"{daemon}.log.1")
                session.poll()
            start = piece_end

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_rotating_rm_log_matches_batch_of_final_layout(
        self, data, tmp_path_factory
    ):
        tmp_path = tmp_path_factory.mktemp("rotate")
        corpus = _corpus()
        blob_of = dict(corpus)
        session = LiveSession(tmp_path)
        for name, blob in corpus:
            if name != "hadoop-resourcemanager.log":
                (tmp_path / name).write_bytes(blob)
        session.poll()
        rm = blob_of["hadoop-resourcemanager.log"]
        cuts = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=len(rm) - 1),
                min_size=1,
                max_size=3,
            ),
            label="rotation cuts",
        )
        self._write_with_rotation(
            tmp_path, session, "hadoop-resourcemanager.log", rm, cuts
        )
        live = _drained_dict(session)
        # The batch reference is the *final* directory layout: rotation
        # may have cut a record in half, and both readers must see that
        # half-record the same way.
        assert live == _batch_dict(tmp_path)

    def test_rotation_at_line_boundary_matches_golden(
        self, tmp_path, golden_batch_dict
    ):
        corpus = _corpus()
        session = LiveSession(tmp_path)
        for name, blob in corpus:
            if name != "hadoop-resourcemanager.log":
                (tmp_path / name).write_bytes(blob)
        rm = dict(corpus)["hadoop-resourcemanager.log"]
        lines = rm.splitlines(keepends=True)
        half = b"".join(lines[: len(lines) // 2])
        self._write_with_rotation(
            tmp_path,
            session,
            "hadoop-resourcemanager.log",
            rm,
            [len(half)],
        )
        # Line-aligned rotation: segment concatenation reproduces the
        # original stream exactly, so the *golden* snapshot applies —
        # modulo the ledger, which now counts two segments.
        live = _drained_dict(session)
        batch = _batch_dict(tmp_path)
        assert live == batch
        assert live["applications"] == golden_batch_dict["applications"]


class TestCheckpointResume:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_resumed_session_matches_batch(self, data, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("resume")
        checkpoint = tmp_path / "state.json"
        logdir = tmp_path / "logs"
        logdir.mkdir()
        corpus = _corpus()
        session = LiveSession(logdir, checkpoint_path=checkpoint)
        # First half of every file, cut at an arbitrary offset.
        splits = {}
        for name, blob in corpus:
            split = data.draw(
                st.integers(min_value=0, max_value=len(blob)),
                label=f"split:{name}",
            )
            splits[name] = split
            (logdir / name).write_bytes(blob[:split])
        session.poll()  # also persists the checkpoint
        del session
        # A new process picks up the checkpoint and the files finish.
        resumed = LiveSession.from_checkpoint(checkpoint)
        for name, blob in corpus:
            with (logdir / name).open("ab") as handle:
                handle.write(blob[splits[name] :])
        resumed.poll()
        assert _drained_dict(resumed) == _batch_dict(logdir)

    def test_checkpoint_is_json_and_versioned(self, tmp_path):
        checkpoint = tmp_path / "state.json"
        logdir = tmp_path / "logs"
        logdir.mkdir()
        (logdir / "rm.log").write_bytes(b"2018-01-12 00:00:00,000 INFO A: x\n")
        session = LiveSession(logdir, checkpoint_path=checkpoint)
        session.poll()
        state = json.loads(checkpoint.read_text())
        assert state["version"] == 1
        assert "tailer" in state and "miner" in state

    def test_unsupported_version_is_rejected(self, tmp_path):
        bad = tmp_path / "state.json"
        bad.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError, match="version"):
            LiveSession.from_checkpoint(bad)

    def test_resume_preserves_finality(self, tmp_path, golden_batch_dict):
        checkpoint = tmp_path / "state.json"
        logdir = tmp_path / "logs"
        logdir.mkdir()
        for name, data in _corpus():
            (logdir / name).write_bytes(data)
        session = LiveSession(logdir, checkpoint_path=checkpoint)
        session.poll()
        final_before = {
            app["app_id"]
            for app in session.apps_payload()
            if app["status"] == "final"
        }
        assert final_before  # the golden run finishes its app
        resumed = LiveSession.from_checkpoint(checkpoint)
        assert {
            app["app_id"]
            for app in resumed.apps_payload()
            if app["status"] == "final"
        } == final_before
        assert _drained_dict(resumed) == golden_batch_dict


class TestShardMergeIdentity:
    """The sharded extension of the contract: drained shards' merged
    state rebuilds a report byte-identical to batch over the union of
    their directories, for any assignment of files to shards."""

    def _merged_dict(self, tmp_path, assignment):
        """Drain one session per shard directory; merge; rebuild."""
        from repro.live import merge_state_payloads, report_from_state_payload

        shard_count = max(assignment.values()) + 1
        shard_dirs = []
        for index in range(shard_count):
            shard_dir = tmp_path / f"shard{index}"
            shard_dir.mkdir()
            shard_dirs.append(shard_dir)
        for name, blob in _corpus():
            (shard_dirs[assignment[name]] / name).write_bytes(blob)
        payloads = []
        for shard_dir in shard_dirs:
            session = LiveSession(shard_dir)
            session.poll()
            session.drain()
            payloads.append(session.state_payload())
        merged = merge_state_payloads(payloads)
        report = report_from_state_payload(merged)
        return report.to_dict(include_diagnostics=True)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_round_robin_assignment_matches_batch(
        self, shards, tmp_path, golden_batch_dict
    ):
        assignment = {
            name: index % shards
            for index, (name, _blob) in enumerate(_corpus())
        }
        assert self._merged_dict(tmp_path, assignment) == golden_batch_dict

    def test_adversarial_split_containers_away_from_rm(
        self, tmp_path, golden_batch_dict
    ):
        # The worst cut: every container stream on one shard, the RM/NM
        # streams that carry the same app's allocation events on the
        # other — the per-app analysis must stitch across the merge.
        assignment = {
            name: 0 if name.startswith("container_") else 1
            for name, _blob in _corpus()
        }
        assert self._merged_dict(tmp_path, assignment) == golden_batch_dict

    def test_empty_shard_contributes_nothing(
        self, tmp_path, golden_batch_dict
    ):
        assignment = {name: 0 for name, _blob in _corpus()}
        # Shard 1 exists but tails an empty directory.
        assignment[sorted(assignment)[0]] = 0
        (tmp_path / "shard1").mkdir()
        from repro.live import merge_state_payloads, report_from_state_payload

        shard0 = tmp_path / "shard0"
        shard0.mkdir()
        for name, blob in _corpus():
            (shard0 / name).write_bytes(blob)
        payloads = []
        for shard_dir in (shard0, tmp_path / "shard1"):
            session = LiveSession(shard_dir)
            session.drain()
            payloads.append(session.state_payload())
        merged = merge_state_payloads(payloads)
        report = report_from_state_payload(merged)
        assert report.to_dict(include_diagnostics=True) == golden_batch_dict

    def test_daemon_collision_across_shards_is_loud(self, tmp_path):
        from repro.live import merge_state_payloads

        payloads = []
        for index in range(2):
            shard_dir = tmp_path / f"shard{index}"
            shard_dir.mkdir()
            (shard_dir / "hadoop-resourcemanager.log").write_bytes(
                b"2018-01-12 00:00:00,000 INFO A: x\n"
            )
            session = LiveSession(shard_dir)
            session.drain()
            payloads.append(session.state_payload())
        with pytest.raises(ValueError, match="disjoint"):
            merge_state_payloads(payloads)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_any_assignment_matches_batch(
        self, data, tmp_path_factory, golden_batch_dict
    ):
        tmp_path = tmp_path_factory.mktemp("shardmerge")
        names = [name for name, _blob in _corpus()]
        raw = {
            name: data.draw(
                st.integers(min_value=0, max_value=3), label=f"shard:{name}"
            )
            for name in names
        }
        # Compact shard indices so every shard directory is non-empty.
        used = sorted(set(raw.values()))
        remap = {shard: index for index, shard in enumerate(used)}
        assignment = {name: remap[raw[name]] for name in names}
        assert self._merged_dict(tmp_path, assignment) == golden_batch_dict


class TestProvisionalStatus:
    def test_app_is_provisional_until_terminal_transition(self, tmp_path):
        rm_blob = (GOLDEN / "hadoop-resourcemanager.log").read_bytes()
        lines = rm_blob.splitlines(keepends=True)
        finished_at = next(
            i for i, line in enumerate(lines) if b"to FINISHED" in line
        )
        target = tmp_path / "hadoop-resourcemanager.log"
        target.write_bytes(b"".join(lines[:finished_at]))
        session = LiveSession(tmp_path)
        session.poll()
        (app,) = session.apps_payload()
        assert app["status"] == "provisional"
        with target.open("ab") as handle:
            handle.write(b"".join(lines[finished_at:]))
        session.poll()
        (app,) = session.apps_payload()
        assert app["status"] == "final"
