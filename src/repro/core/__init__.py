"""SDchecker — the paper's contribution.

An *offline, non-intrusive* log-mining tool (section III): it consumes
rendered log4j text lines from the cluster scheduler (ResourceManager,
NodeManagers) and the application (Spark driver and executor logs),
extracts the Table I state-transition messages with regular
expressions, binds them to global IDs (application and container IDs),
builds a per-application scheduling graph, and decomposes the total
scheduling delay into the components analyzed in section IV.

SDchecker deliberately knows nothing about the simulator: its only
input is text.
"""

from repro.core.checker import SDChecker
from repro.core.diagnostics import AppDiagnostics, MiningDiagnostics
from repro.core.events import EventKind, SchedulingEvent
from repro.core.decompose import ApplicationDelays, ContainerDelays, decompose
from repro.core.graph import SchedulingGraph
from repro.core.grouping import ApplicationTrace, ContainerTrace, group_events
from repro.core.parser import LogMiner
from repro.core.bugcheck import BugFinding, find_unused_containers
from repro.core.report import AnalysisReport
from repro.core.stats import DelaySample
from repro.core.timeline import render_timeline

__all__ = [
    "AnalysisReport",
    "AppDiagnostics",
    "ApplicationDelays",
    "ApplicationTrace",
    "BugFinding",
    "MiningDiagnostics",
    "ContainerDelays",
    "ContainerTrace",
    "DelaySample",
    "EventKind",
    "LogMiner",
    "SDChecker",
    "SchedulingEvent",
    "SchedulingGraph",
    "decompose",
    "find_unused_containers",
    "group_events",
    "render_timeline",
]
