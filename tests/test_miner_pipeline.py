"""Mining-pipeline tests: streaming readers, parallel equivalence, and
the O(1) first-event index.

The equivalence corpus is simulator-generated (two TPC-H query apps on
a small testbed), so serial and parallel mining are compared on exactly
the log shapes the rest of the suite analyzes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import messages as msg
from repro.core.events import EventKind, SchedulingEvent
from repro.core.grouping import ApplicationTrace, ContainerTrace
from repro.core.parser import LogMiner
from repro.logsys.store import LogStore, iter_file_lines, iter_file_records
from repro.params import SimulationParams
from repro.testbed import Testbed
from tests.conftest import make_query_app

APP = "application_1515715200000_0001"
CONTAINER = "container_1515715200000_0001_01_000002"


@pytest.fixture(scope="module")
def corpus_store() -> LogStore:
    """Logs of a two-application simulated run."""
    bed = Testbed(params=SimulationParams(num_nodes=5), seed=29)
    for i in range(2):
        bed.submit(make_query_app(f"equiv-q{i}", query=i + 1))
    bed.run_until_all_finished(limit=5000)
    return bed.log_store


@pytest.fixture(scope="module")
def corpus_dir(corpus_store, tmp_path_factory):
    directory = tmp_path_factory.mktemp("equiv-logs")
    corpus_store.dump(directory)
    return directory


class TestParallelEquivalence:
    """mine() == mine_parallel(jobs=1) == mine_parallel(jobs=4)."""

    def test_store_source_event_for_event(self, corpus_store):
        miner = LogMiner()
        serial = miner.mine(corpus_store)
        assert serial, "corpus mined no events"
        assert miner.mine_parallel(corpus_store, jobs=1) == serial
        assert miner.mine_parallel(corpus_store, jobs=4) == serial

    def test_directory_source_event_for_event(self, corpus_dir):
        miner = LogMiner()
        serial = miner.mine(corpus_dir)
        assert serial, "corpus mined no events"
        assert miner.mine_parallel(corpus_dir, jobs=1) == serial
        assert miner.mine_parallel(corpus_dir, jobs=4) == serial

    def test_directory_agrees_with_store(self, corpus_store, corpus_dir):
        # Dumping to disk and re-mining must not change the events
        # (modulo the millisecond quantization both sides share).
        from_store = LogMiner().mine(corpus_store)
        from_dir = LogMiner().mine(corpus_dir)
        assert [
            (e.kind, e.app_id, e.container_id, e.daemon) for e in from_store
        ] == [(e.kind, e.app_id, e.container_id, e.daemon) for e in from_dir]

    def test_jobs_do_not_change_downstream_analysis(self, corpus_dir):
        from repro.core.checker import SDChecker

        serial = SDChecker(jobs=1).analyze(corpus_dir)
        parallel = SDChecker(jobs=4).analyze(corpus_dir)
        assert [a.app_id for a in serial.apps] == [a.app_id for a in parallel.apps]
        assert [a.total_delay for a in serial.apps] == [
            a.total_delay for a in parallel.apps
        ]


class TestStreamingReaders:
    def test_iter_records_is_lazy_and_complete(self, corpus_store):
        daemon = corpus_store.daemons[0]
        it = corpus_store.iter_records(daemon)
        assert iter(it) is it  # a generator, not a materialized copy
        assert tuple(it) == corpus_store.records(daemon)

    def test_iter_lines_matches_render(self, corpus_store):
        daemon = corpus_store.daemons[0]
        assert list(corpus_store.iter_lines(daemon)) == corpus_store.render(daemon)

    def test_chunked_file_reader_matches_read_text(self, tmp_path):
        lines = [f"2018-01-12 00:00:0{i},000 INFO Cls: line {i}" for i in range(8)]
        lines.insert(3, "java.io.IOException: noise")  # unparseable, kept by reader
        path = tmp_path / "d.log"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        # Tiny chunk size forces many partial-line boundaries.
        assert list(iter_file_lines(path, chunk_size=7)) == lines
        parsed = list(iter_file_records(path, chunk_size=7))
        assert [r.message for r in parsed] == [f"line {i}" for i in range(8)]

    def test_file_without_trailing_newline(self, tmp_path):
        path = tmp_path / "d.log"
        path.write_text("2018-01-12 00:00:01,000 INFO C: only", encoding="utf-8")
        assert [r.message for r in iter_file_records(path)] == ["only"]


class TestSinglePassDispatch:
    """The one-regex container classifier agrees with the old cascade."""

    def _cascade(self, message):
        # The pre-pipeline classification order, verbatim.
        if msg.classify_first_task_line(message):
            return EventKind.FIRST_TASK, None
        if msg.classify_mr_task_done_line(message):
            return EventKind.MR_TASK_DONE, None
        return msg.classify_driver_line(message)

    LINES = [
        f"Registered ApplicationMaster for {APP}",
        f"SDCHECKER START_ALLO Will request 4 executor container(s) for {APP}",
        f"SDCHECKER END_ALLO All requested containers allocated for {APP} (4 granted)",
        "Got assigned task 0",
        "Got assigned task 17",
        "Task attempt_1515715200000_0001_m_000003_0 is done",
        "Task attempt_1515715200000_0001_r_000000_1 is done",
        # Near misses — prefix matches, body does not.
        "Registered ApplicationMaster for nobody",
        "SDCHECKER START_ALLO no app id here",
        "Got assigned task x",
        "Task attempt_12_b_000000_0 is done",
        # Plain noise.
        "Starting executor heartbeat thread",
        "Preparing Local resources",
        "",
    ]

    @pytest.mark.parametrize("line", LINES)
    def test_agrees_on_fixtures(self, line):
        assert msg.classify_container_line(line) == self._cascade(line)

    @settings(max_examples=200, deadline=None)
    @given(st.text(st.characters(codec="utf-8", exclude_characters="\n\r"), max_size=80))
    def test_agrees_on_arbitrary_text(self, line):
        assert msg.classify_container_line(line) == self._cascade(line)


def _scan_first(events, kind):
    """The pre-index reference semantics: full scan, strict-< tie-break."""
    best = None
    for event in events:
        if event.kind is kind and (best is None or event.timestamp < best.timestamp):
            best = event
    return best


def _container_event(kind: EventKind, timestamp: float, detail: str = "") -> SchedulingEvent:
    return SchedulingEvent(
        kind, timestamp, APP, CONTAINER, CONTAINER, source_class="X", detail=detail
    )


class TestFirstEventIndex:
    """The O(1) index reproduces the old full-scan semantics exactly."""

    KINDS = [
        EventKind.CONTAINER_ALLOCATED,
        EventKind.CONTAINER_ACQUIRED,
        EventKind.INSTANCE_FIRST_LOG,
        EventKind.FIRST_TASK,
    ]

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(range(4)), st.integers(0, 5)),
            max_size=24,
        )
    )
    def test_container_trace_matches_scan(self, shape):
        # Duplicate kinds and timestamp ties are the interesting cases:
        # the index must return the same *object* the old scan found.
        trace = ContainerTrace(CONTAINER)
        for kind_idx, ts in shape:
            trace.add(_container_event(self.KINDS[kind_idx], float(ts)))
        for kind in self.KINDS:
            assert trace.first(kind) is _scan_first(trace.events, kind)
            expected = _scan_first(trace.events, kind)
            assert trace.time_of(kind) == (
                None if expected is None else expected.timestamp
            )

    def test_index_survives_sort(self):
        trace = ContainerTrace(CONTAINER)
        for ts in (5.0, 1.0, 3.0, 1.0):
            trace.add(_container_event(EventKind.CONTAINER_ALLOCATED, ts))
        winner = trace.first(EventKind.CONTAINER_ALLOCATED)
        trace.sort()
        assert trace.first(EventKind.CONTAINER_ALLOCATED) is winner
        assert winner.timestamp == 1.0

    def test_prebuilt_event_list_is_indexed(self):
        events = [
            _container_event(EventKind.CONTAINER_ALLOCATED, 2.0),
            _container_event(EventKind.CONTAINER_ALLOCATED, 1.0),
        ]
        trace = ContainerTrace(CONTAINER, events=events)
        assert trace.time_of(EventKind.CONTAINER_ALLOCATED) == 1.0

    def test_application_trace_matches_scan(self):
        trace = ApplicationTrace(APP)
        stamps = [(EventKind.APP_SUBMITTED, 4.0), (EventKind.APP_SUBMITTED, 2.0),
                  (EventKind.APP_ACCEPTED, 2.0), (EventKind.APP_ACCEPTED, 2.0)]
        for kind, ts in stamps:
            trace.add(SchedulingEvent(kind, ts, APP, None, "rm"))
        for kind in (EventKind.APP_SUBMITTED, EventKind.APP_ACCEPTED,
                     EventKind.APP_FINISHED):
            assert trace.first(kind) is _scan_first(trace.events, kind)


class TestFormatDriftTolerance:
    """Regression: a drifted timestamp is skipped and counted, not fatal.

    A log4j layout change mid-fleet produces lines that still *look*
    like records but whose timestamp cannot be interpreted; the miner
    used to propagate the ``ValueError`` from ``parse_timestamp``.
    """

    RM_LINES = [
        "2018-01-12 00:00:01,000 INFO x.RMAppImpl: application_1515715200000_0001 State change from NEW to SUBMITTED on event = START",
        # month-drifted: shaped like a record, uninterpretable timestamp
        "2018-02-12 00:00:02,000 INFO x.RMAppImpl: application_1515715200000_0001 State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED",
        "2018-01-12 00:00:03,000 INFO x.RMAppImpl: application_1515715200000_0001 State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED",
    ]

    def test_drifted_line_is_skipped_and_counted(self, tmp_path):
        (tmp_path / "hadoop-resourcemanager.log").write_text(
            "\n".join(self.RM_LINES) + "\n"
        )
        events, diagnostics = LogMiner().mine_with_diagnostics(tmp_path)
        # The drifted ACCEPTED line is gone; its neighbours survive.
        kinds = [e.kind for e in events]
        assert kinds == [EventKind.APP_SUBMITTED, EventKind.APP_ATTEMPT_REGISTERED]
        stream = diagnostics.streams["hadoop-resourcemanager"]
        assert stream.dropped_bad_timestamp == 1
        assert stream.records_parsed == 2
        assert diagnostics.degraded()

    def test_drifted_line_from_store_lines(self):
        store = LogStore.from_lines(
            ("hadoop-resourcemanager", line) for line in self.RM_LINES
        )
        events, diagnostics = LogMiner().mine_with_diagnostics(store)
        assert len(events) == 2
        assert (
            diagnostics.streams["hadoop-resourcemanager"].dropped_bad_timestamp == 1
        )
