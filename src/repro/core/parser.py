"""The log miner: text lines in, scheduling events out.

Per section III-B, SDchecker runs after the applications complete,
collects the daemon logs, and parses them with regular expressions,
keeping only the states critical for delay analysis.  Container log
streams (one per launched container, as YARN's log aggregation lays
them out) additionally yield the FIRST_LOG and FIRST_TASK events, which
are positional: *the first line* of the stream, and *the first* "Got
assigned task" line.

The pipeline is streaming and embarrassingly parallel:

* streams are consumed as iterators (:meth:`LogStore.iter_records` in
  memory, :func:`iter_file_records` chunked off disk), so corpus size
  never bounds memory;
* each line pays one literal prefix test and at most one precompiled
  alternation match (:func:`repro.core.messages.classify_container_line`
  and the prefix gates) instead of a cascade of regex searches;
* :meth:`LogMiner.mine_parallel` fans whole daemon streams out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` and concatenates the
  per-daemon results in sorted-daemon order — the same order serial
  mining uses — so its output is byte-identical to :meth:`LogMiner.mine`.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.core import messages as msg
from repro.core.events import EventKind, SchedulingEvent
from repro.logsys.record import LogRecord
from repro.logsys.store import LogStore, directory_glob, iter_file_records

__all__ = ["LogMiner"]

_CONTAINER_DAEMON_RE = msg.CONTAINER_ID_RE

#: A unit of parallel work: the daemon name plus either its in-memory
#: records or the path of its log file (workers then stream the file
#: themselves, so record lists never cross the process boundary twice).
_StreamTask = Tuple[str, Optional[Tuple[LogRecord, ...]], Optional[str]]


class LogMiner:
    """Extracts Table I events from a :class:`LogStore` or a directory."""

    def mine(self, source: Union[LogStore, str, Path]) -> List[SchedulingEvent]:
        """All scheduling events, in per-stream log order."""
        events: List[SchedulingEvent] = []
        for daemon, records in self._streams_of(source):
            events.extend(self._mine_stream(daemon, records))
        return events

    def mine_parallel(
        self, source: Union[LogStore, str, Path], jobs: int = 2
    ) -> List[SchedulingEvent]:
        """:meth:`mine`, fanned out over ``jobs`` worker processes.

        Daemon streams are independent, so each worker mines a subset
        and the results are concatenated in sorted-daemon order — the
        exact order :meth:`mine` emits — making the parallel output
        byte-identical to the serial one.  ``jobs <= 1`` runs inline.
        """
        tasks = self._stream_tasks(source)
        if jobs <= 1 or len(tasks) <= 1:
            results = [_mine_stream_task(task) for task in tasks]
        else:
            workers = min(jobs, len(tasks))
            chunksize = max(1, len(tasks) // (4 * workers))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # Executor.map preserves input order: the merge is
                # deterministic no matter which worker finishes first.
                results = list(pool.map(_mine_stream_task, tasks, chunksize=chunksize))
        return [event for stream_events in results for event in stream_events]

    # -- stream enumeration ------------------------------------------------
    def _streams_of(
        self, source: Union[LogStore, str, Path]
    ) -> Iterator[Tuple[str, Iterable[LogRecord]]]:
        """(daemon, lazily-iterable records) in sorted daemon order."""
        if isinstance(source, LogStore):
            for daemon in source.daemons:
                yield daemon, source.iter_records(daemon)
        else:
            for path in sorted(directory_glob(source), key=lambda p: p.stem):
                yield path.stem, iter_file_records(path)

    def _stream_tasks(self, source: Union[LogStore, str, Path]) -> List[_StreamTask]:
        """Picklable per-daemon work items, in sorted daemon order."""
        if isinstance(source, LogStore):
            return [(d, source.records(d), None) for d in source.daemons]
        return [
            (path.stem, None, str(path))
            for path in sorted(directory_glob(source), key=lambda p: p.stem)
        ]

    def _mine_stream(
        self, daemon: str, records: Iterable[LogRecord]
    ) -> List[SchedulingEvent]:
        """Dispatch one stream to its miner by daemon-name shape."""
        if _CONTAINER_DAEMON_RE.match(daemon):
            return self._mine_container_stream(daemon, records)
        if daemon.startswith("hadoop-resourcemanager"):
            return self._mine_rm_stream(daemon, records)
        if daemon.startswith("hadoop-nodemanager"):
            return self._mine_nm_stream(daemon, records)
        # Unknown streams are ignored — a miner must tolerate noise.
        return []

    # -- per-stream miners ------------------------------------------------------
    def _mine_rm_stream(
        self, daemon: str, records: Iterable[LogRecord]
    ) -> List[SchedulingEvent]:
        events: List[SchedulingEvent] = []
        for record in records:
            message = record.message
            if message.startswith(msg.RM_APP_LINE_PREFIX) and record.cls.endswith(
                "RMAppImpl"
            ):
                hit = msg.classify_rm_app_line(message)
                if hit is not None:
                    kind, app_id = hit
                    events.append(
                        SchedulingEvent(kind, record.timestamp, app_id, None, daemon)
                    )
            elif message.startswith(
                msg.RM_CONTAINER_LINE_PREFIX
            ) and record.cls.endswith("RMContainerImpl"):
                hit = msg.classify_rm_container_line(message)
                if hit is not None:
                    kind, container_id = hit
                    events.append(
                        SchedulingEvent(
                            kind,
                            record.timestamp,
                            msg.app_id_of_container(container_id),
                            container_id,
                            daemon,
                        )
                    )
        return events

    def _mine_nm_stream(
        self, daemon: str, records: Iterable[LogRecord]
    ) -> List[SchedulingEvent]:
        events: List[SchedulingEvent] = []
        for record in records:
            if not record.message.startswith(msg.NM_CONTAINER_LINE_PREFIX):
                continue
            if not record.cls.endswith("ContainerImpl"):
                continue
            hit = msg.classify_nm_container_line(record.message)
            if hit is None:
                continue
            kind, container_id = hit
            events.append(
                SchedulingEvent(
                    kind,
                    record.timestamp,
                    msg.app_id_of_container(container_id),
                    container_id,
                    daemon,
                )
            )
        return events

    def _mine_container_stream(
        self, daemon: str, records: Iterable[LogRecord]
    ) -> List[SchedulingEvent]:
        """A container's own log: FIRST_LOG, driver markers, FIRST_TASK.

        The NM cannot tell when the launched process is actually up (it
        blocks on the launch script — section III-B), so the stream's
        first line marks the successful launch (messages 9/13).
        """
        container_id = daemon
        app_id = msg.app_id_of_container(container_id)
        events: List[SchedulingEvent] = []
        stream = iter(records)
        first = next(stream, None)
        if first is None:
            return events
        events.append(
            SchedulingEvent(
                EventKind.INSTANCE_FIRST_LOG,
                first.timestamp,
                app_id,
                container_id,
                daemon,
                source_class=first.cls,
                detail=first.message,
            )
        )
        saw_task = False
        saw_mr_done = False
        for record in itertools.chain((first,), stream):
            hit = msg.classify_container_line(record.message)
            if hit is None:
                continue
            kind, line_app_id = hit
            if kind is EventKind.FIRST_TASK:
                if saw_task:
                    continue
                saw_task = True
            elif kind is EventKind.MR_TASK_DONE:
                if saw_mr_done:
                    continue
                saw_mr_done = True
            events.append(
                SchedulingEvent(
                    kind,
                    record.timestamp,
                    app_id if line_app_id is None else line_app_id,
                    container_id,
                    daemon,
                    source_class=record.cls,
                )
            )
        return events


def _mine_stream_task(task: _StreamTask) -> List[SchedulingEvent]:
    """Worker entry point: mine one daemon stream (module-level for pickling)."""
    daemon, records, path = task
    if records is None:
        records = iter_file_records(Path(path))
    return LogMiner()._mine_stream(daemon, records)
