"""Tests for the live metrics registry and its Prometheus rendering."""

from __future__ import annotations

import pytest

from repro.live.metrics import (
    DELAY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    build_live_registry,
    merge_metric_states,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x_total", "h")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_decrease_is_rejected(self):
        with pytest.raises(ValueError):
            Counter("x_total", "h").inc(-1)

    def test_render_has_help_type_and_sample(self):
        c = Counter("x_total", "things counted")
        c.inc(3)
        assert c.render() == [
            "# HELP x_total things counted",
            "# TYPE x_total counter",
            "x_total 3",
        ]


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x", "h")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5

    def test_render_type_is_gauge(self):
        assert "# TYPE x gauge" in Gauge("x", "h").render()


class TestHistogram:
    def test_buckets_are_cumulative_and_end_in_inf(self):
        h = Histogram("d", "h", buckets=[1.0, 5.0])
        for value in (0.5, 0.7, 3.0, 100.0):
            h.observe(value)
        lines = h.render()
        assert 'd_bucket{le="1"} 2' in lines
        assert 'd_bucket{le="5"} 3' in lines
        assert 'd_bucket{le="+Inf"} 4' in lines
        assert "d_count 4" in lines
        assert any(line.startswith("d_sum ") for line in lines)

    def test_sum_totals_observations(self):
        h = Histogram("d", "h", buckets=[1.0])
        h.observe(0.25)
        h.observe(0.25)
        assert "d_sum 0.5" in h.render()

    def test_labeled_children_render_sorted(self):
        h = Histogram("d", "h", buckets=[1.0], label_names=("component",))
        h.labels(component="launching").observe(0.5)
        h.labels(component="allocation").observe(0.5)
        lines = [l for l in h.render() if "_count" in l]
        assert lines == [
            'd_count{component="allocation"} 1',
            'd_count{component="launching"} 1',
        ]

    def test_wrong_labels_are_rejected(self):
        h = Histogram("d", "h", label_names=("component",))
        with pytest.raises(ValueError):
            h.labels(wrong="x")
        with pytest.raises(ValueError):
            h.observe(1.0)  # labels required

    def test_boundary_value_lands_in_its_bucket(self):
        h = Histogram("d", "h", buckets=[1.0, 5.0])
        h.observe(1.0)  # le is inclusive
        assert 'd_bucket{le="1"} 1' in h.render()

    def test_empty_buckets_are_rejected(self):
        with pytest.raises(ValueError):
            Histogram("d", "h", buckets=[])


class TestRegistry:
    def test_creation_requires_help_text(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.counter("unknown_total")
        c = registry.counter("known_total", "h")
        assert registry.counter("known_total") is c

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x", "h")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_render_is_sorted_and_newline_terminated(self):
        registry = MetricsRegistry()
        registry.counter("z_total", "h").inc()
        registry.gauge("a_value", "h").set(1)
        text = registry.render()
        assert text.endswith("\n")
        assert text.index("a_value") < text.index("z_total")

    def test_render_is_deterministic(self):
        registry = build_live_registry()
        registry.counter("repro_live_ingest_lines_total").inc(7)
        registry.histogram("repro_live_component_delay_seconds").labels(
            component="allocation"
        ).observe(0.2)
        assert registry.render() == registry.render()


class TestLiveRegistry:
    def test_expected_families_exist(self):
        registry = build_live_registry()
        for name in (
            "repro_live_ingest_lines_total",
            "repro_live_ingest_records_total",
            "repro_live_dropped_lines_total",
            "repro_live_events_total",
            "repro_live_polls_total",
            "repro_live_queries_total",
            "repro_live_slow_consumer_disconnects_total",
        ):
            assert registry.counter(name).value == 0
        for name in (
            "repro_live_tail_lag_bytes",
            "repro_live_streams",
            "repro_live_apps",
            "repro_live_apps_final",
        ):
            assert registry.gauge(name).value == 0
        histogram = registry.histogram("repro_live_component_delay_seconds")
        assert histogram.bounds == tuple(DELAY_BUCKETS)
        assert histogram.label_names == ("component",)

    def test_delay_buckets_cover_the_low_latency_regime(self):
        # Dense sub-second resolution (the paper's regime) plus a tail.
        assert sum(1 for b in DELAY_BUCKETS if b < 1.0) >= 6
        assert DELAY_BUCKETS[-1] >= 60.0
        assert list(DELAY_BUCKETS) == sorted(DELAY_BUCKETS)


class TestCrossShardAggregation:
    """merge_metric_states: what the router's metrics endpoint serves."""

    def _shard(self, lines, lag, observations=()):
        registry = build_live_registry()
        registry.counter("repro_live_ingest_lines_total").inc(lines)
        registry.gauge("repro_live_tail_lag_bytes").set(lag)
        histogram = registry.histogram("repro_live_component_delay_seconds")
        for value in observations:
            histogram.labels(component="allocation").observe(value)
        return registry

    def test_counters_and_gauges_sum(self):
        merged = merge_metric_states(
            [self._shard(100, 7).to_state(), self._shard(40, 3).to_state()]
        )
        assert merged.counter("repro_live_ingest_lines_total").value == 140
        assert merged.gauge("repro_live_tail_lag_bytes").value == 10

    def test_histogram_buckets_add_per_bound(self):
        merged = merge_metric_states(
            [
                self._shard(0, 0, observations=[0.05, 0.2]).to_state(),
                self._shard(0, 0, observations=[0.05]).to_state(),
            ]
        )
        text = merged.render()
        assert (
            'repro_live_component_delay_seconds_count{component="allocation"} 3'
            in text
        )

    def test_merge_is_commutative(self):
        a = self._shard(10, 1, observations=[0.1]).to_state()
        b = self._shard(20, 2, observations=[0.4, 2.0]).to_state()
        assert (
            merge_metric_states([a, b]).render()
            == merge_metric_states([b, a]).render()
        )

    def test_single_state_round_trips(self):
        registry = self._shard(33, 5, observations=[0.25])
        assert merge_metric_states([registry.to_state()]).render() == (
            registry.render()
        )

    def test_kind_mismatch_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "h").inc()
        other = MetricsRegistry()
        other.gauge("x_total", "h").set(1)
        with pytest.raises(TypeError):
            merge_metric_states([registry.to_state(), other.to_state()])

    def test_bound_mismatch_is_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", "h", buckets=(1.0, 2.0))
        other = MetricsRegistry()
        other.histogram("h_seconds", "h", buckets=(1.0, 5.0))
        with pytest.raises(ValueError):
            merge_metric_states([registry.to_state(), other.to_state()])


class TestResumedLagGauge:
    def test_tail_lag_gauge_restored_from_checkpoint(self, tmp_path):
        from repro.live import LiveSession

        logdir = tmp_path / "logs"
        logdir.mkdir()
        (logdir / "rm.log").write_bytes(
            b"2018-01-12 00:00:00,000 INFO A: x\nheld-back partial tail"
        )
        checkpoint = tmp_path / "state.json"
        session = LiveSession(logdir, checkpoint_path=checkpoint)
        session.poll()
        lag = session.tail_lag_bytes
        assert lag == len(b"held-back partial tail")
        resumed = LiveSession.from_checkpoint(checkpoint)
        # Before the first poll of the resumed process, the gauge must
        # already report the real backlog, not 0.
        assert (
            resumed.metrics.gauge("repro_live_tail_lag_bytes").value == lag
        )
