"""Simulated MapReduce on YARN.

MapReduce serves three roles in the paper's evaluation: the cluster
load generator for the acquisition-delay and throughput experiments
(Fig 7c, Table II — wordcount with scaled inputs), the IO-interference
generator (Fig 12 — dfsIO writers), and two more instance types for the
launching-delay comparison (Fig 9a — mrm/mrsm/mrsr).
"""

from repro.mapreduce.application import MapReduceApplication

__all__ = ["MapReduceApplication"]
