"""Figure 5: impact of the job (input) size on the scheduling delay.

Paper sweep: TPC-H dataset from 20 MB to 200 GB.  Findings to
reproduce:

* normalized total delay *decreases* with input size (longer runtimes),
  but tiny 20 MB jobs spend >65% (80% worst) of runtime on scheduling;
* absolute total delay *increases* with input size — 200 GB p95 is
  60.4 s, ~4x the 20 MB p95 — driven by cluster-wide IO
  self-interference (executor localization competes with task reads),
  with `out` deteriorating ~1.5x and `in` ~5.7x vs 20 MB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.stats import DelaySample
from repro.experiments.common import resolve_scale
from repro.experiments.harness import TraceScenario
from repro.params import GB, MB

__all__ = ["Fig5Result", "run_fig5", "FIG5_SIZES"]

#: The sweep points (paper: 20 MB .. 200 GB).
FIG5_SIZES = (20 * MB, 2 * GB, 20 * GB, 200 * GB)


def _label(size: float) -> str:
    return f"{size / GB:.2f}GB" if size < GB else f"{size / GB:.0f}GB"


@dataclass
class Fig5Result:
    #: input size label -> metric -> sample.
    series: Dict[str, Dict[str, DelaySample]]

    def total(self, size_label: str) -> DelaySample:
        return self.series[size_label]["total"]

    def ratio_p95_largest_vs_smallest(self) -> float:
        labels = list(self.series)
        return self.series[labels[-1]]["total"].p95 / self.series[labels[0]]["total"].p95

    def rows(self) -> List[str]:
        lines = ["Figure 5 — scheduling delay vs input size"]
        for label, metrics in self.series.items():
            t = metrics["total"]
            n = metrics["normalized"]
            lines.append(
                f"  {label:>8s}: total med={t.p50:6.2f}s p95={t.p95:6.2f}s | "
                f"total/job mean={n.mean():5.1%} worst={n.p95:5.1%} | "
                f"in p95={metrics['in'].p95:6.2f}s out p95={metrics['out'].p95:6.2f}s"
            )
        lines.append(
            f"  p95 total, largest vs smallest input: "
            f"{self.ratio_p95_largest_vs_smallest():.1f}x"
        )
        return lines


def run_fig5(scale: str = "small", seed: int = 0) -> Fig5Result:
    """Sweep the dataset size; one trace run per point."""
    n_queries = resolve_scale(scale, small=40, paper=200)
    series: Dict[str, Dict[str, DelaySample]] = {}
    for size in FIG5_SIZES:
        scenario = TraceScenario(
            n_queries=n_queries,
            dataset_bytes=size,
            seed=seed,
            # Larger inputs mean longer jobs; keep the offered load
            # comparable by spacing arrivals with the expected runtime.
            mean_interarrival_s=3.0 if size <= 2 * GB else 3.0 * (size / (2 * GB)) ** 0.5,
        )
        report = scenario.run().report
        series[_label(size)] = {
            "total": report.sample("total_delay"),
            "in": report.sample("in_app_delay"),
            "out": report.sample("out_app_delay"),
            "job": report.sample("job_runtime"),
            "normalized": report.normalized_total(),
        }
    return Fig5Result(series=series)
