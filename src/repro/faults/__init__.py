"""Log-corruption fault injection for certifying the mining pipeline.

Every log SDchecker had ever seen before this package came from our own
simulator: well-formed, complete, UTF-8, one daemon per file.  Real
cluster logs — the paper's actual input — are truncated mid-line by
crashes, split across files by rotation, duplicated by at-least-once
shippers, interleaved with multi-line stack traces, and drift formats
when operators touch log4j configs.  ``repro.faults`` is a
deterministic, seeded catalog of exactly those corruptions, applied to
a dumped log directory, so every release of the miner can be certified
against imperfect traces instead of just clean ones.

Two corruption classes, two guarantees:

* **identity-preserving** corruptions (line duplication, non-Table-I
  noise, rotation splits) must leave the analysis report
  *byte-identical* to the clean corpus — the miner's first-occurrence
  semantics, noise rejection, and rotation merging absorb them;
* **degrading** corruptions (truncation, reordering, invalid bytes,
  deleted files, format drift) may lose information, but
  :meth:`repro.core.checker.SDChecker.analyze` must never raise: every
  loss is skipped, counted, and named in the report's
  :class:`~repro.core.diagnostics.MiningDiagnostics`.

``python -m repro.faults sweep <logdir>`` runs the certification sweep
(``make fuzz-smoke`` wires it into CI).
"""

from repro.faults.catalog import (
    CATALOG,
    Corruption,
    CorruptionReceipt,
    degradation_names,
    identity_names,
    make_corruption,
)
from repro.faults.inject import FaultInjector, corrupt_copy

__all__ = [
    "CATALOG",
    "Corruption",
    "CorruptionReceipt",
    "FaultInjector",
    "corrupt_copy",
    "degradation_names",
    "identity_names",
    "make_corruption",
]
