"""Shared fixtures.

Most tests run against a deliberately small testbed (4-6 nodes) so the
whole suite stays fast; the session-scoped ``single_app_run`` fixture
performs one full Spark-on-YARN simulation that the SDchecker-side
tests all analyze.
"""

from __future__ import annotations

import pytest

from repro.core.checker import SDChecker
from repro.params import GB, SimulationParams
from repro.simul.engine import Simulator
from repro.spark.application import SparkApplication
from repro.testbed import Testbed
from repro.workloads.tpch import TPCHDataset, TPCHQueryWorkload


@pytest.fixture(scope="session", autouse=True)
def _repro_sanitizer():
    """Arm the runtime sanitizer for the whole suite under REPRO_SANITIZE=1.

    The loop-stall monitor and the checked executor boundary accumulate
    findings as tests run; any violation fails the session at teardown
    with the offending callbacks/workers named.
    """
    from repro.analysis import sanitizer

    if not sanitizer.enabled():
        yield
        return
    sanitizer.reset()
    sanitizer.install_loop_monitor()
    yield
    sanitizer.uninstall_loop_monitor()
    violations = sanitizer.report()
    sanitizer.reset()
    assert not violations, "sanitizer violations:\n" + "\n".join(
        f.render() for f in violations
    )


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def small_params() -> SimulationParams:
    return SimulationParams(num_nodes=5)


@pytest.fixture
def bed(small_params) -> Testbed:
    return Testbed(params=small_params, seed=7)


def make_query_app(name: str = "q1", query: int = 1, **kwargs) -> SparkApplication:
    """A fresh TPC-H query app (own dataset, so no cross-test sharing)."""
    dataset = TPCHDataset(2 * GB, name=f"ds-{name}-{id(kwargs) % 10_000}")
    return SparkApplication(
        name, TPCHQueryWorkload(dataset, query=query), num_executors=4, **kwargs
    )


@pytest.fixture(scope="session")
def single_app_run():
    """(testbed, app, report) of one completed TPC-H query job."""
    bed = Testbed(params=SimulationParams(num_nodes=5), seed=11)
    app = make_query_app("session-q1")
    bed.submit(app)
    bed.run_until_all_finished(limit=5000)
    report = SDChecker().analyze(bed.log_store)
    return bed, app, report


@pytest.fixture(scope="session")
def opportunistic_run():
    """A completed run in distributed/opportunistic mode (with the bug)."""
    bed = Testbed(
        params=SimulationParams(num_nodes=5), seed=13, distributed_scheduling=True
    )
    app = make_query_app("session-opp", opportunistic=True)
    bed.submit(app)
    bed.run_until_all_finished(limit=5000)
    report = SDChecker().analyze(bed.log_store)
    return bed, app, report
