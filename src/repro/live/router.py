"""The merging front end of a sharded live deployment.

A :class:`RouterServer` speaks the same JSON-lines protocol as a
single-shard :class:`~repro.live.server.LiveServer` — clients cannot
tell the difference — but behind it sit N worker servers, each tailing
its own slice of the log directories.  Every query fans out to all
shards concurrently and the answers merge deterministically:

* ``apps`` / ``decomposition`` — answered from the *merged* miner
  state, not by concatenating per-shard rows: an application whose
  streams span shards (its containers on one worker, the RM daemon on
  another) exists as a partial row on each, and only the union of the
  underlying accumulator states reproduces the single-session answer;
* ``diagnostics`` — also from the merged state: a shard holding an
  app's containers but not its ResourceManager stream would count its
  own events as orphans, so summing per-shard ledgers reports a
  degraded deployment that the union view knows is healthy.  Only the
  tailer-level counters (lag, resyncs, rotations) sum, because tailing
  really is per-shard work;
* ``metrics`` / ``metrics_state`` — the shards' registry states merge
  through :func:`~repro.live.metrics.merge_metric_states` together
  with the router's own registry (which holds the front-end request
  counters), then render once;
* ``state`` / ``drain`` — the shards' miner states union into a
  payload of the *same shape* a single session produces, so a router
  composes: it can itself stand in for a shard.

The merge functions are module-level and pure so tests (and the
byte-identity contract) can exercise them without sockets: a drained
deployment's :func:`report_from_state_payload` result is byte-identical
to batch ``SDChecker`` over the union of the shards' directories, for
any shard assignment — the sharded extension of the replay-equivalence
contract.  The identity holds because the merged payload is rebuilt
into one :class:`~repro.live.incremental.LiveMiner` and pushed through
:func:`~repro.core.checker.analyze_events`, the same tail batch runs;
merging is a union of disjoint per-stream states, not arithmetic on
derived numbers.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.checker import analyze_events
from repro.core.report import AnalysisReport
from repro.live.incremental import LiveMiner
from repro.live.metrics import (
    MetricsRegistry,
    build_live_registry,
    merge_metric_states,
)
from repro.live.server import DEFAULT_QUEUE_DEPTH, JsonLineServer

__all__ = [
    "RouterServer",
    "ShardError",
    "merge_state_payloads",
    "report_from_state_payload",
]


class ShardError(RuntimeError):
    """A shard was unreachable or answered ``ok: false``."""


#: StreamReader buffer limit for shard responses.  A drained shard's
#: ``state`` line carries its full miner state — far past asyncio's
#: 64 KiB default readline limit at real corpus sizes.  The buffer is
#: allocated lazily, so a generous cap costs nothing on small answers.
SHARD_RESPONSE_LIMIT = 1 << 28


# -- pure merge functions ----------------------------------------------------

def merge_state_payloads(payloads: Sequence[dict]) -> dict:
    """Union per-shard ``state`` payloads into one session-shaped payload.

    Miner stream states union keyed by daemon name; a daemon appearing
    on two shards is the sharded analogue of the single-session
    collision and raises :class:`ValueError` rather than silently
    interleaving two byte streams.  Finality and eviction sets union,
    tailer counters sum, ``drained`` is true only when every shard has
    drained.
    """
    miner_state: Dict[str, dict] = {}
    owner: Dict[str, int] = {}
    final_apps: set = set()
    evicted_apps: set = set()
    tail_lag = resyncs = rotations = 0
    drained = True
    for index, payload in enumerate(payloads):
        for daemon, stream_state in payload["miner"].items():
            held = owner.get(daemon)
            if held is not None:
                raise ValueError(
                    f"daemon {daemon!r} appears on shard {held} and shard "
                    f"{index}; shard directories must have disjoint "
                    "stream names"
                )
            owner[daemon] = index
            miner_state[daemon] = stream_state
        final_apps.update(payload.get("final_apps", ()))
        evicted_apps.update(payload.get("evicted_apps", ()))
        tail_lag += payload.get("tail_lag_bytes", 0)
        resyncs += payload.get("resyncs", 0)
        rotations += payload.get("rotations", 0)
        drained = drained and bool(payload.get("drained"))
    return {
        "miner": {daemon: miner_state[daemon] for daemon in sorted(miner_state)},
        "final_apps": sorted(final_apps),
        "evicted_apps": sorted(evicted_apps),
        "tail_lag_bytes": tail_lag,
        "resyncs": resyncs,
        "rotations": rotations,
        "drained": drained,
    }


def report_from_state_payload(payload: dict) -> AnalysisReport:
    """Rebuild the canonical analysis from a (merged) state payload.

    This is the byte-identity path: the same accumulator rehydration
    and the same :func:`analyze_events` tail a live session (and, via
    the replay contract, a batch run) uses.
    """
    miner = LiveMiner.from_state(payload["miner"])
    events = miner.events()
    evicted = set(payload.get("evicted_apps", ()))
    if evicted:
        events = [event for event in events if event.app_id not in evicted]
    return analyze_events(events, miner.diagnostics())


# -- shard plumbing ----------------------------------------------------------

class ShardConnection:
    """One persistent JSON-lines connection from the router to a shard.

    Requests are serialized per shard with a lock: concurrent router
    connections fanning out to the same shard must not interleave their
    request lines (responses come back in request order).
    """

    def __init__(self, host: str, port: int, index: int):
        self.host = host
        self.port = port
        self.index = index
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def request(self, op: str, **params) -> dict:
        payload = {"op": op, **params}
        async with self._lock:
            try:
                if self._writer is None:
                    self._reader, self._writer = await asyncio.open_connection(
                        self.host, self.port, limit=SHARD_RESPONSE_LIMIT
                    )
                self._writer.write(
                    json.dumps(payload).encode("utf-8") + b"\n"
                )
                await self._writer.drain()
                line = await self._reader.readline()
            except OSError as exc:
                await self.close()
                raise ShardError(
                    f"shard {self.index} ({self.host}:{self.port}) "
                    f"unreachable: {exc}"
                ) from exc
            if not line:
                await self.close()
                raise ShardError(
                    f"shard {self.index} ({self.host}:{self.port}) closed "
                    "the connection"
                )
            return json.loads(line.decode("utf-8"))

    async def result(self, op: str, **params):
        response = await self.request(op, **params)
        if not response.get("ok"):
            raise ShardError(
                f"shard {self.index} failed {op!r}: "
                f"{response.get('error', 'unknown error')}"
            )
        return response["result"]

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


class RouterServer(JsonLineServer):
    """Fan-out/merge front end over N shard servers."""

    def __init__(
        self,
        shards: Iterable[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        registry: Optional[MetricsRegistry] = None,
        propagate_shutdown: bool = True,
    ):
        super().__init__(host=host, port=port, queue_depth=queue_depth)
        self.shards = [
            ShardConnection(shard_host, shard_port, index)
            for index, (shard_host, shard_port) in enumerate(shards)
        ]
        if not self.shards:
            raise ValueError("RouterServer needs at least one shard")
        #: The router's own registry: front-end request counters.  The
        #: ``metrics`` op merges it with every shard's state so one
        #: scrape sees the whole deployment.
        self.metrics = registry if registry is not None else build_live_registry()
        self.propagate_shutdown = propagate_shutdown

    async def _on_close(self) -> None:
        for shard in self.shards:
            await shard.close()

    # -- fan-out helpers ---------------------------------------------------
    async def _fan_out(self, op: str, **params) -> List:
        """Run one op on every shard concurrently; results in shard order."""
        return list(
            await asyncio.gather(
                *(shard.result(op, **params) for shard in self.shards)
            )
        )

    async def _merged_metrics_registry(self) -> MetricsRegistry:
        states = await self._fan_out("metrics_state")
        return merge_metric_states(states + [self.metrics.to_state()])

    async def _merged_report(self) -> Tuple[dict, AnalysisReport]:
        """Union every shard's miner state and rebuild the one report.

        ``apps`` and ``decomposition`` go through here rather than
        through per-shard report rows: a shard only has a partial view
        of an application whose streams it shares with another shard,
        and partial derived rows do not merge — accumulator states do.
        """
        merged = merge_state_payloads(await self._fan_out("state"))
        return merged, report_from_state_payload(merged)

    # -- dispatch ----------------------------------------------------------
    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        try:
            return await self._dispatch_op(op, request)
        except ShardError as exc:
            return {"ok": False, "op": op, "error": str(exc)}
        except ValueError as exc:
            return {"ok": False, "op": op, "error": f"merge failed: {exc}"}

    async def _dispatch_op(self, op, request: dict) -> dict:
        if op == "apps":
            state, report = await self._merged_report()
            final = set(state["final_apps"])
            rows = [
                {
                    "app_id": app.app_id,
                    "status": (
                        "final" if app.app_id in final else "provisional"
                    ),
                    "containers": len(app.containers),
                    "total_delay": app.total_delay,
                    "job_runtime": app.job_runtime,
                }
                for app in report.apps
            ]
            rows.sort(key=lambda row: row["app_id"])
            return {"ok": True, "op": op, "result": rows}
        if op == "decomposition":
            app_id = request.get("app_id")
            if not app_id:
                return {
                    "ok": False,
                    "op": op,
                    "error": "decomposition requires an app_id",
                }
            state, report = await self._merged_report()
            final = set(state["final_apps"])
            for entry in report.to_dict()["applications"]:
                if entry["app_id"] == app_id:
                    status = "final" if app_id in final else "provisional"
                    return {
                        "ok": True,
                        "op": op,
                        "result": {"status": status, **entry},
                    }
            return {
                "ok": False,
                "op": op,
                "error": f"unknown application {app_id!r}",
            }
        if op == "diagnostics":
            state, report = await self._merged_report()
            payload = report.diagnostics.to_dict()
            payload["tail_lag_bytes"] = state["tail_lag_bytes"]
            payload["resyncs"] = state["resyncs"]
            payload["rotations"] = state["rotations"]
            payload["drained"] = state["drained"]
            if state["evicted_apps"]:
                payload["evicted_apps"] = state["evicted_apps"]
            payload["shards"] = len(self.shards)
            return {"ok": True, "op": op, "result": payload}
        if op == "metrics":
            registry = await self._merged_metrics_registry()
            return {"ok": True, "op": op, "result": registry.render()}
        if op == "metrics_state":
            registry = await self._merged_metrics_registry()
            return {"ok": True, "op": op, "result": registry.to_state()}
        if op in ("state", "drain"):
            payloads = await self._fan_out(op)
            return {
                "ok": True,
                "op": op,
                "result": merge_state_payloads(payloads),
            }
        if op == "shutdown":
            if self.propagate_shutdown:
                # Best effort: a dead shard must not block the rest of
                # the deployment from stopping.
                await asyncio.gather(
                    *(shard.request("shutdown") for shard in self.shards),
                    return_exceptions=True,
                )
            return {"ok": True, "op": op, "result": "shutting down"}
        return {
            "ok": False,
            "op": op,
            "error": (
                f"unknown op {op!r} (expected apps, decomposition, "
                "diagnostics, metrics, metrics_state, state, drain, "
                "shutdown)"
            ),
        }
