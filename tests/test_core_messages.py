"""Tests for the Table I message patterns."""

import pytest

from repro.core.events import EventKind
from repro.core import messages as msg


class TestRmAppLines:
    def test_submitted(self):
        kind, app = msg.classify_rm_app_line(
            "application_1515715200000_0001 State change from NEW_SAVING to "
            "SUBMITTED on event = APP_NEW_SAVED"
        )
        assert kind is EventKind.APP_SUBMITTED
        assert app == "application_1515715200000_0001"

    def test_attempt_registered(self):
        kind, _ = msg.classify_rm_app_line(
            "application_1_0001 State change from ACCEPTED to RUNNING "
            "on event = ATTEMPT_REGISTERED"
        )
        assert kind is EventKind.APP_ATTEMPT_REGISTERED

    def test_finished(self):
        kind, _ = msg.classify_rm_app_line(
            "application_1_0001 State change from FINAL_SAVING to FINISHED "
            "on event = APP_UPDATE_SAVED"
        )
        assert kind is EventKind.APP_FINISHED

    def test_irrelevant_state_ignored(self):
        assert (
            msg.classify_rm_app_line(
                "application_1_0001 State change from NEW to NEW_SAVING on event = START"
            )
            is None
        )

    def test_noise_ignored(self):
        assert msg.classify_rm_app_line("Completely unrelated text") is None


class TestRmContainerLines:
    def test_allocated(self):
        kind, cid = msg.classify_rm_container_line(
            "container_1515715200000_0001_01_000002 Container Transitioned "
            "from NEW to ALLOCATED"
        )
        assert kind is EventKind.CONTAINER_ALLOCATED
        assert cid == "container_1515715200000_0001_01_000002"

    def test_acquired(self):
        kind, _ = msg.classify_rm_container_line(
            "container_1_0001_01_000002 Container Transitioned from ALLOCATED to ACQUIRED"
        )
        assert kind is EventKind.CONTAINER_ACQUIRED

    def test_released(self):
        kind, _ = msg.classify_rm_container_line(
            "container_1_0001_01_000006 Container Transitioned from ACQUIRED to RELEASED"
        )
        assert kind is EventKind.CONTAINER_RELEASED


class TestNmContainerLines:
    @pytest.mark.parametrize(
        "old,new,kind",
        [
            ("NEW", "LOCALIZING", EventKind.CONTAINER_LOCALIZING),
            ("LOCALIZING", "SCHEDULED", EventKind.CONTAINER_SCHEDULED),
            ("SCHEDULED", "RUNNING", EventKind.CONTAINER_NM_RUNNING),
        ],
    )
    def test_transitions(self, old, new, kind):
        got, cid = msg.classify_nm_container_line(
            f"Container container_1_0001_01_000002 transitioned from {old} to {new}"
        )
        assert got is kind
        assert cid == "container_1_0001_01_000002"

    def test_cleanup_states_ignored(self):
        assert (
            msg.classify_nm_container_line(
                "Container container_1_0001_01_000002 transitioned from "
                "EXITED_WITH_SUCCESS to DONE"
            )
            is None
        )


class TestDriverLines:
    def test_register(self):
        kind, app = msg.classify_driver_line(
            "Registered ApplicationMaster for application_1515715200000_0042 "
            "(appattempt_1515715200000_0042_000001)"
        )
        assert kind is EventKind.DRIVER_REGISTERED
        assert app == "application_1515715200000_0042"

    def test_start_allo_marker(self):
        kind, app = msg.classify_driver_line(
            "SDCHECKER START_ALLO Will request 4 executor container(s) "
            "for application_1_0007"
        )
        assert kind is EventKind.START_ALLO
        assert app == "application_1_0007"

    def test_end_allo_marker(self):
        kind, _ = msg.classify_driver_line(
            "SDCHECKER END_ALLO All requested containers allocated for "
            "application_1_0007 (4 granted)"
        )
        assert kind is EventKind.END_ALLO

    def test_ordinary_driver_chatter_ignored(self):
        assert msg.classify_driver_line("Created broadcast 3 from textFile") is None


class TestFirstTask:
    def test_got_assigned_task(self):
        assert msg.classify_first_task_line("Got assigned task 0")
        assert msg.classify_first_task_line("Got assigned task 137")

    def test_negatives(self):
        assert not msg.classify_first_task_line("Got assigned task")
        assert not msg.classify_first_task_line("Finished task 0")


class TestIdHelpers:
    def test_app_id_of_container(self):
        assert (
            msg.app_id_of_container("container_1515715200000_0042_01_000003")
            == "application_1515715200000_0042"
        )

    def test_app_id_of_container_epoch_form(self):
        assert (
            msg.app_id_of_container("container_e08_1515715200000_0042_01_000003")
            == "application_1515715200000_0042"
        )

    def test_non_container_returns_none(self):
        assert msg.app_id_of_container("application_1_0001") is None

    @pytest.mark.parametrize("attempt", ["100", "117", "1024"])
    def test_wide_attempt_ids_group_correctly(self, attempt):
        # Attempt ids render %02d but widen past 99 (long-running
        # recurring apps, the §V-B JVM-reuse scenario): grouping must
        # not silently drop those containers.
        assert (
            msg.app_id_of_container(f"container_1515715200000_0042_{attempt}_000003")
            == "application_1515715200000_0042"
        )

    def test_wide_attempt_id_in_rm_line(self):
        kind, cid = msg.classify_rm_container_line(
            "container_1515715200000_0042_117_000002 Container Transitioned "
            "from NEW to ALLOCATED"
        )
        assert kind is EventKind.CONTAINER_ALLOCATED
        assert msg.app_id_of_container(cid) == "application_1515715200000_0042"

    def test_single_digit_attempt_still_rejected(self):
        assert msg.app_id_of_container("container_1515715200000_0042_1_000003") is None


class TestAmbiguityFixtures:
    """Edge-case lines locked in as fixtures; sdlint pass 1 (SD102)
    checks the same probes, so a catalog change that makes any of them
    ambiguous fails both here and in ``python -m repro.analysis``."""

    def test_every_probe_matches_at_most_one_classifier(self):
        from repro.analysis.catalog import AMBIGUITY_PROBES, matching_classifiers

        for probe in AMBIGUITY_PROBES:
            assert len(matching_classifiers(probe)) <= 1, probe

    def test_epoch_prefixed_container_id_classifies(self):
        kind, cid = msg.classify_nm_container_line(
            "Container container_e17_1515715200000_0042_01_000002 "
            "transitioned from LOCALIZING to SCHEDULED"
        )
        assert kind is EventKind.CONTAINER_SCHEDULED
        assert cid == "container_e17_1515715200000_0042_01_000002"
        assert msg.app_id_of_container(cid) == "application_1515715200000_0042"

    def test_state_names_with_underscores(self):
        # Underscore-bearing states parse as single tokens; this one is
        # a cleanup transition and so is correctly *not* catalogued.
        assert (
            msg.classify_nm_container_line(
                "Container container_1515715200000_0042_01_000002 "
                "transitioned from EXITED_WITH_SUCCESS to DONE"
            )
            is None
        )
        kind, _ = msg.classify_rm_app_line(
            "application_1515715200000_0042 State change from NEW_SAVING "
            "to SUBMITTED on event = APP_NEW_SAVED"
        )
        assert kind is EventKind.APP_SUBMITTED

    def test_rm_nm_near_miss_matches_neither(self):
        # A human could read this as either the RM's or the NM's
        # container transition wording; the anchored regexes must keep
        # it out of both rather than double-counting it.
        line = (
            "Container container_1515715200000_0042_01_000002 Container "
            "Transitioned from NEW to ALLOCATED"
        )
        assert msg.classify_rm_container_line(line) is None
        assert msg.classify_nm_container_line(line) is None


class TestCatalogStates:
    def test_tables_exposed_for_sdlint(self):
        catalog = msg.catalog_states()
        assert set(catalog) == {"RMAppImpl", "RMContainerImpl", "ContainerImpl"}
        assert catalog["RMAppImpl"]["SUBMITTED"] is EventKind.APP_SUBMITTED
        assert catalog["ContainerImpl"]["SCHEDULED"] is EventKind.CONTAINER_SCHEDULED

    def test_returns_copies(self):
        catalog = msg.catalog_states()
        catalog["RMAppImpl"]["BOGUS"] = EventKind.APP_FINISHED
        assert "BOGUS" not in msg.catalog_states()["RMAppImpl"]


class TestInstanceTypes:
    @pytest.mark.parametrize(
        "cls,code",
        [
            ("org.apache.spark.deploy.yarn.ApplicationMaster", "spm"),
            ("org.apache.spark.executor.CoarseGrainedExecutorBackend", "spe"),
            ("org.apache.hadoop.mapreduce.v2.app.MRAppMaster", "mrm"),
            ("org.apache.hadoop.mapred.YarnChild", "mrs"),
        ],
    )
    def test_classification(self, cls, code):
        assert msg.instance_type_of_class(cls) == code

    def test_unknown_class(self):
        assert msg.instance_type_of_class("some.other.Thing") is None
