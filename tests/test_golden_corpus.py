"""Golden-corpus regression tests.

A committed log corpus (one deterministic TPC-H run) with committed
expected analysis output.  Unlike the in-memory round-trip tests, this
pins the *bytes*: any change to log rendering, record parsing,
grouping, decomposition, export formatting — or to the seeded
corruption catalog — shows up as a diff against the snapshots in
``tests/data/``.  Regenerate intentionally with
``tests/data/regen_golden.py`` (see the README there).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.checker import SDChecker
from repro.faults import corrupt_copy

DATA = Path(__file__).resolve().parent / "data"
GOLDEN = DATA / "golden"

#: The canned corruption seeds pinned by these snapshots.
CANNED_SEED = 0


@pytest.fixture(scope="module")
def expected():
    return json.loads((DATA / "golden_expected.json").read_text())


class TestCleanCorpus:
    def test_matches_snapshot(self, expected):
        report = SDChecker().analyze(GOLDEN)
        assert report.to_dict() == expected

    def test_parallel_mining_matches_snapshot(self, expected):
        report = SDChecker(jobs=4).analyze(GOLDEN)
        assert report.to_dict() == expected

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_fast_path_matches_snapshot_and_legacy(self, jobs, expected):
        """Byte-identity of the byte-oriented fast path at --jobs {1, 4}.

        The report (including the diagnostics ledger) must match both
        the pinned snapshot and a live run of the legacy record-stream
        miner.
        """
        from repro.core.parser import LogMiner

        checker = SDChecker(jobs=jobs)
        report = checker.analyze(GOLDEN)
        assert report.to_dict() == expected
        legacy_checker = SDChecker(jobs=jobs)
        legacy_checker._miner = LogMiner(fast=False)
        legacy = legacy_checker.analyze(GOLDEN)
        assert report.to_dict(include_diagnostics=True) == legacy.to_dict(
            include_diagnostics=True
        )

    def test_clean_corpus_has_clean_diagnostics(self):
        report = SDChecker().analyze(GOLDEN)
        assert report.diagnostics is not None
        assert not report.diagnostics.degraded()

    def test_every_component_measured(self, expected):
        for app in expected["applications"]:
            missing = [k for k, v in app.items() if v is None]
            assert not missing, f"{app['app_id']} missing {missing}"


class TestCannedCorruptions:
    """Clean snapshot + three canned corruptions, all pinned."""

    @pytest.mark.parametrize(
        "name", ["duplicate-lines", "inject-noise", "rotation-split"]
    )
    def test_identity_corruption_matches_clean_snapshot(
        self, name, tmp_path, expected
    ):
        out = tmp_path / "logs"
        corrupt_copy(GOLDEN, out, [name], seed=CANNED_SEED)
        report = SDChecker().analyze(out)
        assert report.to_dict() == expected

    def test_truncate_tail_matches_degraded_snapshot(self, tmp_path):
        degraded_expected = json.loads(
            (DATA / "golden_expected_truncate_tail.json").read_text()
        )
        out = tmp_path / "logs"
        corrupt_copy(GOLDEN, out, ["truncate-tail"], seed=CANNED_SEED)
        report = SDChecker().analyze(out)
        assert report.to_dict(include_diagnostics=True) == degraded_expected

    def test_truncate_tail_snapshot_admits_degradation(self):
        degraded_expected = json.loads(
            (DATA / "golden_expected_truncate_tail.json").read_text()
        )
        assert degraded_expected["diagnostics"]["degraded"] is True
