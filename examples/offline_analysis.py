#!/usr/bin/env python
"""Offline workflow: run jobs, collect logs, analyze them later.

This mirrors exactly how the paper positions SDchecker ("users first
need to run a bunch of data analytics applications... after these
applications complete, SDchecker collects both Yarn's logs and
applications' logs"):

1. generate and save a submission trace (the google-trace stand-in);
2. replay it twice — clean, and under dfsIO interference — dumping each
   run's logs to a directory of plain ``.log`` files;
3. analyze both directories *offline* with SDchecker, render an ASCII
   CDF, export per-app CSVs, and diff the runs.

Everything after step 2 works on text files only — you could delete the
simulator and the analysis would still run.

Usage::

    python examples/offline_analysis.py [--workdir DIR] [--queries N]
"""

import argparse
import functools
import tempfile
from pathlib import Path

from repro.core.checker import SDChecker
from repro.experiments.harness import TraceScenario, submit_dfsio_interference
from repro.simul.distributions import RandomSource
from repro.workloads.google_trace import (
    google_trace_arrivals,
    save_trace_csv,
    tpch_query_mix,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default=None)
    parser.add_argument("--queries", type=int, default=30)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="sdchecker-"))

    # -- 1. build + persist the trace ------------------------------------
    rng = RandomSource(args.seed, "offline")
    arrivals = google_trace_arrivals(args.queries, 3.5, rng.child("arrivals"))
    queries = tpch_query_mix(args.queries, rng.child("mix"))
    trace_path = save_trace_csv(workdir / "trace.csv", arrivals, queries)
    print(f"saved trace: {trace_path}")

    # -- 2. replay twice, dumping logs -------------------------------------
    runs = {
        "clean": TraceScenario(seed=args.seed, trace_file=str(trace_path)),
        "dfsio": TraceScenario(
            seed=args.seed,
            trace_file=str(trace_path),
            interference=functools.partial(submit_dfsio_interference, num_maps=100),
        ),
    }
    logdirs = {}
    for label, scenario in runs.items():
        result = scenario.run()
        logdirs[label] = workdir / f"logs-{label}"
        result.testbed.dump_logs(logdirs[label])
        n_files = len(list(logdirs[label].glob("*.log")))
        print(f"replayed {label!r}: {n_files} log files -> {logdirs[label]}")

    # -- 3. offline analysis from text files only ---------------------------
    checker = SDChecker()
    clean = checker.analyze(logdirs["clean"])
    noisy = checker.analyze(logdirs["dfsio"])

    print("\nclean-run total scheduling delay:")
    print(clean.sample("total_delay").ascii_cdf())

    csv_path = clean.to_csv(workdir / "clean-apps.csv")
    print(f"\nper-application metrics: {csv_path}")

    print("\nclean (A) vs dfsIO-interfered (B):")
    print(clean.compare(noisy, label_self="A", label_other="B"))
    print(
        "\nEquivalent CLI:\n"
        f"  sdchecker {logdirs['clean']} --cdf total_delay\n"
        f"  sdchecker {logdirs['clean']} --csv apps.csv\n"
        f"  sdchecker {logdirs['clean']} --compare {logdirs['dfsio']}"
    )


if __name__ == "__main__":
    main()
