"""Section V-B: the paper's proposed optimizations, quantified.

Each Table III mitigation must improve its target component, and the
advertised trade-offs must be visible (faster heartbeats cost RPC
volume; JVM reuse requires recurring apps but cuts in-application
delay).
"""

from repro.experiments.optimizations import run_optimization_study


def test_proposed_optimizations(benchmark, scale, seed, record_rows):
    result = benchmark.pedantic(
        run_optimization_study, args=(scale, seed), rounds=1, iterations=1
    )
    record_rows("optimizations", result.rows())

    # JVM reuse cuts driver and executor delay (Table III rows 5-6).
    default = result.jvm_reuse["default"]
    reused = result.jvm_reuse["jvm_reuse"]
    assert reused["driver"].p50 < 0.8 * default["driver"].p50
    assert reused["executor"].p50 < default["executor"].p50
    assert reused["total"].p95 < default["total"].p95

    # Dedicated localization storage neutralizes dfsIO interference
    # (Table III row 3): order-of-magnitude improvement under load.
    shared = result.localization["shared"]
    dedicated = result.localization["dedicated"]
    assert dedicated.p50 < 0.5 * shared.p50
    assert dedicated.p95 < shared.p95

    # Heartbeat trade-off (Table III row 2): faster beats -> lower
    # acquisition delay but more RPC traffic.
    intervals = sorted(result.heartbeat)
    acq = [result.heartbeat[i]["acquisition_p95"] for i in intervals]
    rpc = [result.heartbeat[i]["rpcs_per_second"] for i in intervals]
    assert acq == sorted(acq), "acquisition p95 must grow with the interval"
    assert rpc == sorted(rpc, reverse=True), "RPC volume must shrink with the interval"
    # The cap tracks the interval itself.
    assert acq[0] < intervals[0] * 1.2
    assert acq[-1] < intervals[-1] * 1.2
