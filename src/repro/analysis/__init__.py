"""sdlint — static contract checking for the SDchecker reproduction.

SDchecker's correctness rests on an implicit contract between two sides
that share no code: the simulator's log emitters (log4j templates in
``repro.logsys`` users, the ``TEMPLATE``/``TRANSITIONS`` tables of
``repro.yarn.state_machine``, the driver/executor messages of
``repro.spark`` and ``repro.mapreduce``) must render lines that the
Table I regexes in ``repro.core.messages`` match *unambiguously*.  A
one-word template drift silently drops a delay component from every
report — end-to-end runs are the only thing that would notice, and only
if someone stares at the numbers.

This package machine-checks the contract with three static passes:

* **catalog cross-check** (:mod:`repro.analysis.catalog`, rules SD1xx)
  — AST-extract every emission template, synthesize representative
  rendered lines, and verify each delay-relevant emission is matched by
  exactly one Table I classifier (coverage, ambiguity, and global-ID
  round-trip).
* **state-machine analysis** (:mod:`repro.analysis.statemachines`,
  rules SD2xx) — transition-graph checks over the ``TRANSITIONS``
  tables: unreachable states, dead transitions, missing terminal
  states, and transitions invisible to SDchecker.
* **determinism lint** (:mod:`repro.analysis.determinism`, rules
  SD3xx) — AST walk flagging unseeded ``random``/``np.random`` calls
  that bypass :class:`repro.simul.distributions.RandomSource`,
  wall-clock reads, and iteration over unordered sets.

Run it as ``python -m repro.analysis`` (see :mod:`repro.analysis.cli`);
known-accepted findings live in the checked-in ``sdlint.baseline``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.analysis.findings import Finding, RULES, sort_findings

__all__ = ["Finding", "RULES", "run_all", "sort_findings"]


def run_all(root: Optional[Path] = None) -> List[Finding]:
    """Run all three passes over ``root`` (the directory holding ``repro``)."""
    from repro.analysis import catalog, determinism, statemachines
    from repro.analysis.cli import default_root

    root = Path(root) if root is not None else default_root()
    findings: List[Finding] = []
    findings.extend(catalog.run(root))
    findings.extend(statemachines.run(root))
    findings.extend(determinism.run(root))
    return sort_findings(findings)
