"""Unit tests for the corruption catalog and the seeded injector.

Property coverage lives in ``test_faults_metamorphic.py``; these pin
the mechanics: catalog completeness, seed determinism, receipts, the
physical file effects of each corruption, and the CLI.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.faults import (
    CATALOG,
    FaultInjector,
    corrupt_copy,
    degradation_names,
    identity_names,
    make_corruption,
)
from repro.faults.cli import main as faults_main

GOLDEN = Path(__file__).resolve().parent / "data" / "golden"


def _tree_bytes(root: Path):
    return {
        p.name: p.read_bytes() for p in sorted(root.iterdir()) if p.is_file()
    }


@pytest.fixture
def corpus(tmp_path):
    out = tmp_path / "corpus"
    shutil.copytree(GOLDEN, out)
    return out


class TestCatalog:
    def test_catalog_partition(self):
        assert set(identity_names()) | set(degradation_names()) == set(CATALOG)
        assert not set(identity_names()) & set(degradation_names())
        assert set(identity_names()) == {
            "duplicate-lines",
            "inject-noise",
            "rotation-split",
        }

    def test_make_corruption_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown corruption"):
            make_corruption("bit-flips-from-space")

    def test_make_corruption_forwards_kwargs(self):
        corruption = make_corruption("truncate-tail", max_lines=2)
        assert corruption.max_lines == 2


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_same_seed_same_bytes(self, name, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        corrupt_copy(GOLDEN, a, [name], seed=5)
        corrupt_copy(GOLDEN, b, [name], seed=5)
        assert _tree_bytes(a) == _tree_bytes(b)

    def test_different_seeds_differ(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        corrupt_copy(GOLDEN, a, ["duplicate-lines"], seed=1)
        corrupt_copy(GOLDEN, b, ["duplicate-lines"], seed=2)
        assert _tree_bytes(a) != _tree_bytes(b)

    def test_corruptions_draw_independent_substreams(self, corpus, tmp_path):
        """A corruption's bytes don't depend on what ran before it."""
        solo = tmp_path / "solo"
        corrupt_copy(GOLDEN, solo, ["delete-daemon"], seed=9)
        stacked = tmp_path / "stacked"
        # duplicate-lines first must not perturb delete-daemon's pick.
        receipts = corrupt_copy(
            GOLDEN, stacked, ["duplicate-lines", "delete-daemon"], seed=9
        )
        # Compare deleted-file sets, not bytes (duplication changes bytes).
        deleted_solo = set(_tree_bytes(GOLDEN)) - set(_tree_bytes(solo))
        deleted_stacked = set(_tree_bytes(GOLDEN)) - set(_tree_bytes(stacked))
        assert receipts[1].touched
        assert deleted_solo == deleted_stacked


class TestFileEffects:
    def test_duplicate_lines_inserts_adjacent_copies(self, corpus):
        before = _tree_bytes(corpus)
        receipts = FaultInjector(seed=4).inject(corpus, ["duplicate-lines"])
        assert receipts[0].touched
        for name, data in _tree_bytes(corpus).items():
            old_lines = before[name].splitlines()
            new_lines = data.splitlines()
            # Removing adjacent duplicates restores the original file.
            deduped = [
                line
                for i, line in enumerate(new_lines)
                if i == 0 or line != new_lines[i - 1]
            ]
            # (the clean corpus has no adjacent duplicates to begin with)
            assert deduped == old_lines

    def test_inject_noise_never_touches_the_first_line(self, corpus):
        before = _tree_bytes(corpus)
        FaultInjector(seed=4).inject(corpus, ["inject-noise"])
        for name, data in _tree_bytes(corpus).items():
            if before[name]:
                assert data.splitlines()[0] == before[name].splitlines()[0]

    def test_rotation_split_preserves_line_sequence(self, corpus):
        from repro.logsys.store import stream_segments

        before = _tree_bytes(corpus)
        receipts = FaultInjector(seed=4).inject(corpus, ["rotation-split"])
        assert receipts[0].touched
        for daemon, paths in stream_segments(corpus):
            merged = b"".join(p.read_bytes() for p in paths)
            assert merged == before[f"{daemon}.log"]

    def test_truncate_final_leaves_partial_last_line(self, corpus):
        receipts = FaultInjector(seed=4).inject(corpus, ["truncate-final"])
        assert receipts[0].touched
        for daemon in receipts[0].touched:
            data = (corpus / f"{daemon}.log").read_bytes()
            assert not data.endswith(b"\n")

    def test_delete_daemon_removes_all_segments(self, corpus):
        receipts = FaultInjector(seed=4).inject(corpus, ["delete-daemon"])
        (daemon,) = receipts[0].touched
        assert not list(corpus.glob(f"{daemon}.log*"))

    def test_invalid_utf8_mangles_bytes(self, corpus):
        before = _tree_bytes(corpus)
        receipts = FaultInjector(seed=4).inject(corpus, ["invalid-utf8"])
        assert receipts[0].touched
        after = _tree_bytes(corpus)
        changed = [n for n in after if after[n] != before[n]]
        assert changed
        for name in changed:
            with pytest.raises(UnicodeDecodeError):
                after[name].decode("utf-8")


class TestCLI:
    def test_corrupt_subcommand(self, tmp_path, capsys):
        out = tmp_path / "out"
        rc = faults_main(
            [
                "corrupt",
                str(GOLDEN),
                str(out),
                "--corruption",
                "duplicate-lines",
                "--seed",
                "3",
            ]
        )
        assert rc == 0
        assert out.is_dir()
        assert "duplicate-lines" in capsys.readouterr().out

    def test_sweep_subcommand_smoke(self, capsys):
        rc = faults_main(
            [
                "sweep",
                str(GOLDEN),
                "--corruption",
                "truncate-final",
                "--corruption",
                "rotation-split",
                "--seeds",
                "2",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "4 cell(s), 0 failure(s)" in captured

    def test_missing_directory(self, tmp_path, capsys):
        rc = faults_main(["sweep", str(tmp_path / "nope")])
        assert rc == 2
