"""Tests for the AM-RM client (heartbeats, backoff, misuse guards)."""

import pytest

from repro.core.checker import SDChecker
from repro.core.events import EventKind
from repro.mapreduce.application import MapReduceApplication
from repro.params import SimulationParams
from repro.simul.engine import SimulationError
from repro.testbed import Testbed
from repro.yarn.records import ResourceRequest, ResourceSpec
from tests.conftest import make_query_app


class TestClientGuards:
    def test_request_before_register_rejected(self, bed):
        app = make_query_app("q", query=6)
        bed.submit(app)
        bed.run(until=0.2)  # app admitted, AM not yet up
        record = bed.rm.apps[app.app_id]
        from repro.yarn.app import AMRMClient

        client = AMRMClient(bed.rm, app, 0.2, 3.0)
        with pytest.raises(SimulationError, match="register"):
            client.request_containers(ResourceRequest(ResourceSpec(1024, 1), 1))

    def test_double_register_rejected(self, bed):
        app = make_query_app("q", query=6)
        bed.submit(app)
        bed.run_until_all_finished(limit=5000)
        client = bed.rm.apps[app.app_id].client
        assert client.registered

        def re_register():
            yield from client.register()

        bed.sim.process(re_register())
        with pytest.raises(SimulationError, match="already registered"):
            bed.run(until=bed.sim.now + 1.0)


class TestBackoff:
    def test_spark_pull_gaps_double_while_starved(self):
        """Under a full cluster, successive empty pulls back off
        0.2 -> 0.4 -> ... -> 3.0 (visible as acquisition spacing)."""
        params = SimulationParams(num_nodes=2)
        bed = Testbed(params=params, seed=81)

        def hold(app, ctx, index):
            yield ctx.sim.timeout(30.0)

        capacity = bed.cluster.total_memory_mb() // params.map_container_memory_mb
        bed.submit(
            MapReduceApplication("hog", num_maps=int(capacity * 0.99), map_body=hold)
        )
        app = make_query_app("q", query=6)
        bed.submit(app, delay=5.0)
        bed.run_until_all_finished(limit=5000)
        # The app eventually got everything despite the starved start.
        assert app.milestones.get("allocation_complete") is not None

    def test_granted_total_matches_requests(self, single_app_run):
        bed, app, _report = single_app_run
        client = bed.rm.apps[app.app_id].client
        assert client.granted_total == app.num_executors
        assert client.outstanding == 0


class TestGrantRouting:
    def test_am_grant_never_reaches_client_buffer(self, single_app_run):
        """The AM container is launched by the RM's AMLauncher, not
        pulled over the allocate RPC."""
        _bed, app, report = single_app_run
        am = next(c for a in report.apps for c in a.containers if c.is_application_master)
        # AM acquisition is near-instant (no heartbeat wait).
        assert am.acquisition_delay < 0.2

    def test_released_surplus_logged_rm_side_only(self, opportunistic_run):
        bed, app, _report = opportunistic_run
        surplus_ids = {
            str(g.container_id)
            for g in app.grants
            if g.rm_container.state == "RELEASED"
        }
        assert len(surplus_ids) == bed.params.spark_overrequest_bug_extra
        traces = SDChecker().group(bed.log_store)
        trace = traces[str(app.app_id)]
        for cid in surplus_ids:
            ctrace = trace.containers[cid]
            assert ctrace.time_of(EventKind.CONTAINER_RELEASED) is not None
            assert ctrace.time_of(EventKind.CONTAINER_LOCALIZING) is None
