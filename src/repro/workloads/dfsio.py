"""dfsIO: HDFS write pressure (the Fig 12 IO interference source).

"The dfsIO spawns parallel map tasks to write data into HDFS.  Each map
task writes 20GB data."  Every stream flows through the writer's NIC
and three replica disks/NICs, so it contends with localization
downloads and task input scans cluster-wide.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mapreduce.application import MapReduceApplication
from repro.simul.engine import Event
from repro.yarn.app import ContainerContext

__all__ = ["make_dfsio_app", "dfsio_map_body"]


def dfsio_map_body(
    app: MapReduceApplication, ctx: ContainerContext, index: int
) -> Generator[Event, Any, None]:
    """One dfsIO map task: stream 20 GB into HDFS in bursts.

    HDFS writers are bursty — the client fills its write pipeline at
    full tilt, stalls on flushes, then resumes.  The resulting variance
    in instantaneous disk demand is what gives the localization delay
    its heavy tail under interference (Fig 12b's 35 s outliers).
    """
    params = ctx.services.params
    rng = ctx.services.rng.child(f"dfsio.{ctx.container_id}")
    remaining = params.dfsio_bytes_per_map
    while remaining > 0:
        chunk = min(remaining, rng.uniform(1.0, 3.0) * 1024**3)
        burst_rate = params.dfsio_stream_rate * rng.uniform(0.6, 2.2)
        yield from ctx.services.hdfs.write(ctx.node, chunk, demand=burst_rate)
        remaining -= chunk
        if remaining > 0:
            yield ctx.sim.timeout(rng.uniform(0.1, 1.2))  # flush stall


def make_dfsio_app(name: str, num_maps: int) -> MapReduceApplication:
    """A dfsIO job with ``num_maps`` parallel 20 GB writers.

    The paper sweeps the map count (0..100) to control interference
    intensity.
    """
    return MapReduceApplication(name, num_maps=num_maps, map_body=dfsio_map_body)
